// Bug D5 -- Bit Truncation -- SHA512 accelerator (Intel HARP).
//
// A HARP-style hashing accelerator. The CPU hands the accelerator the
// byte address of a message buffer in host memory; the accelerator
// converts it to a 64-byte cache-line index, fetches the message blocks
// over the read channel, and folds each block into a running digest.
//
// ROOT CAUSE: the byte-to-cacheline conversion is written as
//     line_idx <= 42'(byte_addr) >> 6;
// The SystemVerilog size cast truncates byte_addr to 42 bits BEFORE the
// shift, so address bits [47:42] are silently discarded (the paper's
// section 3.2.2 example verbatim). Buffers above 4 TiB are fetched from
// a wrong, unmapped address.
//
// SYMPTOMS: an incorrect digest, and an error from an external monitor
// (the FPGA shell's address-translation check rejects the out-of-range
// fetch, like a page fault).
//
// FIX: shift before casting -- line_idx <= 42'(byte_addr >> 6);
// (sha512_fixed).

module sha512 (
    input wire clk,
    input wire rst,
    input wire start,
    input wire [63:0] byte_addr,
    input wire [3:0] num_blocks,
    // read channel to host memory (cache-line granularity)
    output reg rd_req,
    output reg [41:0] rd_line,
    input wire rd_rsp_valid,
    input wire [63:0] rd_rsp_data,
    output reg [63:0] digest,
    output reg done
);
    localparam FT_IDLE = 0;
    localparam FT_REQ = 1;
    localparam FT_WAIT = 2;
    localparam FT_DONE = 3;
    localparam HS_IDLE = 0;
    localparam HS_ROUND = 1;
    localparam HS_FLUSH = 2;

    reg [1:0] ft_state;
    reg [41:0] line_idx;
    reg [3:0] blocks_left;

    reg [1:0] hs_state;
    reg [63:0] acc;
    reg [3:0] rounds;

    // Fetch FSM: request one cache line per message block.
    always @(posedge clk) begin
        if (rst) begin
            ft_state <= FT_IDLE;
            rd_req <= 0;
        end else begin
            rd_req <= 0;
            case (ft_state)
                FT_IDLE: if (start) begin
                    // BUG: cast-before-shift drops byte_addr[47:42].
                    line_idx <= 42'(byte_addr) >> 6;
                    blocks_left <= num_blocks;
                    ft_state <= FT_REQ;
                end
                FT_REQ: begin
                    rd_req <= 1;
                    rd_line <= line_idx;
                    ft_state <= FT_WAIT;
                end
                FT_WAIT: if (rd_rsp_valid) begin
                    line_idx <= line_idx + 1;
                    blocks_left <= blocks_left - 1;
                    if (blocks_left == 1) ft_state <= FT_DONE;
                    else ft_state <= FT_REQ;
                end
            endcase
        end
    end

    // Hash FSM: fold each fetched block into the digest (simplified
    // add-rotate round schedule standing in for the SHA-512 rounds).
    always @(posedge clk) begin
        if (rst) begin
            hs_state <= HS_IDLE;
            acc <= 64'h6a09e667f3bcc908;
            rounds <= 0;
            done <= 0;
        end else begin
            case (hs_state)
                HS_IDLE: if (rd_rsp_valid) begin
                    acc <= acc + rd_rsp_data;
                    hs_state <= HS_ROUND;
                    rounds <= 0;
                end
                HS_ROUND: begin
                    acc <= {acc[0], acc[63:1]} ^ {acc[7:0], acc[63:8]};
                    rounds <= rounds + 1;
                    if (rounds == 3) begin
                        if (ft_state == FT_DONE) hs_state <= HS_FLUSH;
                        else hs_state <= HS_IDLE;
                    end
                end
                HS_FLUSH: begin
                    digest <= acc;
                    done <= 1;
                end
            endcase
        end
    end
endmodule

module sha512_fixed (
    input wire clk,
    input wire rst,
    input wire start,
    input wire [63:0] byte_addr,
    input wire [3:0] num_blocks,
    output reg rd_req,
    output reg [41:0] rd_line,
    input wire rd_rsp_valid,
    input wire [63:0] rd_rsp_data,
    output reg [63:0] digest,
    output reg done
);
    localparam FT_IDLE = 0;
    localparam FT_REQ = 1;
    localparam FT_WAIT = 2;
    localparam FT_DONE = 3;
    localparam HS_IDLE = 0;
    localparam HS_ROUND = 1;
    localparam HS_FLUSH = 2;

    reg [1:0] ft_state;
    reg [41:0] line_idx;
    reg [3:0] blocks_left;

    reg [1:0] hs_state;
    reg [63:0] acc;
    reg [3:0] rounds;

    always @(posedge clk) begin
        if (rst) begin
            ft_state <= FT_IDLE;
            rd_req <= 0;
        end else begin
            rd_req <= 0;
            case (ft_state)
                FT_IDLE: if (start) begin
                    // FIX: shift before the width cast keeps bits [47:6].
                    line_idx <= 42'(byte_addr >> 6);
                    blocks_left <= num_blocks;
                    ft_state <= FT_REQ;
                end
                FT_REQ: begin
                    rd_req <= 1;
                    rd_line <= line_idx;
                    ft_state <= FT_WAIT;
                end
                FT_WAIT: if (rd_rsp_valid) begin
                    line_idx <= line_idx + 1;
                    blocks_left <= blocks_left - 1;
                    if (blocks_left == 1) ft_state <= FT_DONE;
                    else ft_state <= FT_REQ;
                end
            endcase
        end
    end

    always @(posedge clk) begin
        if (rst) begin
            hs_state <= HS_IDLE;
            acc <= 64'h6a09e667f3bcc908;
            rounds <= 0;
            done <= 0;
        end else begin
            case (hs_state)
                HS_IDLE: if (rd_rsp_valid) begin
                    acc <= acc + rd_rsp_data;
                    hs_state <= HS_ROUND;
                    rounds <= 0;
                end
                HS_ROUND: begin
                    acc <= {acc[0], acc[63:1]} ^ {acc[7:0], acc[63:8]};
                    rounds <= rounds + 1;
                    if (rounds == 3) begin
                        if (ft_state == FT_DONE) hs_state <= HS_FLUSH;
                        else hs_state <= HS_IDLE;
                    end
                end
                HS_FLUSH: begin
                    digest <= acc;
                    done <= 1;
                end
            endcase
        end
    end
endmodule
