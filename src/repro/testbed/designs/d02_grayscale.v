// Bug D2 -- Buffer Overflow -- Grayscale image accelerator (Intel HARP).
//
// The end-to-end HARP application from the paper's case study (section
// 6.3): the CPU programs the accelerator with a pixel count; a read FSM
// fetches RGB pixels from CPU-side memory (request/response interface),
// the transform stage converts each pixel to grayscale and pushes it
// into an output FIFO, and a write FSM drains the FIFO back to CPU-side
// memory (one write every other cycle, modeling write-channel
// backpressure).
//
// ROOT CAUSE: the output FIFO is too small for the read burst. The read
// FSM issues requests back-to-back, responses return every cycle, but
// the write FSM drains at half rate -- so the FIFO overflows and the
// scfifo IP silently drops grayscale pixels (a constant-size hardware
// buffer cannot grow; paper section 3.2.1). The write FSM then waits
// forever for the dropped pixels.
//
// SYMPTOMS: the acceleration task hangs (the read FSM reaches RD_FINISH
// while the write FSM sticks in WR_DATA -- exactly the case-study
// observation) and pixels are lost.
//
// FIX: size the FIFO for the full burst (grayscale_fixed), or throttle
// the read FSM.

module grayscale (
    input wire clk,
    input wire rst,
    input wire start,
    input wire [4:0] num_pixels,
    // read channel to CPU memory
    output reg rd_req,
    output reg [4:0] rd_addr,
    input wire rd_rsp_valid,
    input wire [23:0] rd_rsp_data,
    // write channel to CPU memory
    output reg wr_req,
    output reg [4:0] wr_addr,
    output reg [7:0] wr_data,
    input wire wr_ack,
    output reg done
);
    localparam RD_IDLE = 0;
    localparam RD_REQ = 1;
    localparam RD_FINISH = 2;
    localparam WR_IDLE = 0;
    localparam WR_DATA = 1;
    localparam WR_FINISH = 2;

    reg [1:0] rd_state;
    reg [4:0] req_count;
    reg [1:0] wr_state;
    reg [4:0] wr_count;
    reg wr_phase;

    reg [7:0] gray;
    reg gray_valid;

    wire [7:0] fifo_q;
    wire fifo_empty;
    wire fifo_full;
    reg fifo_pop;
    reg pop_d;

    // BUG: FIFO depth 8 cannot absorb a full-rate burst against a
    // half-rate drain; pushes while full are silently dropped.
    scfifo #(.LPM_WIDTH(8), .LPM_NUMWORDS(8)) out_fifo (
        .clock(clk),
        .data(gray),
        .wrreq(gray_valid),
        .rdreq(fifo_pop),
        .q(fifo_q),
        .empty(fifo_empty),
        .full(fifo_full)
    );

    // Read FSM: issue one pixel-read request per cycle.
    always @(posedge clk) begin
        if (rst) begin
            rd_state <= RD_IDLE;
            rd_req <= 0;
            req_count <= 0;
        end else begin
            rd_req <= 0;
            case (rd_state)
                RD_IDLE: if (start) begin
                    rd_state <= RD_REQ;
                    req_count <= 0;
                end
                RD_REQ: begin
                    rd_req <= 1;
                    rd_addr <= req_count;
                    req_count <= req_count + 1;
                    if (req_count == num_pixels - 1) rd_state <= RD_FINISH;
                end
            endcase
        end
    end

    // Transform: luma approximation (R + 2G + B) / 4, one pixel per cycle.
    always @(posedge clk) begin
        if (rst) begin
            gray_valid <= 0;
        end else begin
            gray_valid <= rd_rsp_valid;
            if (rd_rsp_valid)
                gray <= (rd_rsp_data[23:16] + (rd_rsp_data[15:8] << 1)
                         + rd_rsp_data[7:0]) >> 2;
        end
    end

    // Write FSM: drain the FIFO to CPU memory, one write per two cycles.
    always @(posedge clk) begin
        if (rst) begin
            wr_state <= WR_IDLE;
            wr_req <= 0;
            wr_count <= 0;
            wr_phase <= 0;
            fifo_pop <= 0;
            pop_d <= 0;
            done <= 0;
        end else begin
            wr_req <= 0;
            fifo_pop <= 0;
            pop_d <= fifo_pop;
            case (wr_state)
                WR_IDLE: if (start) begin
                    wr_state <= WR_DATA;
                    wr_count <= 0;
                    wr_phase <= 0;
                end
                WR_DATA: begin
                    wr_phase <= ~wr_phase;
                    if (wr_phase == 0 && !fifo_empty) begin
                        fifo_pop <= 1;
                    end
                    if (pop_d) begin
                        wr_req <= 1;
                        wr_addr <= wr_count;
                        wr_data <= fifo_q;
                        wr_count <= wr_count + 1;
                        if (wr_count == num_pixels - 1) wr_state <= WR_FINISH;
                    end
                end
                WR_FINISH: done <= 1;
            endcase
        end
    end
endmodule

module grayscale_fixed (
    input wire clk,
    input wire rst,
    input wire start,
    input wire [4:0] num_pixels,
    output reg rd_req,
    output reg [4:0] rd_addr,
    input wire rd_rsp_valid,
    input wire [23:0] rd_rsp_data,
    output reg wr_req,
    output reg [4:0] wr_addr,
    output reg [7:0] wr_data,
    input wire wr_ack,
    output reg done
);
    localparam RD_IDLE = 0;
    localparam RD_REQ = 1;
    localparam RD_FINISH = 2;
    localparam WR_IDLE = 0;
    localparam WR_DATA = 1;
    localparam WR_FINISH = 2;

    reg [1:0] rd_state;
    reg [4:0] req_count;
    reg [1:0] wr_state;
    reg [4:0] wr_count;
    reg wr_phase;

    reg [7:0] gray;
    reg gray_valid;

    wire [7:0] fifo_q;
    wire fifo_empty;
    wire fifo_full;
    reg fifo_pop;
    reg pop_d;

    // FIX: FIFO deep enough for the largest burst (32 entries).
    scfifo #(.LPM_WIDTH(8), .LPM_NUMWORDS(32)) out_fifo (
        .clock(clk),
        .data(gray),
        .wrreq(gray_valid),
        .rdreq(fifo_pop),
        .q(fifo_q),
        .empty(fifo_empty),
        .full(fifo_full)
    );

    always @(posedge clk) begin
        if (rst) begin
            rd_state <= RD_IDLE;
            rd_req <= 0;
            req_count <= 0;
        end else begin
            rd_req <= 0;
            case (rd_state)
                RD_IDLE: if (start) begin
                    rd_state <= RD_REQ;
                    req_count <= 0;
                end
                RD_REQ: begin
                    rd_req <= 1;
                    rd_addr <= req_count;
                    req_count <= req_count + 1;
                    if (req_count == num_pixels - 1) rd_state <= RD_FINISH;
                end
            endcase
        end
    end

    always @(posedge clk) begin
        if (rst) begin
            gray_valid <= 0;
        end else begin
            gray_valid <= rd_rsp_valid;
            if (rd_rsp_valid)
                gray <= (rd_rsp_data[23:16] + (rd_rsp_data[15:8] << 1)
                         + rd_rsp_data[7:0]) >> 2;
        end
    end

    always @(posedge clk) begin
        if (rst) begin
            wr_state <= WR_IDLE;
            wr_req <= 0;
            wr_count <= 0;
            wr_phase <= 0;
            fifo_pop <= 0;
            pop_d <= 0;
            done <= 0;
        end else begin
            wr_req <= 0;
            fifo_pop <= 0;
            pop_d <= fifo_pop;
            case (wr_state)
                WR_IDLE: if (start) begin
                    wr_state <= WR_DATA;
                    wr_count <= 0;
                    wr_phase <= 0;
                end
                WR_DATA: begin
                    wr_phase <= ~wr_phase;
                    if (wr_phase == 0 && !fifo_empty) begin
                        fifo_pop <= 1;
                    end
                    if (pop_d) begin
                        wr_req <= 1;
                        wr_addr <= wr_count;
                        wr_data <= fifo_q;
                        wr_count <= wr_count + 1;
                        if (wr_count == num_pixels - 1) wr_state <= WR_FINISH;
                    end
                end
                WR_FINISH: done <= 1;
            endcase
        end
    end
endmodule
