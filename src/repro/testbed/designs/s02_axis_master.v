// Bug S2 -- Protocol Violation -- AXI-Stream master demo (Xilinx).
//
// A pattern-generator AXI-Stream master, modeled on Xilinx's AXIS demo
// endpoint (the one ZipCPU's "axil2axis" article examines): once
// started it emits a burst of counted words over tvalid/tdata/tlast
// under tready backpressure.
//
// ROOT CAUSE: AXI-Stream requires that once TVALID is asserted it must
// remain asserted (with stable TDATA) until TREADY completes the
// handshake. This master deasserts TVALID and advances its word
// counter after one cycle regardless of TREADY -- a backpressure
// corner the demo's happy-path simulation never hits (paper section
// 3.4.1).
//
// SYMPTOM: an external protocol checker reports the TVALID drop;
// a backpressuring consumer also observes missing words.
//
// FIX: hold TVALID/TDATA until TREADY is seen (axis_master_fixed).

module axis_master (
    input wire clk,
    input wire rst,
    input wire start,
    input wire [7:0] burst_len,
    input wire tready,
    output reg tvalid,
    output reg [7:0] tdata,
    output reg tlast,
    output reg done
);
    localparam GN_IDLE = 0;
    localparam GN_SEND = 1;
    localparam GN_DONE = 2;

    reg [1:0] gn_state;
    reg [7:0] word_idx;

    always @(posedge clk) begin
        if (rst) begin
            gn_state <= GN_IDLE;
            tvalid <= 0;
            tlast <= 0;
            done <= 0;
        end else begin
            case (gn_state)
                GN_IDLE: if (start) begin
                    gn_state <= GN_SEND;
                    word_idx <= 0;
                    done <= 0;
                end
                GN_SEND: begin
                    // BUG: asserts tvalid for exactly one cycle per word
                    // and advances regardless of tready.
                    if (!tvalid) begin
                        tvalid <= 1;
                        tdata <= word_idx;
                        tlast <= (word_idx == burst_len - 1);
                    end else begin
                        tvalid <= 0;
                        tlast <= 0;
                        word_idx <= word_idx + 1;
                        if (word_idx == burst_len - 1) gn_state <= GN_DONE;
                    end
                end
                GN_DONE: begin
                    done <= 1;
                    tvalid <= 0;
                end
            endcase
        end
    end
endmodule

module axis_master_fixed (
    input wire clk,
    input wire rst,
    input wire start,
    input wire [7:0] burst_len,
    input wire tready,
    output reg tvalid,
    output reg [7:0] tdata,
    output reg tlast,
    output reg done
);
    localparam GN_IDLE = 0;
    localparam GN_SEND = 1;
    localparam GN_DONE = 2;

    reg [1:0] gn_state;
    reg [7:0] word_idx;

    always @(posedge clk) begin
        if (rst) begin
            gn_state <= GN_IDLE;
            tvalid <= 0;
            tlast <= 0;
            done <= 0;
        end else begin
            case (gn_state)
                GN_IDLE: if (start) begin
                    gn_state <= GN_SEND;
                    word_idx <= 0;
                    done <= 0;
                end
                GN_SEND: begin
                    if (!tvalid) begin
                        tvalid <= 1;
                        tdata <= word_idx;
                        tlast <= (word_idx == burst_len - 1);
                    end else if (tready) begin
                        // FIX: only complete the beat once tready is
                        // high; tvalid/tdata are held stable otherwise.
                        tvalid <= 0;
                        tlast <= 0;
                        word_idx <= word_idx + 1;
                        if (word_idx == burst_len - 1) gn_state <= GN_DONE;
                    end
                end
                GN_DONE: begin
                    done <= 1;
                    tvalid <= 0;
                end
            endcase
        end
    end
endmodule
