// Bug D8 -- Misindexing -- AXI-Stream switch (generic platform).
//
// A 1-to-2 packet switch (modeled on verilog-axis' axis_switch): the
// first word of each packet is a header whose LOW nibble carries the
// destination port; the switch latches the destination at the header
// and steers the rest of the packet accordingly.
//
// ROOT CAUSE: the destination is extracted from the header's HIGH
// nibble (bits [7:4]) instead of the low nibble (bits [3:0]). Packets
// whose high nibble happens to be zero are delivered to port 0
// regardless of their real destination.
//
// SYMPTOM: packets appear on the wrong output port (incorrect output /
// missing traffic on the intended port).
//
// FIX: index the low nibble (axis_switch_fixed).

module axis_switch (
    input wire clk,
    input wire rst,
    input wire in_valid,
    input wire [7:0] in_data,
    input wire in_last,
    output reg out0_valid,
    output reg [7:0] out0_data,
    output reg out1_valid,
    output reg [7:0] out1_data
);
    localparam SW_HEADER = 0;
    localparam SW_PAYLOAD = 1;

    reg sw_state;
    reg [3:0] dest;

    always @(posedge clk) begin
        if (rst) begin
            sw_state <= SW_HEADER;
            out0_valid <= 0;
            out1_valid <= 0;
        end else begin
            out0_valid <= 0;
            out1_valid <= 0;
            case (sw_state)
                SW_HEADER: if (in_valid) begin
                    // BUG: destination lives in in_data[3:0].
                    dest <= in_data[7:4];
                    if (!in_last) sw_state <= SW_PAYLOAD;
                end
                SW_PAYLOAD: if (in_valid) begin
                    if (dest == 0) begin
                        out0_valid <= 1;
                        out0_data <= in_data;
                    end else begin
                        out1_valid <= 1;
                        out1_data <= in_data;
                    end
                    if (in_last) sw_state <= SW_HEADER;
                end
            endcase
        end
    end
endmodule

module axis_switch_fixed (
    input wire clk,
    input wire rst,
    input wire in_valid,
    input wire [7:0] in_data,
    input wire in_last,
    output reg out0_valid,
    output reg [7:0] out0_data,
    output reg out1_valid,
    output reg [7:0] out1_data
);
    localparam SW_HEADER = 0;
    localparam SW_PAYLOAD = 1;

    reg sw_state;
    reg [3:0] dest;

    always @(posedge clk) begin
        if (rst) begin
            sw_state <= SW_HEADER;
            out0_valid <= 0;
            out1_valid <= 0;
        end else begin
            out0_valid <= 0;
            out1_valid <= 0;
            case (sw_state)
                SW_HEADER: if (in_valid) begin
                    // FIX: the destination is the header's low nibble.
                    dest <= in_data[3:0];
                    if (!in_last) sw_state <= SW_PAYLOAD;
                end
                SW_PAYLOAD: if (in_valid) begin
                    if (dest == 0) begin
                        out0_valid <= 1;
                        out0_data <= in_data;
                    end else begin
                        out1_valid <= 1;
                        out1_data <= in_data;
                    end
                    if (in_last) sw_state <= SW_HEADER;
                end
            endcase
        end
    end
endmodule
