// Bug D6 -- Bit Truncation -- FFT butterfly stage (generic platform).
//
// One radix-2 decimation-in-time butterfly stage of a streaming FFT
// (modeled on the ZipCPU FFT articles): pairs of samples (a, b) enter,
// and the stage emits a+b followed by a-b, each arithmetic result
// carrying one growth bit.
//
// ROOT CAUSE: the sum path stores a 13-bit result (12-bit operands plus
// the growth bit) into a 12-bit register, truncating the carry bit.
// Inputs whose sum exceeds 12 bits wrap around, corrupting the
// spectrum. The difference path is written correctly, which is why
// small-amplitude test vectors pass.
//
// SYMPTOM: incorrect output values for large-amplitude inputs.
//
// FIX: widen the sum register to 13 bits and scale both outputs
// consistently (fft_butterfly_fixed).
//
// The control logic is a two-process FSM (next-state variable), one of
// the paper's FSM-detection false-negative patterns.

module fft_butterfly (
    input wire clk,
    input wire rst,
    input wire in_valid,
    input wire [11:0] in_a,
    input wire [11:0] in_b,
    output reg out_valid,
    output reg [12:0] out_data
);
    localparam BF_SUM = 0;
    localparam BF_DIFF = 1;

    reg bf_state;
    reg bf_next;

    // BUG: 12-bit register truncates the 13-bit sum's carry bit.
    reg [11:0] sum;
    reg [12:0] diff;
    reg pair_loaded;

    // Two-process control FSM: emit sum, then difference.
    always @(*) begin
        bf_next = bf_state;
        case (bf_state)
            BF_SUM: if (pair_loaded) bf_next = BF_DIFF;
            BF_DIFF: bf_next = BF_SUM;
        endcase
    end

    always @(posedge clk) begin
        if (rst) begin
            bf_state <= BF_SUM;
            pair_loaded <= 0;
            out_valid <= 0;
        end else begin
            bf_state <= bf_next;
            out_valid <= 0;
            if (in_valid && !pair_loaded) begin
                sum <= in_a + in_b;
                diff <= {1'b0, in_a} - {1'b0, in_b};
                pair_loaded <= 1;
            end
            if (bf_state == BF_SUM && pair_loaded) begin
                out_data <= {1'b0, sum};
                out_valid <= 1;
            end
            if (bf_state == BF_DIFF) begin
                out_data <= diff;
                out_valid <= 1;
                pair_loaded <= 0;
            end
        end
    end
endmodule

module fft_butterfly_fixed (
    input wire clk,
    input wire rst,
    input wire in_valid,
    input wire [11:0] in_a,
    input wire [11:0] in_b,
    output reg out_valid,
    output reg [12:0] out_data
);
    localparam BF_SUM = 0;
    localparam BF_DIFF = 1;

    reg bf_state;
    reg bf_next;

    // FIX: the sum keeps its growth bit.
    reg [12:0] sum;
    reg [12:0] diff;
    reg pair_loaded;

    always @(*) begin
        bf_next = bf_state;
        case (bf_state)
            BF_SUM: if (pair_loaded) bf_next = BF_DIFF;
            BF_DIFF: bf_next = BF_SUM;
        endcase
    end

    always @(posedge clk) begin
        if (rst) begin
            bf_state <= BF_SUM;
            pair_loaded <= 0;
            out_valid <= 0;
        end else begin
            bf_state <= bf_next;
            out_valid <= 0;
            if (in_valid && !pair_loaded) begin
                sum <= {1'b0, in_a} + {1'b0, in_b};
                diff <= {1'b0, in_a} - {1'b0, in_b};
                pair_loaded <= 1;
            end
            if (bf_state == BF_SUM && pair_loaded) begin
                out_data <= sum;
                out_valid <= 1;
            end
            if (bf_state == BF_DIFF) begin
                out_data <= diff;
                out_valid <= 1;
                pair_loaded <= 0;
            end
        end
    end
endmodule
