// Bug D1 -- Buffer Overflow -- Reed-Solomon decoder (Intel HARP).
//
// A simplified Reed-Solomon-style block decoder. Each codeword starts
// with a header byte giving the codeword length N (up to 15 symbols:
// N-1 data symbols plus a final XOR parity symbol). The symbols stream
// in through a valid interface, are staged in a symbol buffer,
// parity-checked, and the data symbols stream out.
//
// ROOT CAUSE: the symbol buffer holds only 14 entries, but the maximum
// codeword length is 15. For a full-length codeword the parity symbol
// write at index 14 overflows; the buffer depth is not a power of two,
// so the hardware drops the assignment (paper section 3.2.1). The
// parity check then reads a zero, mis-flags the codeword as corrupt,
// and the decoder sticks in its error state. Short codewords (as used
// by the shipped test program) decode fine, which is how the bug
// escaped testing.
//
// SYMPTOMS: infinite stall (done never asserts) and data loss (no
// output symbols emitted).
//
// FIX: size the buffer for the maximum codeword (rsd_decoder_fixed).

module rsd_decoder (
    input wire clk,
    input wire rst,
    input wire in_valid,
    input wire [7:0] in_data,
    output reg out_valid,
    output reg [7:0] out_data,
    output reg done,
    output reg error
);
    localparam RD_IDLE = 0;
    localparam RD_DATA = 1;
    localparam RD_FINISH = 2;
    localparam DC_WAIT = 0;
    localparam DC_CHECK = 1;
    localparam DC_JUDGE = 2;
    localparam DC_EMIT = 3;
    localparam DC_DONE = 4;
    localparam DC_ERROR = 5;

    // BUG: sized for 14 symbols, but the header may announce 15.
    reg [7:0] symbols [0:13];

    reg [1:0] rd_state;
    reg [4:0] length;
    reg [4:0] recv_count;
    reg [7:0] in_reg;
    reg in_reg_vld;

    reg [2:0] dc_state;
    reg [4:0] check_idx;
    reg [7:0] parity;
    reg [4:0] emit_idx;

    // Input staging: one symbol is latched per valid cycle. Symbols that
    // arrive after the codeword is complete are dropped BY DESIGN (the
    // host must wait for done before sending the next codeword).
    always @(posedge clk) begin
        if (rst) begin
            in_reg_vld <= 0;
        end else begin
            if (in_valid) in_reg <= in_data;
            in_reg_vld <= in_valid;
        end
    end

    // Read FSM: header byte first, then collect the codeword symbols.
    always @(posedge clk) begin
        if (rst) begin
            rd_state <= RD_IDLE;
            recv_count <= 0;
            length <= 0;
        end else begin
            case (rd_state)
                RD_IDLE: if (in_reg_vld) begin
                    length <= in_reg[4:0];
                    recv_count <= 0;
                    rd_state <= RD_DATA;
                end
                RD_DATA: if (in_reg_vld) begin
                    symbols[recv_count] <= in_reg;
                    recv_count <= recv_count + 1;
                    if (recv_count == length - 1) rd_state <= RD_FINISH;
                end
            endcase
        end
    end

    // Decode FSM: parity-check the codeword, then emit the data symbols.
    always @(posedge clk) begin
        if (rst) begin
            dc_state <= DC_WAIT;
            check_idx <= 0;
            parity <= 0;
            emit_idx <= 0;
            out_valid <= 0;
            done <= 0;
            error <= 0;
        end else begin
            out_valid <= 0;
            case (dc_state)
                DC_WAIT: if (rd_state == RD_FINISH) begin
                    dc_state <= DC_CHECK;
                    check_idx <= 0;
                    parity <= 0;
                end
                DC_CHECK: begin
                    parity <= parity ^ symbols[check_idx];
                    check_idx <= check_idx + 1;
                    if (check_idx == length - 1) dc_state <= DC_JUDGE;
                end
                DC_JUDGE: begin
                    if (parity == 0) dc_state <= DC_EMIT;
                    else dc_state <= DC_ERROR;
                end
                DC_EMIT: begin
                    out_valid <= 1;
                    out_data <= symbols[emit_idx];
                    emit_idx <= emit_idx + 1;
                    if (emit_idx == length - 2) dc_state <= DC_DONE;
                end
                DC_DONE: done <= 1;
                DC_ERROR: error <= 1;
            endcase
        end
    end
endmodule

module rsd_decoder_fixed (
    input wire clk,
    input wire rst,
    input wire in_valid,
    input wire [7:0] in_data,
    output reg out_valid,
    output reg [7:0] out_data,
    output reg done,
    output reg error
);
    localparam RD_IDLE = 0;
    localparam RD_DATA = 1;
    localparam RD_FINISH = 2;
    localparam DC_WAIT = 0;
    localparam DC_CHECK = 1;
    localparam DC_JUDGE = 2;
    localparam DC_EMIT = 3;
    localparam DC_DONE = 4;
    localparam DC_ERROR = 5;

    // FIX: buffer sized for the maximum 15-symbol codeword.
    reg [7:0] symbols [0:14];

    reg [1:0] rd_state;
    reg [4:0] length;
    reg [4:0] recv_count;
    reg [7:0] in_reg;
    reg in_reg_vld;

    reg [2:0] dc_state;
    reg [4:0] check_idx;
    reg [7:0] parity;
    reg [4:0] emit_idx;

    always @(posedge clk) begin
        if (rst) begin
            in_reg_vld <= 0;
        end else begin
            if (in_valid) in_reg <= in_data;
            in_reg_vld <= in_valid;
        end
    end

    always @(posedge clk) begin
        if (rst) begin
            rd_state <= RD_IDLE;
            recv_count <= 0;
            length <= 0;
        end else begin
            case (rd_state)
                RD_IDLE: if (in_reg_vld) begin
                    length <= in_reg[4:0];
                    recv_count <= 0;
                    rd_state <= RD_DATA;
                end
                RD_DATA: if (in_reg_vld) begin
                    symbols[recv_count] <= in_reg;
                    recv_count <= recv_count + 1;
                    if (recv_count == length - 1) rd_state <= RD_FINISH;
                end
            endcase
        end
    end

    always @(posedge clk) begin
        if (rst) begin
            dc_state <= DC_WAIT;
            check_idx <= 0;
            parity <= 0;
            emit_idx <= 0;
            out_valid <= 0;
            done <= 0;
            error <= 0;
        end else begin
            out_valid <= 0;
            case (dc_state)
                DC_WAIT: if (rd_state == RD_FINISH) begin
                    dc_state <= DC_CHECK;
                    check_idx <= 0;
                    parity <= 0;
                end
                DC_CHECK: begin
                    parity <= parity ^ symbols[check_idx];
                    check_idx <= check_idx + 1;
                    if (check_idx == length - 1) dc_state <= DC_JUDGE;
                end
                DC_JUDGE: begin
                    if (parity == 0) dc_state <= DC_EMIT;
                    else dc_state <= DC_ERROR;
                end
                DC_EMIT: begin
                    out_valid <= 1;
                    out_data <= symbols[emit_idx];
                    emit_idx <= emit_idx + 1;
                    if (emit_idx == length - 2) dc_state <= DC_DONE;
                end
                DC_DONE: done <= 1;
                DC_ERROR: error <= 1;
            endcase
        end
    end
endmodule
