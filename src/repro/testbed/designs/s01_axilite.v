// Bug S1 -- Protocol Violation -- AXI-Lite register slave (Xilinx).
//
// A register-file slave on an AXI4-Lite bus, modeled on Xilinx's
// example AXI-Lite endpoint that the ZipCPU formal-verification
// articles dissect. Writes arrive on the AW/W channels; the slave must
// answer each accepted write with a B-channel response that STAYS
// VALID until the master asserts BREADY (AXI's valid-until-ready
// rule).
//
// ROOT CAUSE: the response FSM deasserts BVALID after a single cycle
// whether or not BREADY was high -- a corner of the AXI handshake the
// simple demo never exercised. A master that applies B-channel
// backpressure loses write responses and the transaction count
// diverges (exactly the class of corner-case protocol violations the
// paper describes escaping simulation testing, section 3.4.1).
//
// SYMPTOM: an external monitor (an AXI protocol checker, like the
// FPGA shell's) reports the violation; the master also stalls waiting
// for the lost response.
//
// FIX: hold BVALID until the BREADY handshake completes
// (axilite_regs_fixed).

module axilite_regs (
    input wire clk,
    input wire rst,
    // write address channel
    input wire awvalid,
    input wire [3:0] awaddr,
    output reg awready,
    // write data channel
    input wire wvalid,
    input wire [31:0] wdata,
    output reg wready,
    // write response channel
    output reg bvalid,
    input wire bready,
    // read address channel
    input wire arvalid,
    input wire [3:0] araddr,
    output reg arready,
    // read data channel
    output reg rvalid,
    output reg [31:0] rdata,
    input wire rready
);
    localparam WR_IDLE = 0;
    localparam WR_RESP = 1;
    localparam RD_IDLE = 0;
    localparam RD_DATA = 1;

    reg [31:0] regs [0:15];
    reg wr_state;
    reg rd_state;

    // Write FSM.
    always @(posedge clk) begin
        if (rst) begin
            wr_state <= WR_IDLE;
            awready <= 1;
            wready <= 1;
            bvalid <= 0;
        end else begin
            case (wr_state)
                WR_IDLE: if (awvalid && wvalid) begin
                    regs[awaddr] <= wdata;
                    awready <= 0;
                    wready <= 0;
                    bvalid <= 1;
                    wr_state <= WR_RESP;
                end
                WR_RESP: begin
                    // BUG: BVALID drops after one cycle even when the
                    // master has not taken the response (bready low).
                    bvalid <= 0;
                    awready <= 1;
                    wready <= 1;
                    wr_state <= WR_IDLE;
                end
            endcase
        end
    end

    // Read FSM.
    always @(posedge clk) begin
        if (rst) begin
            rd_state <= RD_IDLE;
            arready <= 1;
            rvalid <= 0;
        end else begin
            case (rd_state)
                RD_IDLE: if (arvalid) begin
                    rdata <= regs[araddr];
                    rvalid <= 1;
                    arready <= 0;
                    rd_state <= RD_DATA;
                end
                RD_DATA: if (rready) begin
                    rvalid <= 0;
                    arready <= 1;
                    rd_state <= RD_IDLE;
                end
            endcase
        end
    end
endmodule

module axilite_regs_fixed (
    input wire clk,
    input wire rst,
    input wire awvalid,
    input wire [3:0] awaddr,
    output reg awready,
    input wire wvalid,
    input wire [31:0] wdata,
    output reg wready,
    output reg bvalid,
    input wire bready,
    input wire arvalid,
    input wire [3:0] araddr,
    output reg arready,
    output reg rvalid,
    output reg [31:0] rdata,
    input wire rready
);
    localparam WR_IDLE = 0;
    localparam WR_RESP = 1;
    localparam RD_IDLE = 0;
    localparam RD_DATA = 1;

    reg [31:0] regs [0:15];
    reg wr_state;
    reg rd_state;

    always @(posedge clk) begin
        if (rst) begin
            wr_state <= WR_IDLE;
            awready <= 1;
            wready <= 1;
            bvalid <= 0;
        end else begin
            case (wr_state)
                WR_IDLE: if (awvalid && wvalid) begin
                    regs[awaddr] <= wdata;
                    awready <= 0;
                    wready <= 0;
                    bvalid <= 1;
                    wr_state <= WR_RESP;
                end
                WR_RESP: if (bready) begin
                    // FIX: the response is held until BREADY completes
                    // the handshake.
                    bvalid <= 0;
                    awready <= 1;
                    wready <= 1;
                    wr_state <= WR_IDLE;
                end
            endcase
        end
    end

    always @(posedge clk) begin
        if (rst) begin
            rd_state <= RD_IDLE;
            arready <= 1;
            rvalid <= 0;
        end else begin
            case (rd_state)
                RD_IDLE: if (arvalid) begin
                    rdata <= regs[araddr];
                    rvalid <= 1;
                    arready <= 0;
                    rd_state <= RD_DATA;
                end
                RD_DATA: if (rready) begin
                    rvalid <= 0;
                    arready <= 1;
                    rd_state <= RD_IDLE;
                end
            endcase
        end
    end
endmodule
