// Bug C3 -- Signal Asynchrony -- SDSPI controller (generic platform).
//
// The response-delay stage of an SD-card SPI controller. The host
// interface requires at least two cycles between a request and its
// response, so the datapath buffers the computed response for one
// extra cycle before presenting it. This is the paper's section 3.3.3
// example embedded in the controller.
//
// ROOT CAUSE: the response DATA is delayed through buffered_response,
// but the response VALID is asserted immediately on the request --
// the two signals that must move together are updated asynchronously:
//     if (request) buffered_response <= input_data + 1;
//     final_response <= buffered_response;
//     if (request) final_response_valid <= 1;   // one cycle early
//
// SYMPTOM: an incorrect output value (the host samples final_response
// one cycle before the fresh data lands, reading the previous
// response).
//
// FIX: delay the valid through the same number of stages as the data
// (sdspi_delay_fixed).
//
// The bit-timing engine is a two-process FSM (next-state variable),
// one of the paper's FSM-detection false-negative patterns.

module sdspi_delay (
    input wire clk,
    input wire rst,
    input wire request,
    input wire [7:0] input_data,
    output reg [7:0] final_response,
    output reg final_response_valid
);
    localparam TM_LOW = 0;
    localparam TM_HIGH = 1;
    localparam CK_IDLE = 0;
    localparam CK_BUSY = 1;

    reg [7:0] buffered_response;
    reg tm_state;
    reg tm_next;
    reg ck_state;

    always @(posedge clk) begin
        if (rst) begin
            final_response_valid <= 0;
        end else begin
            final_response_valid <= 0;
            if (request) buffered_response <= input_data + 1;
            final_response <= buffered_response;
            // BUG: valid fires one cycle before the data arrives.
            if (request) final_response_valid <= 1;
        end
    end

    // SPI bit-timing engine (two-process FSM; undetectable pattern).
    always @(*) begin
        tm_next = tm_state;
        case (tm_state)
            TM_LOW: if (request) tm_next = TM_HIGH;
            TM_HIGH: tm_next = TM_LOW;
        endcase
    end

    always @(posedge clk) begin
        if (rst) tm_state <= TM_LOW;
        else tm_state <= tm_next;
    end

    // Host-side busy tracker FSM (detectable).
    always @(posedge clk) begin
        if (rst) begin
            ck_state <= CK_IDLE;
        end else begin
            case (ck_state)
                CK_IDLE: if (request) ck_state <= CK_BUSY;
                CK_BUSY: if (final_response_valid) ck_state <= CK_IDLE;
            endcase
        end
    end
endmodule

module sdspi_delay_fixed (
    input wire clk,
    input wire rst,
    input wire request,
    input wire [7:0] input_data,
    output reg [7:0] final_response,
    output reg final_response_valid
);
    localparam TM_LOW = 0;
    localparam TM_HIGH = 1;
    localparam CK_IDLE = 0;
    localparam CK_BUSY = 1;

    reg [7:0] buffered_response;
    reg delayed_response_valid;
    reg tm_state;
    reg tm_next;
    reg ck_state;

    always @(posedge clk) begin
        if (rst) begin
            final_response_valid <= 0;
            delayed_response_valid <= 0;
        end else begin
            delayed_response_valid <= 0;
            if (request) buffered_response <= input_data + 1;
            final_response <= buffered_response;
            // FIX: the valid rides the same one-stage delay as the data.
            if (request) delayed_response_valid <= 1;
            final_response_valid <= delayed_response_valid;
        end
    end

    always @(*) begin
        tm_next = tm_state;
        case (tm_state)
            TM_LOW: if (request) tm_next = TM_HIGH;
            TM_HIGH: tm_next = TM_LOW;
        endcase
    end

    always @(posedge clk) begin
        if (rst) tm_state <= TM_LOW;
        else tm_state <= tm_next;
    end

    always @(posedge clk) begin
        if (rst) begin
            ck_state <= CK_IDLE;
        end else begin
            case (ck_state)
                CK_IDLE: if (request) ck_state <= CK_BUSY;
                CK_BUSY: if (final_response_valid) ck_state <= CK_IDLE;
            endcase
        end
    end
endmodule
