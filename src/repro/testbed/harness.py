"""Push-button bug reproduction harness (§6.1).

The public entry points mirror the paper's artifact workflow:

* :func:`load_design` — parse and elaborate a testbed design;
* :func:`reproduce` — run a bug's scenario on the buggy design and check
  that the documented symptoms appear;
* :func:`verify_fix` — run the same scenario on the fixed design and
  check that no symptom appears;
* :func:`run_losscheck` — full LossCheck workflow for a loss bug:
  instrument, calibrate on the shipped ground-truth test, analyze the
  failure, and compare against the paper's expected outcome.
"""

from __future__ import annotations

import importlib.resources
from dataclasses import dataclass, field

from .. import obs
from ..hdl import elaborate, parse
from ..runtime import TimeLimitExceeded, time_limit
from ..sim import Simulator
from ..core.losscheck import LossCheck
from .metadata import BUG_IDS, SPECS
from .scenarios import GROUND_TRUTH, SCENARIOS


class ReproductionError(AssertionError):
    """Raised when a bug does not reproduce (or a fix does not fix)."""


class ScenarioHang(RuntimeError):
    """Raised when a scenario overruns its wall-clock watchdog.

    The message names the cycle the simulator had reached and the value
    of every detected FSM state register — the first things a debugger
    wants from a hung design.
    """


@dataclass
class Reproduction:
    """Outcome of one push-button reproduction."""

    bug_id: str
    observation: object
    expected_symptoms: frozenset
    fixed: bool
    #: Structured obs run report (only populated while ``obs.enabled``).
    report: dict = field(default=None, repr=False)

    @property
    def reproduced(self):
        """Buggy run: all documented symptoms observed."""
        return self.expected_symptoms <= self.observation.symptoms

    @property
    def clean(self):
        """Fixed run: no symptom observed."""
        return not self.observation.failed


def _design_text(filename):
    package = importlib.resources.files("repro.testbed") / "designs" / filename
    return package.read_text()


def load_design(bug_id, fixed=False):
    """Parse + elaborate the (buggy or fixed) design for *bug_id*."""
    spec = SPECS[bug_id]
    with obs.span("load_design", bug=bug_id, fixed=fixed):
        text = _design_text(spec.design_file)
        with obs.span("parse"):
            source = parse(text)
        top = spec.fixed_top if fixed else spec.top
        with obs.span("elaborate"):
            return elaborate(source, top=top)


def load_source(bug_id):
    """The parsed multi-module source file for *bug_id*."""
    spec = SPECS[bug_id]
    return parse(_design_text(spec.design_file))


def _hang_diagnostic(bug_id, design, sim, seconds):
    """Describe where a hung scenario was stuck: cycle + FSM states."""
    states = []
    try:
        from ..analysis import detect_fsms

        for fsm in detect_fsms(design.top):
            states.append("%s=%s" % (fsm.name, sim.state.get(fsm.name)))
    except Exception:
        pass
    return (
        "%s scenario exceeded its %.1fs watchdog at cycle %d"
        " (FSM states: %s)"
        % (bug_id, seconds, sim.cycle, ", ".join(states) or "none detected")
    )


def run_scenario(bug_id, design=None, fixed=False, watchdog=None):
    """Run the bug's scenario and return its Observation.

    *watchdog* (seconds, default off) bounds the wall-clock time of the
    simulation; an overrun raises :class:`ScenarioHang` whose message
    names the current cycle and the detected FSM states.
    """
    if design is None:
        design = load_design(bug_id, fixed=fixed)
    sim = Simulator(design)
    try:
        with time_limit(watchdog):
            with obs.span("simulate", bug=bug_id) as span:
                observation = SCENARIOS[bug_id](sim)
                span.set(cycles=sim.cycle)
    except TimeLimitExceeded:
        raise ScenarioHang(
            _hang_diagnostic(bug_id, design, sim, watchdog)
        ) from None
    return observation


def reproduce(bug_id, watchdog=None):
    """Push-button reproduction of one bug; raises if it fails to show.

    While :data:`repro.obs.enabled` is set, the returned
    :class:`Reproduction` carries a structured run report (span tree +
    metrics snapshot) under ``result.report``. *watchdog* bounds the
    simulation wall-clock as in :func:`run_scenario`.
    """
    spec = SPECS[bug_id]
    with obs.span("reproduce", bug=bug_id):
        observation = run_scenario(bug_id, fixed=False, watchdog=watchdog)
    result = Reproduction(
        bug_id=bug_id,
        observation=observation,
        expected_symptoms=spec.symptoms,
        fixed=False,
        report=(
            obs.build_report(
                "reproduce:%s" % bug_id,
                meta={
                    "bug": bug_id,
                    "symptoms": sorted(s.value for s in observation.symptoms),
                },
            )
            if obs.enabled
            else None
        ),
    )
    if not result.reproduced:
        raise ReproductionError(
            "%s did not reproduce: expected %s, observed %s (%s)"
            % (
                bug_id,
                sorted(s.value for s in spec.symptoms),
                sorted(s.value for s in observation.symptoms),
                observation.details,
            )
        )
    return result


def verify_fix(bug_id, watchdog=None):
    """Run the scenario on the fixed design; raises if symptoms remain."""
    spec = SPECS[bug_id]
    observation = run_scenario(bug_id, fixed=True, watchdog=watchdog)
    result = Reproduction(
        bug_id=bug_id,
        observation=observation,
        expected_symptoms=spec.symptoms,
        fixed=True,
    )
    if not result.clean:
        raise ReproductionError(
            "%s fix still shows symptoms %s (%s)"
            % (
                bug_id,
                sorted(s.value for s in observation.symptoms),
                observation.details,
            )
        )
    return result


def reproduce_all():
    """Reproduce every testbed bug; returns {bug_id: Reproduction}."""
    return {bug_id: reproduce(bug_id) for bug_id in BUG_IDS}


@dataclass
class LossCheckOutcome:
    """Result of the full LossCheck workflow on one loss bug."""

    bug_id: str
    result: object
    expected_locations: tuple
    expected_false_positives: tuple
    expected_false_negative: bool
    generated_lines: int = 0
    monitored_registers: int = 0
    pruned_registers: int = 0

    @property
    def localized(self):
        """True if every expected root-cause location was reported."""
        return all(
            loc in self.result.localized for loc in self.expected_locations
        )

    @property
    def false_positives(self):
        """Reported locations that are not documented root causes."""
        expected = set(self.expected_locations)
        return [loc for loc in self.result.localized if loc not in expected]

    @property
    def matches_paper(self):
        """True when the outcome matches the paper's §6.3 account."""
        if self.expected_false_negative:
            return not self.localized
        if not self.localized:
            return False
        return set(self.false_positives) == set(self.expected_false_positives)


def run_losscheck(bug_id, prune=False):
    """Full LossCheck workflow for one loss bug (§6.3).

    *prune* enables the dataflow-slice instrumentation pruning; the
    localization verdicts must not change, only the overhead.
    """
    spec = SPECS[bug_id]
    if spec.losscheck is None:
        raise ValueError("%s is not a LossCheck bug" % bug_id)
    lc_spec = spec.losscheck
    design = load_design(bug_id, fixed=False)
    losscheck = LossCheck(
        design,
        source=lc_spec.source,
        sink=lc_spec.sink,
        source_valid=lc_spec.source_valid,
        prune=prune,
    )
    if lc_spec.uses_filtering and bug_id in GROUND_TRUTH:
        losscheck.calibrate(GROUND_TRUTH[bug_id])
    result = losscheck.analyze(SCENARIOS[bug_id])
    return LossCheckOutcome(
        bug_id=bug_id,
        result=result,
        expected_locations=lc_spec.expected_locations,
        expected_false_positives=lc_spec.expected_false_positives,
        expected_false_negative=lc_spec.expected_false_negative,
        generated_lines=losscheck.generated_line_count(),
        monitored_registers=len(losscheck.monitored),
        pruned_registers=len(losscheck.pruned_out),
    )
