"""Testbed metadata: the 20 reproducible bugs of Table 2.

Each :class:`BugSpec` records the bug's subclass, application, platform,
expected symptoms, the tools that help localize it, its design file and
top modules, the documented root cause, and (for data-loss bugs) the
LossCheck configuration.

The symptom and helpful-tool assignments follow the paper's Table 2 and
the constraints stated in §6.3: SignalCat helps with every bug; each
monitor helps with at least four; LossCheck localizes D1, D2, D3, D4,
C2 and C4 and fails (by mis-filtering) on D11.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class BugClass(enum.Enum):
    """Top-level classes of the paper's taxonomy (§3.1)."""

    DATA_MIS_ACCESS = "data mis-access"
    COMMUNICATION = "communication"
    SEMANTIC = "semantic"


class BugSubclass(enum.Enum):
    """The 13 subclasses of Table 1."""

    BUFFER_OVERFLOW = "Buffer Overflow"
    BIT_TRUNCATION = "Bit Truncation"
    MISINDEXING = "Misindexing"
    ENDIANNESS_MISMATCH = "Endianness Mismatch"
    FAILURE_TO_UPDATE = "Failure-to-Update"
    DEADLOCK = "Deadlock"
    PRODUCER_CONSUMER_MISMATCH = "Producer-Consumer Mismatch"
    SIGNAL_ASYNCHRONY = "Signal Asynchrony"
    USE_WITHOUT_VALID = "Use-Without-Valid"
    PROTOCOL_VIOLATION = "Protocol Violation"
    API_MISUSE = "API Misuse"
    INCOMPLETE_IMPLEMENTATION = "Incomplete Implementation"
    ERRONEOUS_EXPRESSION = "Erroneous Expression"

    @property
    def bug_class(self):
        """The Table 1 class this subclass belongs to."""
        return _SUBCLASS_TO_CLASS[self]


_SUBCLASS_TO_CLASS = {
    BugSubclass.BUFFER_OVERFLOW: BugClass.DATA_MIS_ACCESS,
    BugSubclass.BIT_TRUNCATION: BugClass.DATA_MIS_ACCESS,
    BugSubclass.MISINDEXING: BugClass.DATA_MIS_ACCESS,
    BugSubclass.ENDIANNESS_MISMATCH: BugClass.DATA_MIS_ACCESS,
    BugSubclass.FAILURE_TO_UPDATE: BugClass.DATA_MIS_ACCESS,
    BugSubclass.DEADLOCK: BugClass.COMMUNICATION,
    BugSubclass.PRODUCER_CONSUMER_MISMATCH: BugClass.COMMUNICATION,
    BugSubclass.SIGNAL_ASYNCHRONY: BugClass.COMMUNICATION,
    BugSubclass.USE_WITHOUT_VALID: BugClass.COMMUNICATION,
    BugSubclass.PROTOCOL_VIOLATION: BugClass.SEMANTIC,
    BugSubclass.API_MISUSE: BugClass.SEMANTIC,
    BugSubclass.INCOMPLETE_IMPLEMENTATION: BugClass.SEMANTIC,
    BugSubclass.ERRONEOUS_EXPRESSION: BugClass.SEMANTIC,
}


class Symptom(enum.Enum):
    """Observable symptoms (Table 2 columns)."""

    STUCK = "Stuck"
    LOSS = "Loss"
    INCORRECT = "Incor."
    EXTERNAL = "Ext."


class Tool(enum.Enum):
    """The five debugging tools (Table 2 columns)."""

    SIGNALCAT = "SC"
    FSM_MONITOR = "FSM"
    STATISTICS_MONITOR = "Stat."
    DEPENDENCY_MONITOR = "Dep."
    LOSSCHECK = "LC"


class Platform(enum.Enum):
    """Target platform (Table 2); decides the Figure 2/3 grouping."""

    HARP = "HARP"
    XILINX = "Xilinx"
    GENERIC = "Generic"


@dataclass
class LossCheckSpec:
    """How LossCheck is configured for a loss bug (§6.3)."""

    source: str
    sink: str
    source_valid: Optional[str]
    #: Names of root-cause locations an analysis should report.
    expected_locations: tuple
    #: Whether the paper applied the ground-truth FP filtering (§4.5.3).
    uses_filtering: bool = True
    #: Locations the paper reports as false positives for this bug.
    expected_false_positives: tuple = ()
    #: True for the documented mis-filtered false negative (D11).
    expected_false_negative: bool = False


@dataclass
class BugSpec:
    """One Table 2 entry."""

    bug_id: str
    subclass: BugSubclass
    application: str
    platform: Platform
    symptoms: frozenset
    helpful_tools: frozenset
    design_file: str
    top: str
    fixed_top: str
    root_cause: str
    fix: str
    #: Registers a human identifies as FSM state variables (for §6.3's
    #: 32-FSM detection accuracy experiment).
    manual_fsms: tuple = ()
    #: The subset of manual_fsms the pattern heuristics cannot see
    #: (two-process FSMs; the paper's 5 false negatives).
    undetectable_fsms: tuple = ()
    #: Human-readable state names for FSM Monitor output.
    state_names: dict = field(default_factory=dict)
    losscheck: Optional[LossCheckSpec] = None
    #: Target clock frequency in MHz (§6.4: Optimus targets 400, SHA512
    #: 400, all other designs 200).
    target_mhz: int = 200

    @property
    def bug_class(self):
        return self.subclass.bug_class


def _tools(*names):
    return frozenset(names)


SPECS = {
    "D1": BugSpec(
        bug_id="D1",
        subclass=BugSubclass.BUFFER_OVERFLOW,
        application="RSD",
        platform=Platform.HARP,
        symptoms=frozenset({Symptom.STUCK, Symptom.LOSS}),
        helpful_tools=_tools(
            Tool.SIGNALCAT, Tool.FSM_MONITOR, Tool.STATISTICS_MONITOR,
            Tool.LOSSCHECK,
        ),
        design_file="d01_rsd.v",
        top="rsd_decoder",
        fixed_top="rsd_decoder_fixed",
        root_cause="symbol buffer holds 14 entries but codewords reach 15; "
        "the parity-symbol write is dropped (non-power-of-two overflow)",
        fix="size the buffer for the maximum codeword",
        manual_fsms=("rd_state", "dc_state"),
        state_names={
            "rd_state": {0: "RD_IDLE", 1: "RD_DATA", 2: "RD_FINISH"},
            "dc_state": {
                0: "DC_WAIT", 1: "DC_CHECK", 2: "DC_JUDGE",
                3: "DC_EMIT", 4: "DC_DONE", 5: "DC_ERROR",
            },
        },
        losscheck=LossCheckSpec(
            source="in_data",
            sink="out_data",
            source_valid="in_valid",
            expected_locations=("symbols",),
            uses_filtering=True,
            expected_false_positives=("in_reg",),
        ),
    ),
    "D2": BugSpec(
        bug_id="D2",
        subclass=BugSubclass.BUFFER_OVERFLOW,
        application="Grayscale",
        platform=Platform.HARP,
        symptoms=frozenset({Symptom.STUCK, Symptom.LOSS}),
        helpful_tools=_tools(
            Tool.SIGNALCAT, Tool.FSM_MONITOR, Tool.STATISTICS_MONITOR,
            Tool.LOSSCHECK,
        ),
        design_file="d02_grayscale.v",
        top="grayscale",
        fixed_top="grayscale_fixed",
        root_cause="the output FIFO (8 entries) overflows under a full-rate "
        "read burst against a half-rate drain; overflowing pixels are dropped",
        fix="size the FIFO for the largest burst (or throttle the reader)",
        manual_fsms=("rd_state", "wr_state"),
        state_names={
            "rd_state": {0: "RD_IDLE", 1: "RD_REQ", 2: "RD_FINISH"},
            "wr_state": {0: "WR_IDLE", 1: "WR_DATA", 2: "WR_FINISH"},
        },
        losscheck=LossCheckSpec(
            source="rd_rsp_data",
            sink="wr_data",
            source_valid="rd_rsp_valid",
            expected_locations=("out_fifo.data", "gray"),
            uses_filtering=True,
        ),
    ),
    "D3": BugSpec(
        bug_id="D3",
        subclass=BugSubclass.BUFFER_OVERFLOW,
        application="Optimus",
        platform=Platform.HARP,
        symptoms=frozenset({Symptom.STUCK, Symptom.LOSS}),
        helpful_tools=_tools(
            Tool.SIGNALCAT, Tool.FSM_MONITOR, Tool.STATISTICS_MONITOR,
            Tool.DEPENDENCY_MONITOR, Tool.LOSSCHECK,
        ),
        design_file="d03_optimus.v",
        top="optimus_mmio",
        fixed_top="optimus_mmio_fixed",
        root_cause="the 8-entry reply ring is indexed by a free-running "
        "4-bit pointer with no occupancy check; on overflow the index high "
        "bit is truncated and unread replies are overwritten",
        fix="assert rsp_ready backpressure while the ring is full",
        manual_fsms=("disp_state", "fwd_state"),
        undetectable_fsms=("fwd_state",),
        state_names={
            "disp_state": {0: "DISP_IDLE", 1: "DISP_FORWARD", 2: "DISP_WAIT"},
        },
        losscheck=LossCheckSpec(
            source="rsp_data",
            sink="poll_data",
            source_valid="rsp_valid",
            expected_locations=("ring",),
            uses_filtering=True,
        ),
        target_mhz=400,
    ),
    "D4": BugSpec(
        bug_id="D4",
        subclass=BugSubclass.BUFFER_OVERFLOW,
        application="Frame FIFO",
        platform=Platform.GENERIC,
        symptoms=frozenset({Symptom.LOSS}),
        helpful_tools=_tools(
            Tool.SIGNALCAT, Tool.STATISTICS_MONITOR,
            Tool.DEPENDENCY_MONITOR, Tool.LOSSCHECK,
        ),
        design_file="d04_frame_fifo.v",
        top="frame_fifo",
        fixed_top="frame_fifo_fixed",
        root_cause="frames longer than the 16-entry ring wrap the write "
        "pointer (index truncation) and overwrite the frame's own head",
        fix="detect the overflow and drop oversized frames whole",
        manual_fsms=("wr_state",),
        state_names={"wr_state": {0: "WR_FRAME", 1: "WR_COMMIT"}},
        losscheck=LossCheckSpec(
            source="in_data",
            sink="out_data",
            source_valid="in_valid",
            expected_locations=("mem",),
            uses_filtering=False,
        ),
    ),
    "D5": BugSpec(
        bug_id="D5",
        subclass=BugSubclass.BIT_TRUNCATION,
        application="SHA512",
        platform=Platform.HARP,
        symptoms=frozenset({Symptom.INCORRECT, Symptom.EXTERNAL}),
        helpful_tools=_tools(
            Tool.SIGNALCAT, Tool.STATISTICS_MONITOR, Tool.DEPENDENCY_MONITOR,
        ),
        design_file="d05_sha512.v",
        top="sha512",
        fixed_top="sha512_fixed",
        root_cause="line_idx <= 42'(byte_addr) >> 6 casts before shifting, "
        "truncating address bits [47:42]",
        fix="shift before the cast: 42'(byte_addr >> 6)",
        manual_fsms=("ft_state", "hs_state"),
        state_names={
            "ft_state": {0: "FT_IDLE", 1: "FT_REQ", 2: "FT_WAIT", 3: "FT_DONE"},
            "hs_state": {0: "HS_IDLE", 1: "HS_ROUND", 2: "HS_FLUSH"},
        },
        target_mhz=400,
    ),
    "D6": BugSpec(
        bug_id="D6",
        subclass=BugSubclass.BIT_TRUNCATION,
        application="FFT",
        platform=Platform.GENERIC,
        symptoms=frozenset({Symptom.INCORRECT}),
        helpful_tools=_tools(Tool.SIGNALCAT, Tool.DEPENDENCY_MONITOR),
        design_file="d06_fft.v",
        top="fft_butterfly",
        fixed_top="fft_butterfly_fixed",
        root_cause="the 13-bit butterfly sum is stored into a 12-bit "
        "register, truncating the growth (carry) bit",
        fix="widen the sum register to 13 bits",
        manual_fsms=("bf_state",),
        undetectable_fsms=("bf_state",),
    ),
    "D7": BugSpec(
        bug_id="D7",
        subclass=BugSubclass.MISINDEXING,
        application="FADD",
        platform=Platform.GENERIC,
        symptoms=frozenset({Symptom.INCORRECT}),
        helpful_tools=_tools(Tool.SIGNALCAT),
        design_file="d07_fadd.v",
        top="fadd",
        fixed_top="fadd_fixed",
        root_cause="the IEEE-754 fraction is extracted as bits [23:0] "
        "instead of [22:0], pulling in an exponent bit",
        fix="extract bits [22:0]",
        manual_fsms=("fa_state",),
        state_names={
            "fa_state": {
                0: "FA_IDLE", 1: "FA_ALIGN", 2: "FA_ADD",
                3: "FA_NORM", 4: "FA_PACK",
            },
        },
    ),
    "D8": BugSpec(
        bug_id="D8",
        subclass=BugSubclass.MISINDEXING,
        application="AXI-Stream Switch",
        platform=Platform.GENERIC,
        symptoms=frozenset({Symptom.INCORRECT}),
        helpful_tools=_tools(Tool.SIGNALCAT),
        design_file="d08_axis_switch.v",
        top="axis_switch",
        fixed_top="axis_switch_fixed",
        root_cause="the destination port is read from header bits [7:4] "
        "instead of [3:0]",
        fix="index the low nibble",
        manual_fsms=("sw_state",),
        state_names={"sw_state": {0: "SW_HEADER", 1: "SW_PAYLOAD"}},
    ),
    "D9": BugSpec(
        bug_id="D9",
        subclass=BugSubclass.ENDIANNESS_MISMATCH,
        application="SDSPI",
        platform=Platform.GENERIC,
        symptoms=frozenset({Symptom.INCORRECT}),
        helpful_tools=_tools(Tool.SIGNALCAT),
        design_file="d09_sdspi_endian.v",
        top="sdspi_response",
        fixed_top="sdspi_response_fixed",
        root_cause="the response register is assembled little-endian but "
        "handed to a big-endian checksum module",
        fix="store the first (most significant) byte in the high half",
        manual_fsms=("rs_state",),
        state_names={
            "rs_state": {0: "RS_FIRST", 1: "RS_SECOND", 2: "RS_CRC"},
        },
    ),
    "D10": BugSpec(
        bug_id="D10",
        subclass=BugSubclass.FAILURE_TO_UPDATE,
        application="SHA512",
        platform=Platform.HARP,
        symptoms=frozenset({Symptom.INCORRECT}),
        helpful_tools=_tools(
            Tool.SIGNALCAT, Tool.STATISTICS_MONITOR, Tool.DEPENDENCY_MONITOR,
        ),
        design_file="d10_sha512_reset.v",
        top="sha512_multi",
        fixed_top="sha512_multi_fixed",
        root_cause="the digest accumulator is not re-seeded when a new "
        "request starts; request N>1 folds into request N-1's digest",
        fix="re-initialize the accumulator on start",
        manual_fsms=("ft_state", "hs_state"),
        state_names={
            "ft_state": {0: "FT_IDLE", 1: "FT_REQ", 2: "FT_WAIT", 3: "FT_DONE"},
            "hs_state": {0: "HS_IDLE", 1: "HS_ROUND", 2: "HS_FLUSH"},
        },
        target_mhz=400,
    ),
    "D11": BugSpec(
        bug_id="D11",
        subclass=BugSubclass.FAILURE_TO_UPDATE,
        application="Frame FIFO",
        platform=Platform.GENERIC,
        symptoms=frozenset({Symptom.LOSS}),
        helpful_tools=_tools(Tool.SIGNALCAT, Tool.STATISTICS_MONITOR),
        design_file="d11_frame_fifo_drop.v",
        top="frame_fifo_drop",
        fixed_top="frame_fifo_drop_fixed",
        root_cause="the dropping flag set by an aborted frame is never "
        "cleared at that frame's end, so later good frames are dropped too",
        fix="clear the flag when the aborted frame's last word passes",
        manual_fsms=("wr_state", "dropping"),
        state_names={
            "wr_state": {0: "WR_FRAME", 1: "WR_COMMIT"},
            "dropping": {0: "DP_PASS", 1: "DP_DROP"},
        },
        losscheck=LossCheckSpec(
            source="in_data",
            sink="out_data",
            source_valid="in_valid",
            expected_locations=("word_stage",),
            uses_filtering=True,
            expected_false_negative=True,
        ),
    ),
    "D12": BugSpec(
        bug_id="D12",
        subclass=BugSubclass.FAILURE_TO_UPDATE,
        application="Frame FIFO",
        platform=Platform.GENERIC,
        symptoms=frozenset({Symptom.INCORRECT}),
        helpful_tools=_tools(Tool.SIGNALCAT, Tool.DEPENDENCY_MONITOR),
        design_file="d12_frame_fifo_len.v",
        top="frame_fifo_len",
        fixed_top="frame_fifo_len_fixed",
        root_cause="the frame-length counter is never cleared on commit; "
        "every frame after the first reports a cumulative length",
        fix="zero the counter when the frame commits",
        manual_fsms=("wr_state",),
        state_names={"wr_state": {0: "WR_FRAME", 1: "WR_COMMIT"}},
    ),
    "D13": BugSpec(
        bug_id="D13",
        subclass=BugSubclass.FAILURE_TO_UPDATE,
        application="Frame Length Measurer",
        platform=Platform.GENERIC,
        symptoms=frozenset({Symptom.INCORRECT}),
        helpful_tools=_tools(
            Tool.SIGNALCAT, Tool.STATISTICS_MONITOR, Tool.DEPENDENCY_MONITOR,
        ),
        design_file="d13_frame_len.v",
        top="frame_len",
        fixed_top="frame_len_fixed",
        root_cause="the word counter only restarts during idle gap cycles; "
        "back-to-back frames accumulate",
        fix="load the counter with 1 on each frame's first word",
        manual_fsms=("fl_state", "mt_state"),
        state_names={
            "fl_state": {0: "FL_IDLE", 1: "FL_FRAME"},
            "mt_state": {0: "MT_RUN", 1: "MT_HOLD"},
        },
    ),
    "C1": BugSpec(
        bug_id="C1",
        subclass=BugSubclass.DEADLOCK,
        application="SDSPI",
        platform=Platform.GENERIC,
        symptoms=frozenset({Symptom.STUCK}),
        helpful_tools=_tools(
            Tool.SIGNALCAT, Tool.FSM_MONITOR, Tool.DEPENDENCY_MONITOR,
        ),
        design_file="c01_sdspi_deadlock.v",
        top="sdspi_cmd",
        fixed_top="sdspi_cmd_fixed",
        root_cause="cmd_accept waits for resp_ready while resp_ready waits "
        "for cmd_accept -- a circular control dependency, both reset to 0",
        fix="latch the card response unconditionally, breaking the cycle",
        manual_fsms=("cm_state", "ru_state"),
        undetectable_fsms=("ru_state",),
        state_names={
            "cm_state": {0: "CM_IDLE", 1: "CM_SEND", 2: "CM_WAIT", 3: "CM_DONE"},
        },
    ),
    "C2": BugSpec(
        bug_id="C2",
        subclass=BugSubclass.PRODUCER_CONSUMER_MISMATCH,
        application="Optimus",
        platform=Platform.HARP,
        symptoms=frozenset({Symptom.STUCK, Symptom.LOSS}),
        helpful_tools=_tools(
            Tool.SIGNALCAT, Tool.FSM_MONITOR, Tool.STATISTICS_MONITOR,
            Tool.DEPENDENCY_MONITOR, Tool.LOSSCHECK,
        ),
        design_file="c02_optimus_pcm.v",
        top="optimus_merge",
        fixed_top="optimus_merge_fixed",
        root_cause="two producers can be valid in one cycle but the "
        "priority merge consumes one; the loser's staging register is "
        "overwritten by its next message",
        fix="backpressure producer B while its staging register is occupied",
        manual_fsms=("mg_state", "sc_state"),
        undetectable_fsms=("sc_state",),
        state_names={"mg_state": {0: "MG_RUN", 1: "MG_FLUSH"}},
        losscheck=LossCheckSpec(
            source="b_data",
            sink="out_data",
            source_valid="b_valid",
            expected_locations=("b_buf",),
            uses_filtering=True,
        ),
        target_mhz=400,
    ),
    "C3": BugSpec(
        bug_id="C3",
        subclass=BugSubclass.SIGNAL_ASYNCHRONY,
        application="SDSPI",
        platform=Platform.GENERIC,
        symptoms=frozenset({Symptom.INCORRECT}),
        helpful_tools=_tools(Tool.SIGNALCAT),
        design_file="c03_sdspi_async.v",
        top="sdspi_delay",
        fixed_top="sdspi_delay_fixed",
        root_cause="final_response is delayed one cycle through a buffer "
        "but final_response_valid is asserted immediately on the request",
        fix="delay the valid through the same stage as the data",
        manual_fsms=("ck_state", "tm_state"),
        undetectable_fsms=("tm_state",),
        state_names={"ck_state": {0: "CK_IDLE", 1: "CK_BUSY"}},
    ),
    "C4": BugSpec(
        bug_id="C4",
        subclass=BugSubclass.SIGNAL_ASYNCHRONY,
        application="AXI-Stream FIFO",
        platform=Platform.GENERIC,
        symptoms=frozenset({Symptom.LOSS}),
        helpful_tools=_tools(Tool.SIGNALCAT, Tool.LOSSCHECK),
        design_file="c04_axis_fifo_async.v",
        top="axis_fifo_out",
        fixed_top="axis_fifo_out_fixed",
        root_cause="the output stage register is reloaded on every queue "
        "pop regardless of the tvalid/tready handshake; staged words are "
        "overwritten under backpressure",
        fix="pop only when the stage is empty or being consumed",
        manual_fsms=("os_state",),
        state_names={"os_state": {0: "OS_EMPTY", 1: "OS_HELD"}},
        losscheck=LossCheckSpec(
            source="in_data",
            sink="last_taken",
            source_valid="in_valid",
            expected_locations=("tdata",),
            uses_filtering=False,
        ),
    ),
    "S1": BugSpec(
        bug_id="S1",
        subclass=BugSubclass.PROTOCOL_VIOLATION,
        application="AXI-Lite Demo",
        platform=Platform.XILINX,
        symptoms=frozenset({Symptom.EXTERNAL}),
        helpful_tools=_tools(Tool.SIGNALCAT),
        design_file="s01_axilite.v",
        top="axilite_regs",
        fixed_top="axilite_regs_fixed",
        root_cause="BVALID is deasserted after one cycle even when BREADY "
        "is low, violating AXI's valid-until-ready rule",
        fix="hold BVALID until the BREADY handshake completes",
        manual_fsms=("wr_state", "rd_state"),
        state_names={
            "wr_state": {0: "WR_IDLE", 1: "WR_RESP"},
            "rd_state": {0: "RD_IDLE", 1: "RD_DATA"},
        },
    ),
    "S2": BugSpec(
        bug_id="S2",
        subclass=BugSubclass.PROTOCOL_VIOLATION,
        application="AXI-Stream Demo",
        platform=Platform.XILINX,
        symptoms=frozenset({Symptom.EXTERNAL}),
        helpful_tools=_tools(Tool.SIGNALCAT),
        design_file="s02_axis_master.v",
        top="axis_master",
        fixed_top="axis_master_fixed",
        root_cause="TVALID is deasserted (and the word advanced) without "
        "waiting for TREADY, violating AXI-Stream's valid-until-ready rule",
        fix="hold TVALID/TDATA until TREADY completes the beat",
        manual_fsms=("gn_state",),
        state_names={"gn_state": {0: "GN_IDLE", 1: "GN_SEND", 2: "GN_DONE"}},
    ),
    "S3": BugSpec(
        bug_id="S3",
        subclass=BugSubclass.INCOMPLETE_IMPLEMENTATION,
        application="AXI-Stream Adapter",
        platform=Platform.GENERIC,
        symptoms=frozenset({Symptom.INCORRECT}),
        helpful_tools=_tools(Tool.SIGNALCAT),
        design_file="s03_axis_adapter.v",
        top="axis_adapter",
        fixed_top="axis_adapter_fixed",
        root_cause="the tkeep == 2'b01 final beat of an odd-length frame is "
        "not handled; a stale high byte is emitted carrying tlast",
        fix="honour tkeep for the last beat",
        manual_fsms=("ad_state", "ld_state"),
        state_names={
            "ad_state": {0: "AD_LOW", 1: "AD_HIGH"},
            "ld_state": {0: "LD_EMPTY", 1: "LD_FULL"},
        },
    ),
}

#: Table 2 row order.
BUG_IDS = [
    "D1", "D2", "D3", "D4", "D5", "D6", "D7", "D8", "D9", "D10", "D11",
    "D12", "D13", "C1", "C2", "C3", "C4", "S1", "S2", "S3",
]

#: Figure 2 grouping: HARP designs on top, the rest on KC705 (§6.4).
HARP_BUGS = [b for b in BUG_IDS if SPECS[b].platform is Platform.HARP]
KC705_BUGS = [b for b in BUG_IDS if SPECS[b].platform is not Platform.HARP]

#: Figure 3 grouping: the LossCheck-localizable loss bugs per platform.
FIGURE3_HARP = ["D1", "D2", "D3", "C2"]
FIGURE3_KC705 = ["D4", "C4"]
