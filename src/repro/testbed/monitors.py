"""External monitors: models of the checks an FPGA shell performs.

Several Table 2 bugs have the "Ext." symptom — an error reported by an
external monitor such as the FPGA shell's address-translation logic or
an AXI protocol checker. These Python classes watch simulator signals
every cycle and collect violations, standing in for those monitors.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Violation:
    """One external-monitor error."""

    cycle: int
    message: str


class ExternalMonitor:
    """Base class: call :meth:`check` once per cycle after stepping."""

    def __init__(self):
        self.violations = []

    @property
    def error(self):
        """True if the monitor has flagged at least one violation."""
        return bool(self.violations)

    def report(self, cycle, message):
        self.violations.append(Violation(cycle=cycle, message=message))

    def check(self, sim):
        raise NotImplementedError


class ShellAddressMonitor(ExternalMonitor):
    """The FPGA shell's address-translation check (HARP).

    Flags any memory request outside the buffer the host mapped for the
    accelerator — the "page fault reported by an FPGA shell" symptom the
    paper gives for bit truncation bugs (§3.2.2).
    """

    def __init__(self, req_signal, addr_signal, low, high):
        super().__init__()
        self.req_signal = req_signal
        self.addr_signal = addr_signal
        self.low = low
        self.high = high

    def check(self, sim):
        if sim[self.req_signal]:
            addr = sim[self.addr_signal]
            if not (self.low <= addr < self.high):
                self.report(
                    sim.cycle,
                    "address translation fault: access to %#x outside "
                    "[%#x, %#x)" % (addr, self.low, self.high),
                )


class AxiLiteWriteChecker(ExternalMonitor):
    """AXI4-Lite B-channel rule: BVALID must hold until BREADY."""

    def __init__(self, bvalid="bvalid", bready="bready"):
        super().__init__()
        self.bvalid = bvalid
        self.bready = bready
        self._prev_valid = 0
        self._prev_ready = 0

    def check(self, sim):
        valid = sim[self.bvalid]
        ready = sim[self.bready]
        if self._prev_valid and not self._prev_ready and not valid:
            self.report(
                sim.cycle,
                "protocol violation: BVALID deasserted before BREADY "
                "handshake completed",
            )
        self._prev_valid = valid
        self._prev_ready = ready


class AxiStreamChecker(ExternalMonitor):
    """AXI-Stream rule: TVALID (and TDATA) hold until TREADY."""

    def __init__(self, tvalid="tvalid", tready="tready", tdata="tdata"):
        super().__init__()
        self.tvalid = tvalid
        self.tready = tready
        self.tdata = tdata
        self._prev = None

    def check(self, sim):
        valid = sim[self.tvalid]
        ready = sim[self.tready]
        data = sim[self.tdata]
        if self._prev is not None:
            prev_valid, prev_ready, prev_data = self._prev
            if prev_valid and not prev_ready:
                if not valid:
                    self.report(
                        sim.cycle,
                        "protocol violation: TVALID deasserted before "
                        "TREADY handshake completed",
                    )
                elif data != prev_data:
                    self.report(
                        sim.cycle,
                        "protocol violation: TDATA changed while TVALID "
                        "was waiting for TREADY",
                    )
        self._prev = (valid, ready, data)
