"""VCD (value-change-dump) reading and writing.

The paper motivates its tools against "inspecting a massive waveform";
this module produces that baseline artifact (openable in GTKWave & co.)
and parses it back, so traces round-trip through the standard format.
Home of the writer that used to live in ``repro.sim.vcd`` — that module
re-exports :func:`dump_vcd`/:func:`write_vcd` for back compatibility.

Beyond the original writer this version:

* emits a ``$dumpvars`` section carrying every signal's initial value
  (required by strict VCD readers; previously initial values were plain
  cycle-0 change records);
* escapes signal names containing VCD-reserved characters (whitespace,
  ``$``, backslash, unprintables) so generated names like decoded
  recorder-argument expressions (``s0.total + 1``) survive;
* renders unknown values (Python ``None``) as ``x``/``bx``;
* provides :func:`parse_vcd`, the inverse of :func:`dump_vcd`.

This module deliberately imports nothing from the rest of the package
(it is duck-typed over simulators), keeping ``repro.sim`` ↔
``repro.wave`` imports acyclic.
"""

from __future__ import annotations

import re
import string

_ID_CHARS = string.ascii_letters + string.digits + "!#$%&'()*+,-./:;<=>?@[]^_`{|}~"

#: Characters that must not appear literally in a ``$var`` signal name:
#: whitespace splits the directive, ``$`` starts a keyword.
_RESERVED = frozenset(" \t\r\n$")

_ESCAPE_RE = re.compile(r"\\\\|\\x([0-9a-fA-F]{2})")


def _identifiers():
    """Yield unique short VCD identifier codes."""
    for char in _ID_CHARS:
        yield char
    for first in _ID_CHARS:
        for second in _ID_CHARS:
            yield first + second


def escape_id(name):
    """Escape a signal name for a ``$var`` directive (lossless)."""
    out = []
    for char in name:
        if char == "\\":
            out.append("\\\\")
        elif char in _RESERVED or not char.isprintable():
            out.append("\\x%02x" % ord(char))
        else:
            out.append(char)
    return "".join(out)


def unescape_id(name):
    """Invert :func:`escape_id`."""

    def sub(match):
        if match.group(0) == "\\\\":
            return "\\"
        return chr(int(match.group(1), 16))

    return _ESCAPE_RE.sub(sub, name)


def _change_record(value, width, code):
    """One value-change line (scalar ``0!`` / vector ``b101 !`` form)."""
    if width == 1:
        if value is None:
            return "x%s" % code
        return "%d%s" % (value & 1, code)
    if value is None:
        return "bx %s" % code
    return "b%s %s" % (bin(value)[2:], code)


def dump_vcd(waveform, widths, timescale="1ns", comment="", scope="top"):
    """Render a waveform dict ({signal: [values by cycle]}) as VCD text.

    Values are ints or ``None`` (unknown, rendered as ``x``). Initial
    values are emitted in a ``$dumpvars`` section at ``#0``; later
    timestamps carry changes only.
    """
    lines = ["$date", "  repro reproduction run", "$end"]
    if comment:
        lines += ["$comment", "  " + comment, "$end"]
    lines += ["$timescale %s $end" % timescale, "$scope module %s $end" % scope]
    codes = {}
    id_gen = _identifiers()
    for name in sorted(waveform):
        code = next(id_gen)
        codes[name] = code
        lines.append(
            "$var wire %d %s %s $end"
            % (widths.get(name, 1), code, escape_id(name))
        )
    lines += ["$upscope $end", "$enddefinitions $end"]
    cycles = max((len(v) for v in waveform.values()), default=0)
    previous = {}
    lines.append("#0")
    lines.append("$dumpvars")
    for name in sorted(waveform):
        values = waveform[name]
        value = values[0] if values else None
        previous[name] = value
        lines.append(_change_record(value, widths.get(name, 1), codes[name]))
    lines.append("$end")
    for cycle in range(1, cycles):
        changes = []
        for name in sorted(waveform):
            values = waveform[name]
            if cycle >= len(values):
                continue
            value = values[cycle]
            if previous[name] == value:
                continue
            previous[name] = value
            changes.append(
                _change_record(value, widths.get(name, 1), codes[name])
            )
        if changes:
            lines.append("#%d" % cycle)
            lines.extend(changes)
    lines.append("#%d" % cycles)
    return "\n".join(lines) + "\n"


def parse_vcd(text):
    """Parse VCD text into ``(waveform, widths)`` — :func:`dump_vcd` inverse.

    One value per cycle per signal; cycles a signal was never dumped at
    hold the last dumped value (``None`` before the first dump). The
    trailing timestamp marker defines the trace length.
    """
    widths = {}
    names = {}  # code -> name
    changes = {}  # code -> [(time, value)]
    in_header = True
    time = 0
    end_time = 0
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if in_header:
            if line.startswith("$var"):
                tokens = line.split()
                # $var <type> <width> <code> <name> $end
                width = int(tokens[2])
                code = tokens[3]
                names[code] = unescape_id(tokens[4])
                widths[names[code]] = width
                changes[code] = []
            elif line.startswith("$enddefinitions"):
                in_header = False
            continue
        if line.startswith("$"):
            continue  # $dumpvars / $end wrappers
        if line.startswith("#"):
            time = int(line[1:])
            end_time = max(end_time, time)
            continue
        first = line[0]
        if first in "bB":
            digits, code = line[1:].split(None, 1)
            value = None if digits.lower().startswith(("x", "z")) else int(digits, 2)
        else:
            code = line[1:]
            value = None if first.lower() in "xz" else int(first)
        if code in changes:
            changes[code].append((time, value))
    waveform = {}
    for code, name in names.items():
        values = []
        pending = sorted(changes[code])
        current = None
        cursor = 0
        for cycle in range(end_time):
            while cursor < len(pending) and pending[cursor][0] <= cycle:
                current = pending[cursor][1]
                cursor += 1
            values.append(current)
        waveform[name] = values
    return waveform, widths


def write_vcd(sim, path, comment=""):
    """Write a simulator's captured trace (``trace=...``) to *path*."""
    if not sim.waveform:
        raise ValueError(
            "simulator has no trace; construct it with trace='all' or a "
            "signal list"
        )
    widths = {name: sim.symbols.width_of(name) for name in sim.waveform}
    text = dump_vcd(sim.waveform, widths, comment=comment)
    with open(path, "w") as handle:
        handle.write(text)
    return path
