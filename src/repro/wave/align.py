"""Trace alignment and divergence analysis (the ``wavediff`` engine).

:func:`diff_traces` compares a **golden** trace against a **variant**
(buggy, faulted, or mutated) execution of the same design:

* optional cycle-offset alignment absorbs pipeline-latency skew — the
  offset minimizing total mismatches over the common signals wins, ties
  broken toward zero;
* every common signal gets a first-divergence cycle and a
  divergence-cycle count (``None`` values are unknown and never count
  as divergence);
* the rtl-repair-style **OSDD** (output/state divergence delta) is the
  earliest *output*-signal divergence minus the earliest *state*
  (register) divergence: a positive delta says which register went
  wrong how many cycles before the module interface did — the
  localization step of the paper's observe-a-divergence loop.

:func:`first_snapshot_divergence` is the shared primitive behind the
fuzz oracles' and the fault scorer's golden-vs-variant readings — one
aligner, three consumers.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Divergence:
    """The first golden-vs-variant mismatch of one comparison."""

    cycle: int
    signal: str
    golden: object
    variant: object


@dataclass
class SignalDiff:
    """Divergence summary for one compared signal."""

    name: str
    width: int
    kind: str
    domains: tuple
    #: Golden-side cycle of the first mismatch (None: never diverged).
    first_divergence: object
    #: Number of compared cycles where the values differed.
    divergent_cycles: int
    #: Cycles where both sides had known values.
    compared_cycles: int
    #: Cycles skipped because either side was x/unknown.
    unknown_cycles: int
    #: Values at the first divergence (None when never diverged).
    golden_value: object = None
    variant_value: object = None


@dataclass
class TraceDiff:
    """Full golden-vs-variant comparison result."""

    #: Applied variant cycle offset (variant cycle = golden cycle + offset).
    offset: int
    signals: list = field(default_factory=list)
    signals_compared: int = 0
    divergent_signals: int = 0
    cycles_compared: int = 0
    #: First divergence over non-input signals (inputs are testbench
    #: stimulus, not design behavior), or None.
    first: object = None
    #: ``(cycle, signal)`` of the earliest output/state divergence.
    output_divergence: object = None
    state_divergence: object = None
    #: OSDD: output cycle minus state cycle (None unless both diverged).
    osdd: object = None

    @property
    def diverged(self):
        return self.divergent_signals > 0

    def divergent(self):
        """Divergent per-signal diffs, earliest (then by name) first."""
        return sorted(
            (d for d in self.signals if d.first_divergence is not None),
            key=lambda d: (d.first_divergence, d.name),
        )


def _window(golden_sig, variant_sig, offset):
    """Compared golden-cycle range for one signal pair at *offset*."""
    lo = max(0, -offset)
    hi = min(len(golden_sig.values), len(variant_sig.values) - offset)
    return lo, max(lo, hi)


def _mismatches(golden, variant, names, offset):
    """Total mismatching (signal, cycle) pairs at *offset*."""
    count = 0
    for name in names:
        sig_g = golden.signals[name]
        sig_v = variant.signals[name]
        lo, hi = _window(sig_g, sig_v, offset)
        for cycle in range(lo, hi):
            value_g = sig_g.values[cycle]
            value_v = sig_v.values[cycle + offset]
            if value_g is None or value_v is None:
                continue
            if value_g != value_v:
                count += 1
    return count


def align_offset(golden, variant, max_offset, names=None):
    """The variant cycle offset in ``[-max_offset, max_offset]`` that
    minimizes total mismatches (ties broken toward zero, then negative).
    """
    if names is None:
        names = sorted(set(golden.signals) & set(variant.signals))
    best_offset = 0
    best_score = None
    for offset in sorted(
        range(-max_offset, max_offset + 1), key=lambda o: (abs(o), o)
    ):
        score = _mismatches(golden, variant, names, offset)
        if best_score is None or score < best_score:
            best_score = score
            best_offset = offset
        if best_score == 0:
            break
    return best_offset


def diff_traces(golden, variant, max_offset=0):
    """Compare two traces; returns a :class:`TraceDiff`.

    Only signals present in both traces are compared. *max_offset*
    enables cycle-offset alignment (0: compare in lockstep).
    """
    names = sorted(set(golden.signals) & set(variant.signals))
    offset = (
        align_offset(golden, variant, max_offset, names=names)
        if max_offset
        else 0
    )
    diffs = []
    first = None
    output_div = None
    state_div = None
    cycles_compared = 0
    for name in names:
        sig_g = golden.signals[name]
        sig_v = variant.signals[name]
        kind = sig_v.kind if sig_v.kind != "internal" else sig_g.kind
        domains = sig_v.domains or sig_g.domains
        lo, hi = _window(sig_g, sig_v, offset)
        cycles_compared = max(cycles_compared, hi - lo)
        compared = unknown = divergent = 0
        first_cycle = None
        value_g_at = value_v_at = None
        for cycle in range(lo, hi):
            value_g = sig_g.values[cycle]
            value_v = sig_v.values[cycle + offset]
            if value_g is None or value_v is None:
                unknown += 1
                continue
            compared += 1
            if value_g != value_v:
                divergent += 1
                if first_cycle is None:
                    first_cycle = cycle
                    value_g_at, value_v_at = value_g, value_v
        diff = SignalDiff(
            name=name,
            width=max(sig_g.width, sig_v.width),
            kind=kind,
            domains=tuple(domains),
            first_divergence=first_cycle,
            divergent_cycles=divergent,
            compared_cycles=compared,
            unknown_cycles=unknown,
            golden_value=value_g_at,
            variant_value=value_v_at,
        )
        diffs.append(diff)
        if first_cycle is None:
            continue
        if kind != "input" and (
            first is None
            or (first_cycle, name) < (first.cycle, first.signal)
        ):
            first = Divergence(
                cycle=first_cycle,
                signal=name,
                golden=value_g_at,
                variant=value_v_at,
            )
        if kind == "output" and (
            output_div is None or (first_cycle, name) < output_div
        ):
            output_div = (first_cycle, name)
        if kind == "state" and (
            state_div is None or (first_cycle, name) < state_div
        ):
            state_div = (first_cycle, name)
    osdd = None
    if output_div is not None and state_div is not None:
        osdd = output_div[0] - state_div[0]
    return TraceDiff(
        offset=offset,
        signals=diffs,
        signals_compared=len(diffs),
        divergent_signals=sum(
            1 for d in diffs if d.first_divergence is not None
        ),
        cycles_compared=cycles_compared,
        first=first,
        output_divergence=output_div,
        state_divergence=state_div,
        osdd=osdd,
    )


# ---------------------------------------------------------------------------
# Snapshot-trace divergence (the fuzz-oracle / fault-scorer primitive)
# ---------------------------------------------------------------------------


@dataclass
class SnapshotDivergence:
    """First mismatch between two per-cycle snapshot lists.

    Either a value mismatch (``cycle``/``signal`` set) or a pure length
    mismatch (both None).
    """

    cycle: object = None
    signal: object = None
    value_a: object = None
    value_b: object = None
    length_a: int = 0
    length_b: int = 0

    def describe(self, label_a, label_b):
        """The legacy human-readable divergence string."""
        if self.signal is not None:
            return "cycle %d signal %s: %s=%r %s=%r" % (
                self.cycle, self.signal,
                label_a, self.value_a, label_b, self.value_b,
            )
        return "trace length %s=%d %s=%d" % (
            label_a, self.length_a, label_b, self.length_b
        )


def first_snapshot_divergence(trace_a, trace_b):
    """First mismatch between two ``[{signal: value}]`` snapshot traces.

    Compares the intersection of signals cycle by cycle (memory values
    included — snapshots carry copied lists), then trace lengths.
    Returns a :class:`SnapshotDivergence` or None when equivalent.
    """
    for cycle, (snap_a, snap_b) in enumerate(zip(trace_a, trace_b)):
        for name in sorted(set(snap_a) & set(snap_b)):
            if snap_a[name] != snap_b[name]:
                return SnapshotDivergence(
                    cycle=cycle,
                    signal=name,
                    value_a=snap_a[name],
                    value_b=snap_b[name],
                    length_a=len(trace_a),
                    length_b=len(trace_b),
                )
    if len(trace_a) != len(trace_b):
        return SnapshotDivergence(
            length_a=len(trace_a), length_b=len(trace_b)
        )
    return None
