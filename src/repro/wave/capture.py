"""Trace capture orchestration and the ``wavediff`` workflow.

This is the subsystem's glue layer: run a testbed scenario with full
tracing, optionally under an injected fault schedule, and hand matched
golden/variant traces to the aligner. Three comparison modes back the
``python -m repro wavediff`` CLI:

* default — the fixed design (golden) against the buggy design
  (variant): where does the shipped bug first show?
* ``--fault SPEC`` — the same design with and without an injected
  fault: what would this SEU/stuck-at do, and with what OSDD?
* ``--fault SPEC --fixed`` — fault injection on the fixed design
  instead of the buggy one.

Fault specs use a compact grammar, one event per ``+``-joined term::

    KIND:TARGET@CYCLE[:bit=N][:index=N][:duration=N]

e.g. ``seu_reg:count@12:bit=3`` or
``stuck0:valid@5:duration=4+glitch:ready@9``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import obs
from .align import diff_traces
from .report import build_wave_report
from .trace import Trace


class FaultSpecError(ValueError):
    """Raised for an unparsable ``--fault`` specification."""


def parse_fault_spec(text):
    """Parse a CLI fault spec into a :class:`~repro.faults.models.FaultSchedule`."""
    from ..faults.models import KINDS, FaultEvent, FaultSchedule

    events = []
    for term in text.split("+"):
        term = term.strip()
        if not term:
            raise FaultSpecError("empty fault event in %r" % text)
        head, sep, tail = term.partition("@")
        if not sep:
            raise FaultSpecError(
                "fault event %r has no @CYCLE (expected "
                "KIND:TARGET@CYCLE[:bit=N][:index=N][:duration=N])" % term
            )
        kind, sep, target = head.partition(":")
        if not sep or not target:
            raise FaultSpecError(
                "fault event %r has no KIND:TARGET before the @" % term
            )
        if kind not in KINDS:
            raise FaultSpecError(
                "unknown fault kind %r (known: %s)" % (kind, ", ".join(KINDS))
            )
        fields = tail.split(":")
        try:
            cycle = int(fields[0])
        except ValueError:
            raise FaultSpecError(
                "fault event %r has a non-integer cycle %r" % (term, fields[0])
            )
        if cycle < 0:
            raise FaultSpecError(
                "fault event %r has a negative cycle %d (cycles count "
                "from 0)" % (term, cycle)
            )
        options = {"bit": 0, "index": 0, "duration": 0}
        given = set()
        for option in fields[1:]:
            key, sep, value = option.partition("=")
            if not sep or key not in options:
                raise FaultSpecError(
                    "bad fault option %r in %r (expected bit=N, index=N, "
                    "or duration=N)" % (option, term)
                )
            if key in given:
                raise FaultSpecError(
                    "duplicate fault option %r in %r (each of bit/index/"
                    "duration may appear once)" % (key, term)
                )
            given.add(key)
            try:
                options[key] = int(value)
            except ValueError:
                raise FaultSpecError(
                    "fault option %r in %r is not an integer" % (option, term)
                )
            if options[key] < 0:
                raise FaultSpecError(
                    "fault option %r in %r is negative" % (option, term)
                )
        events.append(
            FaultEvent(cycle=cycle, kind=kind, target=target, **options)
        )
    return FaultSchedule(events=events, label=text)


def capture_scenario(bug_id, fixed=False, schedule=None, label=""):
    """Run *bug_id*'s scenario with full tracing; returns ``(trace, obs)``.

    With *schedule*, a :class:`~repro.faults.injector.FaultInjector`
    rides along and realizes the fault events at their exact cycles.
    """
    from ..sim import Simulator
    from ..testbed.harness import load_design
    from ..testbed.scenarios import SCENARIOS

    design = load_design(bug_id, fixed=fixed)
    sim = Simulator(design, trace="all")
    injector = None
    if schedule is not None:
        from ..faults.injector import FaultInjector

        injector = FaultInjector(sim, schedule)
    try:
        observation = SCENARIOS[bug_id](sim)
    finally:
        if injector is not None:
            injector.detach()
    if not label:
        label = "%s:%s" % (bug_id, "fixed" if fixed else "buggy")
        if schedule is not None:
            label += "+fault"
    return Trace.from_simulator(sim, label=label), observation


def capture_what_if(sim, schedule, run, label="what-if"):
    """Checkpointed what-if replay that keeps the faulted trace.

    Like :func:`repro.faults.injector.what_if`, but captures the
    variant's :class:`Trace` *before* rolling the simulator back to the
    golden timeline. The simulator must have been constructed with
    tracing enabled. Returns ``(trace, value)`` where *value* is
    ``run(sim)``'s return.
    """
    from ..faults.injector import FaultInjector

    snapshot = sim.checkpoint()
    injector = FaultInjector(sim, schedule)
    try:
        value = run(sim)
        trace = Trace.from_simulator(sim, label=label)
    finally:
        injector.detach()
        sim.restore(snapshot)
    return trace, value


@dataclass
class WaveDiffOutcome:
    """Everything a wavediff run produced."""

    bug_id: str
    golden: Trace
    variant: Trace
    diff: object
    report: dict = field(default=None, repr=False)

    @property
    def diverged(self):
        return self.diff.diverged


def wavediff_bug(bug_id, fault=None, fixed=False, signals=None, last=None,
                 max_offset=0):
    """The full wavediff workflow for one testbed bug.

    Captures golden and variant traces (see the module docstring for
    the three modes), aligns and diffs them, and builds the
    byte-deterministic ``repro.wave/v1`` report. *signals*/*last*
    window both traces before the comparison; *max_offset* enables
    cycle-offset alignment. *fault* is a spec string or a
    :class:`~repro.faults.models.FaultSchedule`.
    """
    schedule = None
    if fault is not None:
        schedule = (
            parse_fault_spec(fault) if isinstance(fault, str) else fault
        )
    base = "fixed" if fixed else "buggy"
    with obs.span("wave:capture", bug=bug_id, mode=(
        "fault" if schedule is not None else "fixed-vs-buggy"
    )):
        if schedule is not None:
            mode = "fault"
            golden, _ = capture_scenario(bug_id, fixed=fixed)
            variant, _ = capture_scenario(
                bug_id, fixed=fixed, schedule=schedule
            )
        else:
            mode = "fixed-vs-buggy"
            golden, _ = capture_scenario(bug_id, fixed=True)
            variant, _ = capture_scenario(bug_id, fixed=False)
    if signals or last is not None:
        golden = golden.filter(signals=signals, last=last)
        variant = variant.filter(signals=signals, last=last)
    with obs.span("wave:align", bug=bug_id, max_offset=max_offset):
        diff = diff_traces(golden, variant, max_offset=max_offset)
    with obs.span("wave:report", bug=bug_id):
        report = build_wave_report(
            bug_id,
            diff,
            mode=mode,
            golden_label=golden.label,
            variant_label=variant.label,
            cycles=max(golden.cycles, variant.cycles),
            fault=schedule,
            base=base,
        )
    if obs.enabled:
        obs.gauge("wave.signals_compared").set(diff.signals_compared)
        obs.gauge("wave.divergent_signals").set(diff.divergent_signals)
        if diff.osdd is not None:
            obs.gauge("wave.osdd").set(diff.osdd)
    return WaveDiffOutcome(
        bug_id=bug_id,
        golden=golden,
        variant=variant,
        diff=diff,
        report=report,
    )
