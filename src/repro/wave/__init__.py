"""``repro.wave`` — waveform observability: capture, VCD, trace diff.

The dynamic complement to the static L04xx checkers. The paper's
debugging loop is "observe a divergence, localize it in time and
space"; this subsystem makes that loop concrete:

* :class:`~repro.wave.trace.Trace` — per-signal value sequences with
  widths, design-role kinds, and clock-domain tags, captured from live
  simulator runs, checkpointed what-if replays, or decoded recorder IP
  buffers — all exportable to standard VCD;
* :func:`~repro.wave.align.diff_traces` — golden-vs-variant alignment
  (optional cycle-offset search for pipeline-latency skew), per-signal
  first-divergence tables, and the rtl-repair-style OSDD metric
  (earliest output divergence minus earliest state divergence);
* :func:`~repro.wave.capture.wavediff_bug` — the push-button workflow
  behind ``python -m repro wavediff``, emitting byte-deterministic
  ``repro.wave/v1`` reports.

Exports resolve lazily (PEP 562) so that ``repro.sim``'s back-compat
VCD shim can import :mod:`repro.wave.vcd` without dragging in the
simulator/testbed layers this package builds on.
"""

from __future__ import annotations

_EXPORTS = {
    "dump_vcd": ".vcd",
    "parse_vcd": ".vcd",
    "write_vcd": ".vcd",
    "escape_id": ".vcd",
    "unescape_id": ".vcd",
    "SignalTrace": ".trace",
    "Trace": ".trace",
    "classify_signals": ".trace",
    "signal_domains": ".trace",
    "Divergence": ".align",
    "SignalDiff": ".align",
    "TraceDiff": ".align",
    "align_offset": ".align",
    "diff_traces": ".align",
    "SnapshotDivergence": ".align",
    "first_snapshot_divergence": ".align",
    "SCHEMA": ".report",
    "build_wave_report": ".report",
    "render_wave_report": ".report",
    "render_wave_summary": ".report",
    "write_wave_report": ".report",
    "FaultSpecError": ".capture",
    "WaveDiffOutcome": ".capture",
    "capture_scenario": ".capture",
    "capture_what_if": ".capture",
    "parse_fault_spec": ".capture",
    "wavediff_bug": ".capture",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            "module %r has no attribute %r" % (__name__, name)
        )
    import importlib

    module = importlib.import_module(module_name, __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
