"""The :class:`Trace` model: per-signal value sequences with metadata.

A Trace is the dynamic-observability counterpart of the static L04xx
checkers: a rectangular view of one execution — every traced signal's
value at every cycle, together with its width, its role in the design
(``input``/``output``/``state``/``internal``/``recorded``), and the
clock-domain tags inferred by :mod:`repro.flow`. Unknown values are
``None`` (rendered as ``x`` in VCD): a recorder buffer only knows the
cycles it sampled, a shorter trace is padded, a wrapped buffer forgot
its oldest samples.

Traces are captured from live :class:`~repro.sim.simulator.Simulator`
runs (:meth:`Trace.from_simulator`), decoded from on-FPGA recorder IP
buffers (:meth:`Trace.from_recorder`), parsed back from VCD text
(:meth:`Trace.from_vcd`), or built from raw waveform dicts — and every
one exports to standard VCD.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field

from .vcd import dump_vcd, parse_vcd


@dataclass
class SignalTrace:
    """One signal's value sequence plus static metadata."""

    name: str
    width: int
    #: Per-cycle values: ints, or ``None`` for x/unknown.
    values: list
    #: Role in the design: input / output / state / internal / recorded.
    kind: str = "internal"
    #: Clock-domain tags from :func:`repro.flow.infer_domains` (sorted).
    domains: tuple = ()


def classify_signals(module):
    """Role of every declared signal: ``{name: kind}``.

    Output ports are ``output`` (even when registered — OSDD follows
    rtl-repair in treating the module interface as the output surface),
    input ports ``input``, sequentially-assigned scalars ``state``,
    memories ``memory``, everything else ``internal``.
    """
    from ..analysis.assignments import analyze_module
    from ..hdl import ast_nodes as ast
    from ..sim.values import SymbolTable

    symbols = SymbolTable(module)
    sequential = {
        record.target
        for record in analyze_module(module).assignments
        if record.sequential
    }
    kinds = {}
    for name in symbols.widths:
        if symbols.is_array(name):
            kinds[name] = "memory"
        elif name in sequential:
            kinds[name] = "state"
        else:
            kinds[name] = "internal"
    for port in module.ports:
        if port.direction is ast.PortDirection.INPUT:
            kinds[port.name] = "input"
        elif port.direction is ast.PortDirection.OUTPUT:
            kinds[port.name] = "output"
    return kinds


def signal_domains(module):
    """Clock-domain tags per signal: ``{name: (clock, ...)}`` (sorted)."""
    from ..flow import infer_domains

    try:
        inference = infer_domains(module)
    except Exception:  # domain tags are best-effort decoration
        return {}
    return {
        name: tuple(sorted(domains))
        for name, domains in inference.domains.items()
    }


@dataclass
class Trace:
    """A captured execution: ``{signal: SignalTrace}`` over *cycles*."""

    cycles: int = 0
    signals: dict = field(default_factory=dict)
    label: str = ""

    def names(self):
        """Traced signal names, sorted."""
        return sorted(self.signals)

    def __contains__(self, name):
        return name in self.signals

    def __getitem__(self, name):
        return self.signals[name]

    def waveform(self):
        """The plain ``{name: values}`` dict (VCD-writer input form)."""
        return {name: list(sig.values) for name, sig in self.signals.items()}

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_waveform(cls, waveform, widths, kinds=None, domains=None,
                      label=""):
        """Build from a raw ``{signal: [values]}`` dict.

        Memory snapshots (list values) are skipped — traces hold scalar
        sequences. Shorter sequences are padded with ``None``.
        """
        kinds = kinds or {}
        domains = domains or {}
        cycles = max((len(v) for v in waveform.values()), default=0)
        signals = {}
        for name in sorted(waveform):
            values = list(waveform[name])
            if any(isinstance(value, list) for value in values):
                continue
            values += [None] * (cycles - len(values))
            signals[name] = SignalTrace(
                name=name,
                width=widths.get(name, 1),
                values=values,
                kind=kinds.get(name, "internal"),
                domains=tuple(domains.get(name, ())),
            )
        return cls(cycles=cycles, signals=signals, label=label)

    @classmethod
    def from_simulator(cls, sim, label="", with_domains=True):
        """Capture a live simulator's recorded waveform (``trace=...``).

        Signal kinds come from the simulated module; clock-domain tags
        from :mod:`repro.flow` unless *with_domains* is False.
        """
        module = sim.module
        widths = {name: sim.symbols.width_of(name) for name in sim.waveform}
        return cls.from_waveform(
            sim.waveform,
            widths,
            kinds=classify_signals(module),
            domains=signal_domains(module) if with_domains else None,
            label=label or module.name,
        )

    @classmethod
    def from_vcd(cls, text, label=""):
        """Parse VCD text back into a Trace (metadata-free)."""
        waveform, widths = parse_vcd(text)
        return cls.from_waveform(waveform, widths, label=label)

    @classmethod
    def from_recorder(cls, signalcat, sim, label=""):
        """Decode an on-FPGA SignalCat recorder buffer into a Trace.

        One signal per recorded ``$display`` argument, named
        ``s<stmt>[.<label>].a<arg>.<expr>``; a cycle's value is known
        only where the statement's path-constraint flag was set in a
        captured sample — everything else (including samples lost to a
        buffer wrap) is ``None``.
        """
        from ..hdl.codegen import generate_expression
        from ..sim.values import mask

        recorder = sim.ip_model(signalcat.RECORDER_INSTANCE)
        cycles = sim.cycle
        signals = {}
        fields = []  # (flag_bit, offset, width, name)
        for layout, record in zip(signalcat.layouts, signalcat.displays):
            base = "s%d" % layout.index
            if layout.label:
                base += ".%s" % layout.label
            for position, ((offset, width), arg) in enumerate(
                zip(layout.arg_fields, record.stmt.args)
            ):
                name = "%s.a%d.%s" % (base, position, generate_expression(arg))
                signals[name] = SignalTrace(
                    name=name,
                    width=width,
                    values=[None] * cycles,
                    kind="recorded",
                )
                fields.append((layout.flag_bit, offset, width, name))
        for cycle, word in recorder.samples:
            if cycle >= cycles:
                continue
            for flag_bit, offset, width, name in fields:
                if (word >> flag_bit) & 1:
                    signals[name].values[cycle] = (word >> offset) & mask(width)
        return cls(cycles=cycles, signals=signals, label=label)

    # -- windows ------------------------------------------------------------

    def filter(self, signals=None, last=None):
        """A sub-trace: glob-selected *signals*, trailing *last* cycles.

        *signals* is a glob pattern or list of patterns matched with
        :func:`fnmatch.fnmatchcase`; *last* keeps only the final N
        cycles (the window a debugger looks at first).
        """
        names = self.names()
        if signals:
            patterns = (
                [signals] if isinstance(signals, str) else list(signals)
            )
            names = [
                name
                for name in names
                if any(fnmatch.fnmatchcase(name, pat) for pat in patterns)
            ]
        start = 0
        cycles = self.cycles
        if last is not None and 0 <= last < cycles:
            start = cycles - last
            cycles = last
        selected = {}
        for name in names:
            sig = self.signals[name]
            selected[name] = SignalTrace(
                name=name,
                width=sig.width,
                values=sig.values[start:start + cycles],
                kind=sig.kind,
                domains=sig.domains,
            )
        return Trace(cycles=cycles, signals=selected, label=self.label)

    # -- export -------------------------------------------------------------

    def to_vcd(self, timescale="1ns", comment=""):
        """Render as VCD text."""
        widths = {name: sig.width for name, sig in self.signals.items()}
        return dump_vcd(
            self.waveform(), widths, timescale=timescale, comment=comment
        )

    def save_vcd(self, path, timescale="1ns", comment=""):
        """Write the VCD rendering to *path*."""
        with open(path, "w") as handle:
            handle.write(self.to_vcd(timescale=timescale, comment=comment))
        return path
