"""Byte-deterministic ``repro.wave/v1`` wavediff reports.

Follows the same contract as ``repro.diag/v1`` and ``repro.faults/v1``:
the report dict carries no wall-clock data, per-signal tables are
sorted, and rendering is ``json.dumps(..., indent=2, sort_keys=True)``
plus a trailing newline — two identical wavediff runs produce
byte-identical files (the CI ``cmp`` gate depends on this).
"""

from __future__ import annotations

import json
import os

SCHEMA = "repro.wave/v1"


def _divergence_dict(divergence):
    if divergence is None:
        return None
    return {
        "cycle": divergence.cycle,
        "signal": divergence.signal,
        "golden": divergence.golden,
        "variant": divergence.variant,
    }


def _endpoint_dict(endpoint):
    """A bare ``(cycle, signal)`` output/state divergence endpoint."""
    if endpoint is None:
        return None
    return {"cycle": endpoint[0], "signal": endpoint[1]}


def build_wave_report(bug_id, diff, mode, golden_label, variant_label,
                      cycles, fault=None, base="buggy"):
    """The ``repro.wave/v1`` report dict for one trace comparison.

    *diff* is a :class:`~repro.wave.align.TraceDiff`; *mode* names the
    comparison (``"fixed-vs-buggy"`` or ``"fault"``); *fault* is the
    injected :class:`~repro.faults.models.FaultSchedule` (fault mode
    only); *base* says which design variant the fault ran on.
    """
    signals = []
    for sig in sorted(diff.signals, key=lambda s: s.name):
        signals.append({
            "name": sig.name,
            "width": sig.width,
            "kind": sig.kind,
            "domains": list(sig.domains),
            "first_divergence": sig.first_divergence,
            "divergent_cycles": sig.divergent_cycles,
            "compared_cycles": sig.compared_cycles,
            "unknown_cycles": sig.unknown_cycles,
            "golden_value": sig.golden_value,
            "variant_value": sig.variant_value,
        })
    return {
        "schema": SCHEMA,
        "bug": bug_id,
        "mode": mode,
        "base": base,
        "fault": fault.to_dict() if fault is not None else None,
        "golden": golden_label,
        "variant": variant_label,
        "cycles": cycles,
        "offset": diff.offset,
        "signals_compared": diff.signals_compared,
        "divergent_signals": diff.divergent_signals,
        "diverged": diff.diverged,
        "first_divergence": _divergence_dict(diff.first),
        "output_divergence": _endpoint_dict(diff.output_divergence),
        "state_divergence": _endpoint_dict(diff.state_divergence),
        "osdd": diff.osdd,
        "signals": signals,
    }


def render_wave_report(report):
    """Render a report dict to its canonical byte-deterministic JSON."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


def write_wave_report(report, path):
    """Write the canonical JSON rendering to *path*."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        handle.write(render_wave_report(report))
    return path


def render_wave_summary(report, limit=8):
    """Human-readable wavediff summary (the non-``--json`` CLI output)."""
    lines = []
    header = "wavediff %s: %s vs %s over %d cycles" % (
        report["bug"], report["golden"], report["variant"], report["cycles"]
    )
    lines.append(header)
    if report["fault"] is not None:
        events = report["fault"].get("events", [])
        lines.append(
            "  fault: %s (%d event%s, base=%s)"
            % (
                report["fault"].get("label") or "<unlabelled>",
                len(events),
                "" if len(events) == 1 else "s",
                report["base"],
            )
        )
    if report["offset"]:
        lines.append("  alignment offset: %+d cycles" % report["offset"])
    if not report["diverged"]:
        lines.append(
            "  no divergence (%d signals compared)"
            % report["signals_compared"]
        )
        return "\n".join(lines) + "\n"
    lines.append(
        "  %d of %d signals diverge"
        % (report["divergent_signals"], report["signals_compared"])
    )
    first = report["first_divergence"]
    if first is not None:
        lines.append(
            "  first divergence: cycle %d signal %s (golden=%r variant=%r)"
            % (first["cycle"], first["signal"], first["golden"],
               first["variant"])
        )
    state = report["state_divergence"]
    output = report["output_divergence"]
    if state is not None:
        lines.append(
            "  state diverges:  cycle %d (%s)" % (state["cycle"],
                                                  state["signal"])
        )
    if output is not None:
        lines.append(
            "  output diverges: cycle %d (%s)" % (output["cycle"],
                                                  output["signal"])
        )
    if report["osdd"] is not None:
        lines.append(
            "  OSDD: %d cycle%s between state and output divergence"
            % (report["osdd"], "" if report["osdd"] == 1 else "s")
        )
    divergent = [
        sig for sig in report["signals"]
        if sig["first_divergence"] is not None
    ]
    divergent.sort(key=lambda s: (s["first_divergence"], s["name"]))
    lines.append("  per-signal first divergence:")
    for sig in divergent[:limit]:
        lines.append(
            "    cycle %4d  %-10s %s (%d/%d cycles differ)"
            % (
                sig["first_divergence"],
                sig["kind"],
                sig["name"],
                sig["divergent_cycles"],
                sig["compared_cycles"],
            )
        )
    if len(divergent) > limit:
        lines.append("    ... and %d more" % (len(divergent) - limit))
    return "\n".join(lines) + "\n"
