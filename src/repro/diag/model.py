"""Structured diagnostics: severity, source span, message, rule code.

One :class:`Diagnostic` is one finding. A :class:`DiagnosticSink` is the
collector threaded through the whole frontend (lexer, parser,
elaboration, lint): call sites :meth:`~DiagnosticSink.emit` into it and
keep going, so a single run reports *every* defect instead of dying on
the first.

Formatting follows the classic compiler convention so editors and CI
annotators can parse it::

    counter.v:14:9: error[P0201]: expected ';', got 'endmodule'

:mod:`repro.obs` counters (``diag.emitted``, ``diag.error`` /
``diag.warning`` / ``diag.note``) are incremented per emission while
``obs.enabled`` is set, like every other instrumented subsystem.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .. import obs
from .codes import describe


class Severity(enum.Enum):
    """How bad a finding is. Order: note < warning < error."""

    NOTE = "note"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self):
        return {"note": 0, "warning": 1, "error": 2}[self.value]


@dataclass(frozen=True)
class SourceSpan:
    """A position in source text: file, 1-based line and column.

    ``line == 0`` means "whole file" (no position information); columns
    are 0 when only the line is known (e.g. findings anchored to AST
    nodes, which record lines but not columns for synthesized code).
    """

    file: str = "<input>"
    line: int = 0
    col: int = 0

    def __str__(self):
        return "%s:%d:%d" % (self.file, self.line, self.col)

    def to_dict(self):
        return {"file": self.file, "line": self.line, "col": self.col}


@dataclass(frozen=True)
class Diagnostic:
    """One structured finding with a stable rule code.

    ``hint`` optionally suggests the fix (shown after the message).
    """

    severity: Severity
    code: str
    message: str
    span: SourceSpan = field(default_factory=SourceSpan)
    hint: str = ""

    def format(self):
        """The canonical one-line rendering (file:line:col: sev[CODE]: msg)."""
        text = "%s: %s[%s]: %s" % (
            self.span, self.severity.value, self.code, self.message
        )
        if self.hint:
            text += " (hint: %s)" % self.hint
        return text

    def __str__(self):
        return self.format()

    def to_dict(self):
        """JSON-ready dict (stable key set, no wall-clock data)."""
        entry = {
            "severity": self.severity.value,
            "code": self.code,
            "message": self.message,
            "span": self.span.to_dict(),
        }
        if self.hint:
            entry["hint"] = self.hint
        return entry

    def sort_key(self):
        return (
            self.span.file,
            self.span.line,
            self.span.col,
            self.code,
            self.message,
        )


class DiagnosticSink:
    """Collects diagnostics across a whole frontend run.

    The sink is deliberately dumb — append, count, sort — so every layer
    can share one instance without coupling. ``max_errors`` bounds
    cascade noise from panic-mode recovery: once the error count passes
    it, :attr:`overflowed` is set and the parser gives up on the file.
    """

    def __init__(self, max_errors=50):
        self.diagnostics = []
        self.max_errors = max_errors
        self.overflowed = False

    def __iter__(self):
        return iter(self.diagnostics)

    def __len__(self):
        return len(self.diagnostics)

    def emit(self, diagnostic):
        """Record one :class:`Diagnostic` (and bump obs counters)."""
        self.diagnostics.append(diagnostic)
        if (
            diagnostic.severity is Severity.ERROR
            and self.error_count > self.max_errors
        ):
            self.overflowed = True
        if obs.enabled:
            obs.counter("diag.emitted").inc()
            obs.counter("diag.%s" % diagnostic.severity.value).inc()
        return diagnostic

    def error(self, code, message, span=None, hint=""):
        """Shorthand: emit an error-severity diagnostic."""
        return self.emit(
            Diagnostic(Severity.ERROR, code, message, span or SourceSpan(), hint)
        )

    def warning(self, code, message, span=None, hint=""):
        """Shorthand: emit a warning-severity diagnostic."""
        return self.emit(
            Diagnostic(Severity.WARNING, code, message, span or SourceSpan(), hint)
        )

    def note(self, code, message, span=None, hint=""):
        """Shorthand: emit a note-severity diagnostic."""
        return self.emit(
            Diagnostic(Severity.NOTE, code, message, span or SourceSpan(), hint)
        )

    @property
    def error_count(self):
        return sum(
            1 for d in self.diagnostics if d.severity is Severity.ERROR
        )

    @property
    def has_errors(self):
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def counts(self):
        """{severity value: count} over all collected diagnostics."""
        tally = {"error": 0, "warning": 0, "note": 0}
        for diagnostic in self.diagnostics:
            tally[diagnostic.severity.value] += 1
        return tally

    def sorted(self):
        """Diagnostics in deterministic (file, line, col, code) order."""
        return sorted(self.diagnostics, key=Diagnostic.sort_key)

    def errors(self):
        """Only the error-severity diagnostics, in emission order."""
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]


def diagnostic_from_exception(exc, filename="<input>"):
    """Best-effort :class:`Diagnostic` for a raised frontend error.

    Frontend exceptions carry ``code`` and (when they were produced by a
    sink-threaded run) ``diagnostics``; exceptions from legacy paths
    degrade to a whole-file span.
    """
    diagnostics = getattr(exc, "diagnostics", None)
    if diagnostics:
        return diagnostics[0]
    code = getattr(exc, "code", None) or "P0201"
    return Diagnostic(
        Severity.ERROR,
        code,
        str(exc),
        SourceSpan(file=filename),
        hint=describe(code),
    )


def error_code(exc):
    """The stable bucketing key for an exception: rule code or type name.

    The fuzz campaign's invalid-case bucketing and the fault campaign's
    error taxonomy both key on this instead of message prefixes, so two
    differently-worded messages for the same defect land in one bucket.
    """
    code = getattr(exc, "code", None)
    if code:
        return code
    return type(exc).__name__
