"""The rule-code registry: every diagnostic carries a stable code.

Codes are grouped by the stage that emits them, mirroring the CLI's
stage-specific exit codes:

* ``P01xx`` — lexical errors (bad characters, unsupported literals);
* ``P02xx`` — syntax errors from the recursive-descent parser;
* ``E02xx`` — elaboration errors (parameters, widths, hierarchy);
* ``L03xx`` — lint findings keyed to the paper's Table 1 bug subclasses
  (width mismatch, truncation, missing FSM default, blocking-assign
  misuse, dead/multiply-driven signals, unconnected ports).

Codes are append-only: a code, once shipped, keeps its meaning forever,
because the fuzz campaign's crash buckets and the fault campaign's
error taxonomy key on them.
"""

from __future__ import annotations

#: code -> one-line human description (also the docs registry).
RULES = {
    # -- lexer (P01xx) ------------------------------------------------------
    "P0101": "unexpected character outside the supported Verilog subset",
    "P0102": "real literals are not supported (two-state integer subset)",
    # -- parser (P02xx) -----------------------------------------------------
    "P0201": "unexpected token (expected something else here)",
    "P0202": "unexpected token in module body",
    "P0203": "unexpected token in expression",
    "P0204": "expected a port direction (input/output/inout)",
    "P0205": "initializer only allowed on wire declarations",
    "P0206": "for-loop init/step must be blocking assignments",
    "P0207": "unsupported system task",
    "P0208": "expected an assignment statement",
    "P0209": "trailing input after a complete construct",
    "P0210": "missing endmodule before end of input",
    "P0211": "too many syntax errors; giving up on this file",
    # -- elaboration (E02xx) ------------------------------------------------
    "E0201": "width or array bound is not a compile-time constant",
    "E0202": "instance references an unknown module",
    "E0203": "instance connects to an unknown port",
    "E0204": "instance parameter override is not constant",
    "E0205": "for-loop bounds are not static",
    "E0206": "for-loop exceeds the unroll limit",
    "E0207": "instance output port must connect to an lvalue",
    "E0208": "module has no such parameter",
    "E0209": "unsupported module item during elaboration",
    # -- lint (L03xx) -------------------------------------------------------
    "L0301": "signal is used but never declared",
    "L0302": "signal is declared but never read",
    "L0303": "signal is driven from multiple processes",
    "L0304": "constant value does not fit the assignment target",
    "L0305": "assignment silently truncates a wider expression",
    "L0306": "case statement on an FSM state register has no default arm",
    "L0307": "blocking assignment inside an edge-triggered always block",
    "L0308": "instance leaves declared ports unconnected",
    # -- flow checkers (L04xx) ----------------------------------------------
    "L0401": "static combinational loop (will not settle in simulation)",
    "L0402": "communication hazard: unsynchronized clock-domain crossing, "
             "data/valid latency skew, or a circular handshake",
    "L0403": "multi-bit clock-domain crossing without gray coding or a "
             "synchronized handshake",
    "L0404": "write-write race: register driven from multiple always "
             "blocks under overlapping conditions",
    "L0405": "register mixes blocking and nonblocking sequential drivers",
    "L0406": "register is read but never reset (uninitialized until its "
             "write condition first fires)",
    "L0407": "FSM has states unreachable from its reset/initial states",
    # -- value analysis / abstract interpretation (L05xx) -------------------
    "L0501": "condition is provably always true or always false (dead "
             "branch)",
    "L0502": "case arm unreachable: subject can never equal its label value",
    "L0503": "comparison can never be satisfied (constant exceeds the "
             "operand's width or proven value range)",
    "L0504": "uninitialized value (X) can reach an output or steer control "
             "flow",
    "L0505": "memory/array index is provably out of bounds",
    "L0506": "divisor or modulus operand can be zero",
    "L0507": "redundant mask: AND selects only bits proven zero",
    # -- check pipeline notes (L00xx) ---------------------------------------
    "L0001": "module skipped by tool passes (did not elaborate cleanly)",
}


def describe(code):
    """One-line description for *code* ('' when unregistered)."""
    return RULES.get(code, "")


def is_registered(code):
    """True when *code* is in the registry (lint-oracle well-formedness)."""
    return code in RULES
