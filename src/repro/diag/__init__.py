"""repro.diag: structured diagnostics for the whole frontend.

The shared :class:`Diagnostic` model (severity, stable rule code,
``file:line:col`` span, message, optional fix hint) plus the
:class:`DiagnosticSink` threaded through lexer, parser, elaboration and
the lint pass, so one run reports *every* defect in a design instead of
dying on the first — the property the paper's debugging workflow (and
our fuzz/fault campaigns) depend on.

Layout:

* :mod:`repro.diag.model` — Diagnostic / Severity / SourceSpan / sink;
* :mod:`repro.diag.codes` — the append-only rule-code registry;
* :mod:`repro.diag.lint` — static lint keyed to the paper's Table 1 bug
  subclasses;
* :mod:`repro.diag.check` — the ``python -m repro check`` pipeline and
  its byte-deterministic ``repro.diag/v1`` report.

``lint`` and ``check`` import the HDL frontend, which itself imports
this package for the model — so they are loaded lazily (PEP 562) to
keep the import graph acyclic.
"""

from __future__ import annotations

from .codes import RULES, describe, is_registered
from .model import (
    Diagnostic,
    DiagnosticSink,
    Severity,
    SourceSpan,
    diagnostic_from_exception,
    error_code,
)

#: Version tag stamped on every serialized check report.
SCHEMA = "repro.diag/v1"

_LAZY = {
    "check_text": "check",
    "check_file": "check",
    "check_targets": "check",
    "build_check_report": "check",
    "render_check_report": "check",
    "render_check_result": "check",
    "CheckResult": "check",
    "apply_code_filters": "check",
    "lint_source": "lint",
    "lint_module": "lint",
}


def __getattr__(name):
    if name in _LAZY:
        import importlib

        module = importlib.import_module("." + _LAZY[name], __name__)
        return getattr(module, name)
    raise AttributeError("module %r has no attribute %r" % (__name__, name))


__all__ = [
    "SCHEMA",
    "RULES",
    "describe",
    "is_registered",
    "Diagnostic",
    "DiagnosticSink",
    "Severity",
    "SourceSpan",
    "diagnostic_from_exception",
    "error_code",
    "check_text",
    "check_file",
    "check_targets",
    "build_check_report",
    "render_check_report",
    "render_check_result",
    "CheckResult",
    "apply_code_filters",
    "lint_source",
    "lint_module",
]
