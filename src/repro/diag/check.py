"""The ``python -m repro check`` pipeline.

One run takes a design (a ``.v`` file or a testbed bug ID), pushes it
through the *recovering* frontend — tokenize, parse with panic-mode
recovery, lint, per-module elaboration — and then exercises the
instrumentation passes on every module that elaborated cleanly. Broken
modules are skipped with an ``L0001`` note instead of aborting the run:
the paper's premise is that debugging tools must keep working on
partially-broken designs.

The report is the ``repro.diag/v1`` schema and is byte-deterministic:
diagnostics are sorted by (file, line, col, code, message), module
entries by name, and JSON is rendered with sorted keys and no
wall-clock data — CI diffs two fresh runs to enforce this.

On every module that elaborates, the :mod:`repro.flow` checkers run
too (L0401–L0407): design-level rules — static combinational loops,
clock-domain crossings, write-write races, read-before-reset,
unreachable FSM states — that the AST-local lint pass cannot see. For
a multi-module file each module is also checked standalone, so a
finding inside a submodule can appear twice: once under its flattened
name in the parent (``u0.reg``) and once under its local name.

Exit-code contract (mirrors the CLI's stage-specific codes):

* 0 — no error-severity findings (warnings and notes are reported but
  do not fail the run unless *strict* is set);
* 1 — findings (any error, or any warning when *strict* is set);
* 3 — unrecoverable parse (not a single module survived recovery).

``select``/``ignore`` are code-prefix filters (``L04`` matches every
flow rule) applied to the diagnostics before the exit code and the
report are computed; unrecoverable-parse detection happens first, so
filtering cannot turn a hopeless parse into a clean exit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .. import obs
from ..hdl import elaborate, parse
from ..hdl.elaborate import ElaborationError
from ..hdl.lexer import LexerError
from ..hdl.parser import ParseError
from .lint import lint_module
from .model import DiagnosticSink, Severity, SourceSpan, diagnostic_from_exception

#: Version tag stamped on every serialized report.
SCHEMA = "repro.diag/v1"

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_UNRECOVERABLE = 3


@dataclass
class ModuleReport:
    """Per-module outcome: did it elaborate, which passes ran."""

    name: str
    elaborated: bool = False
    tools: list = field(default_factory=list)

    def to_dict(self):
        return {
            "name": self.name,
            "elaborated": self.elaborated,
            "tools": sorted(self.tools),
        }


@dataclass
class CheckResult:
    """Everything one check run learned about one target."""

    target: str
    filename: str
    sink: DiagnosticSink
    modules: list = field(default_factory=list)
    #: Warnings fail the run too (the CLI's ``--strict``).
    strict: bool = False
    #: Snapshot of "nothing survived recovery", taken before any
    #: select/ignore filtering touches the sink.
    unrecoverable: bool = False

    @property
    def parse_failed(self):
        """True when recovery salvaged nothing at all."""
        return self.unrecoverable

    @property
    def exit_code(self):
        if self.parse_failed:
            return EXIT_UNRECOVERABLE
        counts = self.sink.counts()
        if counts["error"] or (self.strict and counts["warning"]):
            return EXIT_FINDINGS
        return EXIT_CLEAN

    @property
    def status(self):
        # Decoupled from the exit code: warnings no longer fail the run,
        # but a run that reported any is still "findings", not "clean".
        if self.parse_failed:
            return "unrecoverable-parse"
        counts = self.sink.counts()
        if counts["error"] or counts["warning"]:
            return "findings"
        return "clean"


def _run_tool_passes(design):
    """Instantiate every applicable instrumentation pass over *design*.

    Returns the names of the passes that built successfully. Passes
    raising ValueError/KeyError are inapplicable to this design (e.g.
    LossCheck without a dataflow path), not failures.
    """
    from ..fuzz.oracles import default_tools

    ran = []
    for entry in default_tools(design):
        name, factory = entry[0], entry[1]
        try:
            factory()
        except (ValueError, KeyError):
            continue
        ran.append(name)
    return ran


def _code_matches(code, prefixes):
    return any(code.startswith(prefix) for prefix in prefixes)


def apply_code_filters(sink, select=(), ignore=()):
    """Drop diagnostics not selected (or explicitly ignored) in place.

    *select* keeps only codes matching one of the given prefixes;
    *ignore* then removes matching codes. Prefix semantics let ``L04``
    address the whole flow-rule family and ``L0402`` a single rule.
    """
    kept = sink.diagnostics
    if select:
        kept = [d for d in kept if _code_matches(d.code, select)]
    if ignore:
        kept = [d for d in kept if not _code_matches(d.code, ignore)]
    sink.diagnostics[:] = kept


def _run_flow_checks(design, sink, filename, module_name):
    """Design-level L04xx rules over one elaborated module.

    Any crash in the engine is downgraded to an L0001 note: ``check``
    must degrade gracefully on designs the dataflow engine cannot
    digest (the fuzz oracle separately hunts such crashes).
    """
    from ..flow import run_flow_checks

    try:
        run_flow_checks(design, sink=sink, filename=filename)
    except Exception as exc:  # pragma: no cover - defensive
        sink.note(
            "L0001",
            "module %r skipped by flow checkers (%s: %s)"
            % (module_name, type(exc).__name__, exc),
            SourceSpan(file=filename),
        )
        return False
    return True


def check_text(text, filename="<input>", target=None, run_tools=True,
               run_flow=True, select=(), ignore=(), strict=False):
    """Run the full check pipeline over Verilog source *text*."""
    sink = DiagnosticSink()
    result = CheckResult(
        target=target or filename, filename=filename, sink=sink,
        strict=strict,
    )
    with obs.span("check", target=result.target):
        source = parse(text, filename=filename, sink=sink)
        for module in source.modules:
            report = ModuleReport(name=module.name)
            result.modules.append(report)
            lint_module(module, source=source, sink=sink, filename=filename)
            try:
                design = elaborate(source, top=module.name)
            except (ElaborationError, ParseError, LexerError) as exc:
                sink.emit(diagnostic_from_exception(exc, filename))
                sink.note(
                    "L0001",
                    "module %r skipped by tool passes "
                    "(did not elaborate cleanly)" % module.name,
                    SourceSpan(file=filename, line=module.lineno)
                    if hasattr(module, "lineno")
                    else SourceSpan(file=filename),
                )
                continue
            report.elaborated = True
            if run_flow:
                if _run_flow_checks(design, sink, filename, module.name):
                    report.tools.append("flow")
            if run_tools:
                report.tools.extend(_run_tool_passes(design))
        result.modules.sort(key=lambda m: m.name)
        result.unrecoverable = not result.modules and sink.has_errors
        apply_code_filters(sink, select=select, ignore=ignore)
    return result


def check_file(path, run_tools=True, run_flow=True, select=(), ignore=(),
               strict=False):
    """Check one ``.v`` file on disk."""
    with open(path, "r") as handle:
        text = handle.read()
    return check_text(text, filename=str(path), target=str(path),
                      run_tools=run_tools, run_flow=run_flow,
                      select=select, ignore=ignore, strict=strict)


def _resolve_target(target):
    """A target is a testbed bug ID (``D1``) or a path to a ``.v`` file."""
    from ..testbed.harness import _design_text
    from ..testbed.metadata import SPECS

    key = target.upper()
    if key in SPECS:
        spec = SPECS[key]
        return _design_text(spec.design_file), spec.design_file, key
    with open(target, "r") as handle:
        return handle.read(), str(target), str(target)


def check_targets(targets, run_tools=True, run_flow=True, select=(),
                  ignore=(), strict=False):
    """Check several targets; returns the list of :class:`CheckResult`."""
    results = []
    for target in targets:
        text, filename, label = _resolve_target(target)
        results.append(
            check_text(text, filename=filename, target=label,
                       run_tools=run_tools, run_flow=run_flow,
                       select=select, ignore=ignore, strict=strict)
        )
    return results


def build_check_report(results):
    """The ``repro.diag/v1`` report dict for one or more check results."""
    if isinstance(results, CheckResult):
        results = [results]
    reports = []
    for result in results:
        counts = result.sink.counts()
        reports.append(
            {
                "target": result.target,
                "filename": result.filename,
                "status": result.status,
                "exit_code": result.exit_code,
                "counts": counts,
                "modules": [m.to_dict() for m in result.modules],
                "diagnostics": [d.to_dict() for d in result.sink.sorted()],
            }
        )
    return {"schema": SCHEMA, "reports": reports}


def render_check_report(report):
    """Byte-deterministic JSON rendering of a report dict."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


def render_check_result(result, verbose=False):
    """Human-readable rendering: one line per diagnostic plus a summary."""
    lines = []
    for diagnostic in result.sink.sorted():
        lines.append(diagnostic.format())
    counts = result.sink.counts()
    summary = "%s: %s — %d error%s, %d warning%s, %d note%s" % (
        result.target,
        result.status,
        counts["error"],
        "" if counts["error"] == 1 else "s",
        counts["warning"],
        "" if counts["warning"] == 1 else "s",
        counts["note"],
        "" if counts["note"] == 1 else "s",
    )
    lines.append(summary)
    if verbose:
        for module in result.modules:
            lines.append(
                "  module %s: %s%s"
                % (
                    module.name,
                    "elaborated" if module.elaborated else "skipped",
                    (", passes: " + ", ".join(sorted(module.tools)))
                    if module.tools
                    else "",
                )
            )
    return "\n".join(lines) + "\n"
