"""The ``python -m repro check`` pipeline.

One run takes a design (a ``.v`` file or a testbed bug ID), pushes it
through the *recovering* frontend — tokenize, parse with panic-mode
recovery, lint, per-module elaboration — and then exercises the
instrumentation passes on every module that elaborated cleanly. Broken
modules are skipped with an ``L0001`` note instead of aborting the run:
the paper's premise is that debugging tools must keep working on
partially-broken designs.

The report is the ``repro.diag/v1`` schema and is byte-deterministic:
diagnostics are sorted by (file, line, col, code, message), module
entries by name, and JSON is rendered with sorted keys and no
wall-clock data — CI diffs two fresh runs to enforce this.

Exit-code contract (mirrors the CLI's stage-specific codes):

* 0 — clean (note-severity diagnostics allowed);
* 1 — findings (any error- or warning-severity diagnostic);
* 3 — unrecoverable parse (not a single module survived recovery).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .. import obs
from ..hdl import elaborate, parse
from ..hdl.elaborate import ElaborationError
from ..hdl.lexer import LexerError
from ..hdl.parser import ParseError
from .lint import lint_module
from .model import DiagnosticSink, Severity, SourceSpan, diagnostic_from_exception

#: Version tag stamped on every serialized report.
SCHEMA = "repro.diag/v1"

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_UNRECOVERABLE = 3


@dataclass
class ModuleReport:
    """Per-module outcome: did it elaborate, which passes ran."""

    name: str
    elaborated: bool = False
    tools: list = field(default_factory=list)

    def to_dict(self):
        return {
            "name": self.name,
            "elaborated": self.elaborated,
            "tools": sorted(self.tools),
        }


@dataclass
class CheckResult:
    """Everything one check run learned about one target."""

    target: str
    filename: str
    sink: DiagnosticSink
    modules: list = field(default_factory=list)

    @property
    def parse_failed(self):
        """True when recovery salvaged nothing at all."""
        return not self.modules and self.sink.has_errors

    @property
    def exit_code(self):
        if self.parse_failed:
            return EXIT_UNRECOVERABLE
        counts = self.sink.counts()
        if counts["error"] or counts["warning"]:
            return EXIT_FINDINGS
        return EXIT_CLEAN

    @property
    def status(self):
        return {
            EXIT_CLEAN: "clean",
            EXIT_FINDINGS: "findings",
            EXIT_UNRECOVERABLE: "unrecoverable-parse",
        }[self.exit_code]


def _run_tool_passes(design):
    """Instantiate every applicable instrumentation pass over *design*.

    Returns the names of the passes that built successfully. Passes
    raising ValueError/KeyError are inapplicable to this design (e.g.
    LossCheck without a dataflow path), not failures.
    """
    from ..fuzz.oracles import default_tools

    ran = []
    for entry in default_tools(design):
        name, factory = entry[0], entry[1]
        try:
            factory()
        except (ValueError, KeyError):
            continue
        ran.append(name)
    return ran


def check_text(text, filename="<input>", target=None, run_tools=True):
    """Run the full check pipeline over Verilog source *text*."""
    sink = DiagnosticSink()
    result = CheckResult(
        target=target or filename, filename=filename, sink=sink
    )
    with obs.span("check", target=result.target):
        source = parse(text, filename=filename, sink=sink)
        for module in source.modules:
            report = ModuleReport(name=module.name)
            result.modules.append(report)
            lint_module(module, source=source, sink=sink, filename=filename)
            try:
                design = elaborate(source, top=module.name)
            except (ElaborationError, ParseError, LexerError) as exc:
                sink.emit(diagnostic_from_exception(exc, filename))
                sink.note(
                    "L0001",
                    "module %r skipped by tool passes "
                    "(did not elaborate cleanly)" % module.name,
                    SourceSpan(file=filename, line=module.lineno)
                    if hasattr(module, "lineno")
                    else SourceSpan(file=filename),
                )
                continue
            report.elaborated = True
            if run_tools:
                report.tools = _run_tool_passes(design)
        result.modules.sort(key=lambda m: m.name)
    return result


def check_file(path, run_tools=True):
    """Check one ``.v`` file on disk."""
    with open(path, "r") as handle:
        text = handle.read()
    return check_text(text, filename=str(path), target=str(path),
                      run_tools=run_tools)


def _resolve_target(target):
    """A target is a testbed bug ID (``D1``) or a path to a ``.v`` file."""
    from ..testbed.harness import _design_text
    from ..testbed.metadata import SPECS

    key = target.upper()
    if key in SPECS:
        spec = SPECS[key]
        return _design_text(spec.design_file), spec.design_file, key
    with open(target, "r") as handle:
        return handle.read(), str(target), str(target)


def check_targets(targets, run_tools=True):
    """Check several targets; returns the list of :class:`CheckResult`."""
    results = []
    for target in targets:
        text, filename, label = _resolve_target(target)
        results.append(
            check_text(text, filename=filename, target=label,
                       run_tools=run_tools)
        )
    return results


def build_check_report(results):
    """The ``repro.diag/v1`` report dict for one or more check results."""
    if isinstance(results, CheckResult):
        results = [results]
    reports = []
    for result in results:
        counts = result.sink.counts()
        reports.append(
            {
                "target": result.target,
                "filename": result.filename,
                "status": result.status,
                "exit_code": result.exit_code,
                "counts": counts,
                "modules": [m.to_dict() for m in result.modules],
                "diagnostics": [d.to_dict() for d in result.sink.sorted()],
            }
        )
    return {"schema": SCHEMA, "reports": reports}


def render_check_report(report):
    """Byte-deterministic JSON rendering of a report dict."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


def render_check_result(result, verbose=False):
    """Human-readable rendering: one line per diagnostic plus a summary."""
    lines = []
    for diagnostic in result.sink.sorted():
        lines.append(diagnostic.format())
    counts = result.sink.counts()
    summary = "%s: %s — %d error%s, %d warning%s, %d note%s" % (
        result.target,
        result.status,
        counts["error"],
        "" if counts["error"] == 1 else "s",
        counts["warning"],
        "" if counts["warning"] == 1 else "s",
        counts["note"],
        "" if counts["note"] == 1 else "s",
    )
    lines.append(summary)
    if verbose:
        for module in result.modules:
            lines.append(
                "  module %s: %s%s"
                % (
                    module.name,
                    "elaborated" if module.elaborated else "skipped",
                    (", passes: " + ", ".join(sorted(module.tools)))
                    if module.tools
                    else "",
                )
            )
    return "\n".join(lines) + "\n"
