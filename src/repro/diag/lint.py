"""Static lint keyed to the paper's bug taxonomy (Table 1).

The paper's studied bugs cluster into a handful of HDL-level subclasses
— buffer/width sizing mistakes, dropped or duplicated signals, FSM arms
that silently swallow states, mis-scheduled assignments — and most of
them are *visible in the source* before a single cycle is simulated.
Each lint rule targets one such subclass:

========  ==============================================================
L0301     signal used but never declared (error)
L0302     signal declared but never read (dead logic / dropped wiring)
L0303     signal driven from multiple processes (races, last-write-wins)
L0304     constant does not fit its assignment target (D-class sizing)
L0305     assignment silently truncates a wider expression
L0306     case over an FSM state register without a default arm
L0307     blocking assignment inside an edge-triggered always block
L0308     instance leaves declared ports unconnected
========  ==============================================================

Lint runs on the *parsed* per-module AST (pre-elaboration), so it still
works on modules whose elaboration fails, and on sources that only
partially parsed after panic-mode recovery. Everything except L0301 is
warning severity: the testbed's deliberately buggy designs must lint
without *errors* (they are valid Verilog) while their defects surface
as warnings.
"""

from __future__ import annotations

from ..hdl import ast_nodes as ast
from ..hdl.transform import NotConstantError, const_eval
from .model import DiagnosticSink, SourceSpan

#: Reduction / comparison / logical operators whose result is 1 bit.
_BOOL_BINOPS = frozenset(
    ["==", "!=", "===", "!==", "<", "<=", ">", ">=", "&&", "||"]
)
_BOOL_UNOPS = frozenset(["!", "&", "|", "^", "~&", "~|", "~^"])
_SHIFT_OPS = frozenset(["<<", ">>", "<<<", ">>>"])


def _span(filename, node):
    return SourceSpan(
        file=filename,
        line=getattr(node, "lineno", 0),
        col=getattr(node, "col", 0),
    )


class _ModuleLinter:
    def __init__(self, module, source, sink, filename):
        self.module = module
        self.source = source
        self.sink = sink
        self.filename = filename
        self.env = self._param_env()
        self.widths = {}   # name -> bit width (int) or None when unknown
        self.arrays = set()  # names declared as memories
        self.integers = set()
        self.declared = set(self.env)
        for port in module.ports:
            self.declared.add(port.name)
        for decl in module.declarations():
            self.declared.add(decl.name)
            self.widths[decl.name] = self._width_bits(decl.width)
            if decl.kind is ast.NetKind.INTEGER:
                self.widths[decl.name] = 32
                self.integers.add(decl.name)
            if decl.array is not None:
                self.arrays.add(decl.name)
        for port in module.ports:
            if port.name not in self.widths:
                self.widths[port.name] = self._width_bits(port.width)
        self.reads = set()
        self.writes = set()

    def _param_env(self):
        env = {}
        for param in self.module.params:
            try:
                env[param.name] = const_eval(param.value, env)
            except NotConstantError:
                env[param.name] = 0
        for item in self.module.items:
            if isinstance(item, ast.ParameterDecl):
                try:
                    env[item.name] = const_eval(item.value, env)
                except NotConstantError:
                    env[item.name] = 0
        return env

    def _width_bits(self, width):
        if width is None:
            return 1
        try:
            msb = const_eval(width.msb, self.env)
            lsb = const_eval(width.lsb, self.env)
        except NotConstantError:
            return None
        return abs(msb - lsb) + 1

    # -- expression width inference ----------------------------------------

    def expr_width(self, expr):
        """Bit width of *expr*, or None when it cannot be determined.

        Unlike the simulator's ``self_width`` (which follows the LRM and
        gives unsized literals 32 bits), an unsized :class:`Number` here
        is as wide as its value: ``count + 1`` must not flag every
        counter increment as a truncation.
        """
        if isinstance(expr, ast.Number):
            if expr.width is not None:
                return expr.width
            return max(1, expr.value.bit_length())
        if isinstance(expr, ast.Identifier):
            return self.widths.get(expr.name)
        if isinstance(expr, ast.SizeCast):
            return expr.width
        if isinstance(expr, ast.Index):
            base = self._base_name(expr.var)
            if base in self.arrays:
                return self.widths.get(base)
            return 1
        if isinstance(expr, ast.PartSelect):
            try:
                msb = const_eval(expr.msb, self.env)
                lsb = const_eval(expr.lsb, self.env)
            except NotConstantError:
                return None
            return abs(msb - lsb) + 1
        if isinstance(expr, ast.IndexedPartSelect):
            try:
                return const_eval(expr.width, self.env)
            except NotConstantError:
                return None
        if isinstance(expr, ast.Concat):
            total = 0
            for part in expr.parts:
                width = self.expr_width(part)
                if width is None:
                    return None
                total += width
            return total
        if isinstance(expr, ast.Repeat):
            try:
                count = const_eval(expr.count, self.env)
            except NotConstantError:
                return None
            width = self.expr_width(expr.expr)
            return None if width is None else count * width
        if isinstance(expr, ast.UnaryOp):
            if expr.op in _BOOL_UNOPS:
                return 1
            return self.expr_width(expr.operand)
        if isinstance(expr, ast.BinaryOp):
            if expr.op in _BOOL_BINOPS:
                return 1
            if expr.op in _SHIFT_OPS:
                return self.expr_width(expr.left)
            left = self.expr_width(expr.left)
            right = self.expr_width(expr.right)
            if left is None or right is None:
                return None
            return max(left, right)
        if isinstance(expr, ast.Ternary):
            left = self.expr_width(expr.iftrue)
            right = self.expr_width(expr.iffalse)
            if left is None or right is None:
                return None
            return max(left, right)
        return None

    @staticmethod
    def _base_name(expr):
        while isinstance(
            expr, (ast.Index, ast.PartSelect, ast.IndexedPartSelect)
        ):
            expr = expr.var
        if isinstance(expr, ast.Identifier):
            return expr.name
        return None

    def lvalue_width(self, lvalue):
        if isinstance(lvalue, ast.Identifier):
            return self.widths.get(lvalue.name)
        return self.expr_width(lvalue)

    # -- read/write collection ---------------------------------------------

    def _read_expr(self, expr):
        if expr is None:
            return
        for node in expr.walk():
            if isinstance(node, ast.Identifier):
                self.reads.add(node.name)

    def _write_lvalue(self, lvalue):
        for name in ast.lvalue_base_names(lvalue):
            self.writes.add(name)
        # Indices and slice bounds inside the lvalue are *reads*.
        for node in lvalue.walk():
            if isinstance(node, ast.Index):
                self._read_expr(node.index)
            elif isinstance(node, ast.PartSelect):
                self._read_expr(node.msb)
                self._read_expr(node.lsb)
            elif isinstance(node, ast.IndexedPartSelect):
                self._read_expr(node.base)
                self._read_expr(node.width)

    # -- the rules ----------------------------------------------------------

    def run(self):
        self._scan_items()
        self._check_undeclared_and_unused()
        self._check_multiple_drivers()

    def _scan_items(self):
        module = self.module
        for item in module.items:
            if isinstance(item, ast.ContinuousAssign):
                self._write_lvalue(item.lhs)
                self._read_expr(item.rhs)
                self._check_assign_width(item.lhs, item.rhs, item)
            elif isinstance(item, ast.Always):
                edge_triggered = any(
                    sens.edge in (ast.Edge.POSEDGE, ast.Edge.NEGEDGE)
                    for sens in item.sens
                )
                for sens in item.sens:
                    if sens.signal:
                        self.reads.add(sens.signal)
                self._scan_statement(item.body, edge_triggered)
            elif isinstance(item, ast.Instance):
                self._check_instance(item)

    def _scan_statement(self, stmt, edge_triggered):
        if stmt is None:
            return
        if isinstance(stmt, ast.Block):
            for inner in stmt.statements:
                self._scan_statement(inner, edge_triggered)
        elif isinstance(stmt, (ast.NonblockingAssign, ast.BlockingAssign)):
            self._write_lvalue(stmt.lhs)
            self._read_expr(stmt.rhs)
            self._check_assign_width(stmt.lhs, stmt.rhs, stmt)
            if (
                edge_triggered
                and isinstance(stmt, ast.BlockingAssign)
                and self._base_name(stmt.lhs) not in self.integers
            ):
                self.sink.warning(
                    "L0307",
                    "blocking assignment to %r inside an edge-triggered "
                    "always block" % (self._base_name(stmt.lhs) or "?"),
                    _span(self.filename, stmt),
                    hint="use '<=' for clocked state updates",
                )
        elif isinstance(stmt, ast.If):
            self._read_expr(stmt.cond)
            self._scan_statement(stmt.then_stmt, edge_triggered)
            self._scan_statement(stmt.else_stmt, edge_triggered)
        elif isinstance(stmt, ast.Case):
            self._read_expr(stmt.subject)
            for arm in stmt.items:
                for label in arm.labels:
                    self._read_expr(label)
                self._scan_statement(arm.stmt, edge_triggered)
            self._check_case_default(stmt)
        elif isinstance(stmt, ast.For):
            # For-loop control assignments are elaboration-time, so the
            # blocking-in-edge-triggered rule does not apply to them.
            self._write_lvalue(stmt.init.lhs)
            self._read_expr(stmt.init.rhs)
            self._read_expr(stmt.cond)
            self._write_lvalue(stmt.step.lhs)
            self._read_expr(stmt.step.rhs)
            self._scan_statement(stmt.body, edge_triggered)
        elif isinstance(stmt, ast.Display):
            for arg in stmt.args:
                self._read_expr(arg)

    def _check_assign_width(self, lhs, rhs, stmt):
        lhs_width = self.lvalue_width(lhs)
        if lhs_width is None:
            return
        if isinstance(rhs, ast.Number):
            needed = max(1, rhs.value.bit_length())
            if needed > lhs_width:
                self.sink.warning(
                    "L0304",
                    "constant %d needs %d bits but %r is %d bits wide"
                    % (
                        rhs.value,
                        needed,
                        self._base_name(lhs) or "target",
                        lhs_width,
                    ),
                    _span(self.filename, stmt),
                    hint="widen the target or mask the constant",
                )
            return
        rhs_width = self.expr_width(rhs)
        if rhs_width is not None and rhs_width > lhs_width:
            self.sink.warning(
                "L0305",
                "assignment to %r silently truncates %d bits to %d"
                % (self._base_name(lhs) or "target", rhs_width, lhs_width),
                _span(self.filename, stmt),
                hint="add an explicit part-select or widen the target",
            )

    def _check_case_default(self, stmt):
        if any(not arm.labels for arm in stmt.items):
            return
        subject = self._base_name(stmt.subject)
        if subject is None:
            return
        # FSM heuristic: the case subject is itself reassigned inside the
        # arms — the state-transition pattern every testbed FSM uses.
        assigns_subject = False
        for arm in stmt.items:
            if arm.stmt is None:
                continue
            for node in arm.stmt.walk():
                if isinstance(
                    node, (ast.NonblockingAssign, ast.BlockingAssign)
                ) and subject in ast.lvalue_base_names(node.lhs):
                    assigns_subject = True
                    break
            if assigns_subject:
                break
        if assigns_subject:
            self.sink.warning(
                "L0306",
                "case over FSM state register %r has no default arm"
                % subject,
                _span(self.filename, stmt),
                hint="add 'default:' to recover from unreachable states",
            )

    def _check_instance(self, inst):
        for conn in inst.ports:
            self._read_expr(conn.expr)
            if conn.expr is not None:
                # Output connections also drive their nets; without the
                # child's directions we conservatively count identifier
                # connections as both read and written.
                base = self._base_name(conn.expr)
                if base is not None:
                    self.writes.add(base)
        if self.source is None:
            return
        try:
            child = self.source.find_module(inst.module_name)
        except KeyError:
            return  # blackbox or unknown module: elaboration's problem
        connected = {conn.port for conn in inst.ports if conn.expr is not None}
        missing = sorted(
            port.name for port in child.ports if port.name not in connected
        )
        if missing:
            self.sink.warning(
                "L0308",
                "instance %r of %s leaves port%s %s unconnected"
                % (
                    inst.instance_name,
                    inst.module_name,
                    "" if len(missing) == 1 else "s",
                    ", ".join(missing),
                ),
                _span(self.filename, inst),
                hint="connect or explicitly tie off every port",
            )

    def _check_undeclared_and_unused(self):
        for name in sorted(self.reads | self.writes):
            if name in self.declared or "." in name:
                continue
            self.sink.error(
                "L0301",
                "signal %r is used but never declared" % name,
                _span(self.filename, self.module),
                hint="declare it as reg/wire or fix the typo",
            )
        port_names = {port.name for port in self.module.ports}
        for decl in self.module.declarations():
            if decl.name in port_names or decl.name in self.reads:
                continue
            self.sink.warning(
                "L0302",
                "signal %r is declared but never read" % decl.name,
                _span(self.filename, decl),
                hint="dead logic, or wiring that was dropped",
            )

    def _check_multiple_drivers(self):
        # A "driver site" is one always block, one continuous assign, or
        # one instance connection. Partial-select drives from several
        # sites are legitimate (per-bit assigns), so a signal is flagged
        # only when >1 site drives it and at least one drive covers the
        # whole signal.
        sites = {}       # name -> list of (site descr, whole-signal?)
        spans = {}

        def record(lvalue, site, node):
            for name in ast.lvalue_base_names(lvalue):
                whole = isinstance(lvalue, ast.Identifier)
                sites.setdefault(name, []).append((site, whole))
                spans.setdefault(name, _span(self.filename, node))

        for index, item in enumerate(self.module.items):
            if isinstance(item, ast.ContinuousAssign):
                record(item.lhs, ("assign", index), item)
            elif isinstance(item, ast.Always):
                per_block = {}  # name -> (whole?, first node)
                for node in item.body.walk() if item.body else []:
                    if isinstance(
                        node, (ast.NonblockingAssign, ast.BlockingAssign)
                    ):
                        whole = isinstance(node.lhs, ast.Identifier)
                        for name in ast.lvalue_base_names(node.lhs):
                            prev = per_block.get(name)
                            if prev is None:
                                per_block[name] = (whole, node)
                            elif whole and not prev[0]:
                                per_block[name] = (whole, prev[1])
                for name, (whole, node) in per_block.items():
                    sites.setdefault(name, []).append(
                        (("always", index), whole)
                    )
                    spans.setdefault(name, _span(self.filename, node))

        for name, drivers in sorted(sites.items()):
            distinct = {site for site, _ in drivers}
            if len(distinct) < 2:
                continue
            if not any(whole for _, whole in drivers):
                continue
            if name in self.integers:
                continue
            self.sink.warning(
                "L0303",
                "signal %r is driven from %d places"
                % (name, len(distinct)),
                spans.get(name, SourceSpan(file=self.filename)),
                hint="merge the drivers into one process",
            )


def lint_module(module, source=None, sink=None, filename="<input>"):
    """Lint one parsed module; returns the sink used."""
    if sink is None:
        sink = DiagnosticSink()
    _ModuleLinter(module, source, sink, filename).run()
    return sink


def lint_source(source, sink=None, filename="<input>"):
    """Lint every module in a parsed source; returns the sink used."""
    if sink is None:
        sink = DiagnosticSink()
    for module in source.modules:
        _ModuleLinter(module, source, sink, filename).run()
    return sink
