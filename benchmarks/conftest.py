"""Benchmark harness helpers.

Every benchmark regenerates its table/figure data, writes the rendered
output under ``results/`` (so the artifacts survive pytest's capture),
and times the computation with pytest-benchmark.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")


@pytest.fixture(scope="session")
def results_dir():
    path = os.path.abspath(RESULTS_DIR)
    os.makedirs(path, exist_ok=True)
    return path


@pytest.fixture(scope="session")
def emit(results_dir):
    """Write (and echo) one rendered table/figure."""

    def write(name, text):
        path = os.path.join(results_dir, name)
        with open(path, "w") as handle:
            handle.write(text if text.endswith("\n") else text + "\n")
        print("\n=== %s ===" % name)
        print(text)
        return path

    return write
