"""Benchmark harness helpers.

Every benchmark regenerates its table/figure data, writes the rendered
output under ``results/`` (so the artifacts survive pytest's capture),
and times the computation with pytest-benchmark. Next to each rendered
``.txt`` artifact, :func:`emit` also writes a machine-readable
``.json`` twin in the ``repro.obs`` run-report schema, so downstream
tooling can diff artifacts without re-parsing fixed-width tables.
"""

import json
import os

import pytest

from repro.obs import SCHEMA

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")


@pytest.fixture(scope="session")
def results_dir():
    path = os.path.abspath(RESULTS_DIR)
    os.makedirs(path, exist_ok=True)
    return path


@pytest.fixture(scope="session")
def emit(results_dir):
    """Write (and echo) one rendered table/figure."""

    def write(name, text):
        path = os.path.join(results_dir, name)
        with open(path, "w") as handle:
            handle.write(text if text.endswith("\n") else text + "\n")
        base, _ = os.path.splitext(name)
        with open(os.path.join(results_dir, base + ".json"), "w") as handle:
            json.dump(
                {
                    "schema": SCHEMA,
                    "label": "artifact:%s" % base,
                    "meta": {"source": name},
                    "lines": text.rstrip("\n").split("\n"),
                },
                handle,
                indent=2,
            )
            handle.write("\n")
        print("\n=== %s ===" % name)
        print(text)
        return path

    return write
