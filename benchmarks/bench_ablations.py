"""Ablations for DESIGN.md's called-out design choices.

1. LossCheck's ground-truth false-positive filtering (§4.5.3): raw vs
   filtered report sizes across the loss bugs.
2. SignalCat's bounded on-FPGA buffer (§7's tradeoff vs Cascade/Synergy
   unbounded off-chip logging): log completeness vs buffer size.
3. The expression compiler: interpreted vs compiled simulation
   throughput (bit-identical results, asserted by the test suite).
"""

from repro.core import LossCheck, Mode, SignalCat
from repro.hdl import elaborate, parse
from repro.sim import Simulator
from repro.testbed import GROUND_TRUTH, SPECS, load_design
from repro.testbed.scenarios import SCENARIOS

LOSS_BUGS = ["D1", "D2", "D3", "D11", "C2"]


def _filtering_ablation():
    rows = []
    for bug_id in LOSS_BUGS:
        spec = SPECS[bug_id].losscheck

        def fresh():
            return LossCheck(
                load_design(bug_id),
                source=spec.source,
                sink=spec.sink,
                source_valid=spec.source_valid,
            )

        unfiltered = fresh().analyze(SCENARIOS[bug_id])
        filtered_lc = fresh()
        if bug_id in GROUND_TRUTH:
            filtered_lc.calibrate(GROUND_TRUTH[bug_id])
        filtered = filtered_lc.analyze(SCENARIOS[bug_id])
        rows.append(
            (
                bug_id,
                sorted(set(w.location for w in unfiltered.warnings)),
                sorted(filtered_lc.filtered),
                filtered.localized,
            )
        )
    return rows


def test_ablation_losscheck_filtering(benchmark, emit):
    rows = benchmark.pedantic(_filtering_ablation, rounds=1, iterations=1)
    lines = [
        "LossCheck with vs without ground-truth filtering (§4.5.3)",
        "%-5s %-30s %-22s %-22s"
        % ("bug", "raw warning sites", "filtered out", "final report"),
    ]
    for bug_id, raw, filtered, final in rows:
        lines.append(
            "%-5s %-30s %-22s %-22s"
            % (bug_id, ",".join(raw), ",".join(filtered) or "-",
               ",".join(final) or "-")
        )
    emit("ablation_losscheck_filtering.txt", "\n".join(lines))
    by_bug = {r[0]: r for r in rows}
    # D11: filtering is exactly what hides the real loss (the documented FN).
    assert "word_stage" in by_bug["D11"][1]
    assert by_bug["D11"][3] == []


CHATTY = """
module chatty (input wire clk, output reg [15:0] n);
    always @(posedge clk) begin
        n <= n + 1;
        $display("n=%d", n);
    end
endmodule
"""


def _completeness(buffer_depth, cycles=2000):
    design = elaborate(parse(CHATTY), top="chatty")
    sc = SignalCat(design, mode=Mode.ON_FPGA, buffer_depth=buffer_depth)
    sim = sc.simulator()
    sim.step(cycles)
    return len(sc.reconstruct(sim)) / cycles


def test_ablation_buffer_completeness(benchmark, emit):
    depths = [256, 512, 1024, 2048, 4096]

    def sweep():
        return {depth: _completeness(depth) for depth in depths}

    completeness = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "Log completeness vs recording-buffer depth (2000-event run)",
        "%8s %14s" % ("entries", "log retained"),
    ]
    for depth in depths:
        lines.append("%8d %13.1f%%" % (depth, completeness[depth] * 100))
    emit("ablation_buffer_completeness.txt", "\n".join(lines))
    assert completeness[256] < completeness[2048] <= 1.0
    assert completeness[4096] == 1.0


def test_ablation_compiled_simulation(benchmark):
    design = load_design("D1")
    sim = Simulator(design, compile_expressions=True)
    benchmark(lambda: sim.step(50))


def test_ablation_interpreted_simulation(benchmark):
    design = load_design("D1")
    sim = Simulator(design)
    benchmark(lambda: sim.step(50))
