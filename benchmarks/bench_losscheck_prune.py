"""LossCheck prune=True: instrumentation saved by the payload slice.

``prune=True`` intersects the monitored set with the bit-aware payload
slice from :mod:`repro.flow.defuse`, dropping registers that only steer
control (route selectors, thresholds, comparison operands) from the
shadow-variable instrumentation. Two honest findings:

* On the routed-pipeline fixture — a design with header-programmed
  routing state on the Source->Sink path — pruning halves the
  monitored set and the generated LoC while keeping the genuine loss
  point instrumented.
* On the constant_tap fixture — a payload path carrying a
  provably-constant debug tap — the second prune cut (absint facts from
  :func:`repro.flow.compute_facts`) drops a register the payload slice
  alone keeps: a register that only ever holds one value cannot lose
  data, so its shadow variable is dead weight.
* On the paper's testbed specs the default monitored sets are already
  payload-minimal: the propagation table only relates data sources, so
  control registers never enter the monitored set in the first place
  and pruning (either cut) saves nothing. That zero is itself a
  precision result worth regressing against — a fatter default would
  show up here as a sudden nonzero saving.
"""

import os

from repro.core import LossCheck
from repro.hdl import elaborate, parse
from repro.testbed import SPECS, run_losscheck

_FIXTURE_DIR = os.path.join(
    os.path.dirname(__file__), "..", "tests", "fixtures", "flow"
)


def _fixture_design(name):
    with open(os.path.join(_FIXTURE_DIR, name + ".v")) as handle:
        return elaborate(parse(handle.read()), top=name)


def _fixture_rows(name):
    design = _fixture_design(name)
    rows = {}
    for label, prune in (("default", False), ("prune", True)):
        lc = LossCheck(design, "in_data", "out_q", prune=prune)
        rows[label] = {
            "monitored": len(lc.monitored),
            "pruned_out": len(lc.pruned_out),
            "generated_lines": lc.generated_line_count(),
        }
    return rows


def _testbed_rows():
    rows = {}
    for bug_id in sorted(bug for bug, spec in SPECS.items() if spec.losscheck):
        full = run_losscheck(bug_id)
        pruned = run_losscheck(bug_id, prune=True)
        rows[bug_id] = {
            "monitored": full.monitored_registers,
            "monitored_pruned": pruned.monitored_registers,
            "pruned_out": pruned.pruned_registers,
            "verdict_unchanged": (
                pruned.result.localized == full.result.localized
                and pruned.matches_paper == full.matches_paper
            ),
        }
    return rows


def _render():
    fixtures = {
        name: _fixture_rows(name)
        for name in ("routed_pipeline", "constant_tap")
    }
    testbed = _testbed_rows()
    lines = [
        "LossCheck prune=True vs default (payload slice + absint "
        "constant cut)",
    ]
    for name, fixture in fixtures.items():
        lines += [
            "",
            "%s fixture (in_data -> out_q)" % name,
            "%-8s %10s %11s %8s"
            % ("mode", "monitored", "pruned_out", "gen.LoC"),
        ]
        for label in ("default", "prune"):
            row = fixture[label]
            lines.append(
                "%-8s %10d %11d %8d"
                % (label, row["monitored"], row["pruned_out"],
                   row["generated_lines"])
            )
        saved = (
            fixture["default"]["generated_lines"]
            - fixture["prune"]["generated_lines"]
        )
        lines.append(
            "saved: %d generated lines, %d monitored registers"
            % (saved,
               fixture["default"]["monitored"]
               - fixture["prune"]["monitored"])
        )
    lines += [
        "",
        "testbed loss specs (already payload-minimal: savings are zero",
        "by construction — the propagation table only relates data",
        "sources, so the default monitored sets equal the payload slice)",
        "%-5s %10s %14s %11s %9s"
        % ("bug", "monitored", "with prune", "pruned_out", "verdict"),
    ]
    for bug_id, row in testbed.items():
        lines.append(
            "%-5s %10d %14d %11d %9s"
            % (
                bug_id,
                row["monitored"],
                row["monitored_pruned"],
                row["pruned_out"],
                "same" if row["verdict_unchanged"] else "CHANGED",
            )
        )
    return "\n".join(lines), fixtures, testbed


def test_prune_savings(benchmark, emit):
    text, fixtures, testbed = benchmark.pedantic(
        _render, rounds=1, iterations=1
    )
    emit("losscheck_prune.txt", text)
    # Both fixtures must show a strict, real saving...
    for name, fixture in fixtures.items():
        assert (
            fixture["prune"]["monitored"] < fixture["default"]["monitored"]
        ), name
        assert (
            fixture["prune"]["generated_lines"]
            < fixture["default"]["generated_lines"]
        ), name
    # ...the constant cut specifically drops the dead debug tap...
    assert fixtures["constant_tap"]["prune"]["pruned_out"] == 1
    # ...while every testbed verdict is untouched and never widened
    # (pinned: the testbed loss paths hold no constant registers, so
    # both cuts are exact zeros there).
    for bug_id, row in testbed.items():
        assert row["verdict_unchanged"], bug_id
        assert row["monitored_pruned"] == row["monitored"], bug_id
        assert row["pruned_out"] == 0, bug_id
