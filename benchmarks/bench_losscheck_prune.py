"""LossCheck prune=True: instrumentation saved by the payload slice.

``prune=True`` intersects the monitored set with the bit-aware payload
slice from :mod:`repro.flow.defuse`, dropping registers that only steer
control (route selectors, thresholds, comparison operands) from the
shadow-variable instrumentation. Two honest findings:

* On the routed-pipeline fixture — a design with header-programmed
  routing state on the Source->Sink path — pruning halves the
  monitored set and the generated LoC while keeping the genuine loss
  point instrumented.
* On the paper's testbed specs the default monitored sets are already
  payload-minimal: the propagation table only relates data sources, so
  control registers never enter the monitored set in the first place
  and pruning saves nothing. That zero is itself a precision result
  worth regressing against — a fatter default would show up here as a
  sudden nonzero saving.
"""

import os

from repro.core import LossCheck
from repro.hdl import elaborate, parse
from repro.testbed import SPECS, run_losscheck

FIXTURE = os.path.join(
    os.path.dirname(__file__), "..", "tests", "fixtures", "flow",
    "routed_pipeline.v",
)


def _fixture_design():
    with open(FIXTURE) as handle:
        return elaborate(parse(handle.read()), top="routed_pipeline")


def _fixture_rows():
    design = _fixture_design()
    rows = {}
    for label, prune in (("default", False), ("prune", True)):
        lc = LossCheck(design, "in_data", "out_q", prune=prune)
        rows[label] = {
            "monitored": len(lc.monitored),
            "pruned_out": len(lc.pruned_out),
            "generated_lines": lc.generated_line_count(),
        }
    return rows


def _testbed_rows():
    rows = {}
    for bug_id in sorted(bug for bug, spec in SPECS.items() if spec.losscheck):
        full = run_losscheck(bug_id)
        pruned = run_losscheck(bug_id, prune=True)
        rows[bug_id] = {
            "monitored": full.monitored_registers,
            "monitored_pruned": pruned.monitored_registers,
            "pruned_out": pruned.pruned_registers,
            "verdict_unchanged": (
                pruned.result.localized == full.result.localized
                and pruned.matches_paper == full.matches_paper
            ),
        }
    return rows


def _render():
    fixture = _fixture_rows()
    testbed = _testbed_rows()
    lines = [
        "LossCheck prune=True vs default (payload-slice restriction)",
        "",
        "routed_pipeline fixture (in_data -> out_q)",
        "%-8s %10s %11s %8s"
        % ("mode", "monitored", "pruned_out", "gen.LoC"),
    ]
    for label in ("default", "prune"):
        row = fixture[label]
        lines.append(
            "%-8s %10d %11d %8d"
            % (label, row["monitored"], row["pruned_out"],
               row["generated_lines"])
        )
    saved = (
        fixture["default"]["generated_lines"]
        - fixture["prune"]["generated_lines"]
    )
    lines += [
        "saved: %d generated lines, %d monitored registers"
        % (saved,
           fixture["default"]["monitored"] - fixture["prune"]["monitored"]),
        "",
        "testbed loss specs (already payload-minimal: savings are zero",
        "by construction — the propagation table only relates data",
        "sources, so the default monitored sets equal the payload slice)",
        "%-5s %10s %14s %11s %9s"
        % ("bug", "monitored", "with prune", "pruned_out", "verdict"),
    ]
    for bug_id, row in testbed.items():
        lines.append(
            "%-5s %10d %14d %11d %9s"
            % (
                bug_id,
                row["monitored"],
                row["monitored_pruned"],
                row["pruned_out"],
                "same" if row["verdict_unchanged"] else "CHANGED",
            )
        )
    return "\n".join(lines), fixture, testbed


def test_prune_savings(benchmark, emit):
    text, fixture, testbed = benchmark.pedantic(
        _render, rounds=1, iterations=1
    )
    emit("losscheck_prune.txt", text)
    # The fixture must show a strict, real saving...
    assert fixture["prune"]["monitored"] < fixture["default"]["monitored"]
    assert (
        fixture["prune"]["generated_lines"]
        < fixture["default"]["generated_lines"]
    )
    # ...while every testbed verdict is untouched and never widened.
    for bug_id, row in testbed.items():
        assert row["verdict_unchanged"], bug_id
        assert row["monitored_pruned"] <= row["monitored"], bug_id
