"""Figure 2: resource overhead of SignalCat + the three monitors.

For every testbed bug, instruments the buggy design with the full
toolchain (FSM Monitor, Statistics Monitor, Dependency Monitor,
SignalCat in on-FPGA mode), sweeps the recording-buffer size over
1K/2K/4K/8K entries, and reports the block RAM / register / logic
overheads — grouped like the paper's figure (HARP designs on top,
KC705 designs below). Also reports the §6.4 frequency outcome per bug.
"""

import pytest

from repro.resources import (
    achievable_frequency,
    estimate_resources,
    estimate_timing,
    platform_for,
)
from repro.testbed import HARP_BUGS, KC705_BUGS, SPECS, load_design
from repro.testbed.debug_configs import instrument_for_debugging

BUFFER_SIZES = [1024, 2048, 4096, 8192]


def _series_for(bug_id):
    spec = SPECS[bug_id]
    platform = platform_for(spec)
    base = estimate_resources(load_design(bug_id))
    rows = []
    for depth in BUFFER_SIZES:
        instr = instrument_for_debugging(bug_id, buffer_depth=depth)
        overhead = estimate_resources(instr.module) - base
        report = estimate_timing(instr.module, platform)
        rows.append(
            {
                "depth": depth,
                "bram_mbits": overhead.bram_bits / 1e6,
                "registers": overhead.registers,
                "logic": overhead.logic_cells,
                "fmax": achievable_frequency(report, spec.target_mhz),
            }
        )
    return rows


def _render(group_name, bug_ids):
    lines = [
        "%s platform" % group_name,
        "%-5s %7s | %12s %10s %8s | %s"
        % ("bug", "buffer", "BRAM(Mbit)", "registers", "logic", "freq(MHz)"),
    ]
    for bug_id in bug_ids:
        for row in _series_for(bug_id):
            lines.append(
                "%-5s %7d | %12.3f %10d %8d | %d"
                % (
                    bug_id,
                    row["depth"],
                    row["bram_mbits"],
                    row["registers"],
                    row["logic"],
                    row["fmax"],
                )
            )
        lines.append("")
    return "\n".join(lines)


def test_figure2_harp_group(benchmark, emit):
    text = benchmark.pedantic(
        lambda: _render("Intel HARP", HARP_BUGS), rounds=1, iterations=1
    )
    emit("figure2_overhead_harp.txt", text)
    assert "D3" in text and "C2" in text


def test_figure2_kc705_group(benchmark, emit):
    text = benchmark.pedantic(
        lambda: _render("Xilinx KC705", KC705_BUGS), rounds=1, iterations=1
    )
    emit("figure2_overhead_kc705.txt", text)
    assert "D4" in text and "S3" in text


def test_figure2_bram_linearity(benchmark):
    """The headline property: BRAM overhead is linear in buffer size."""

    def check(bug_id="D1"):
        rows = _series_for(bug_id)
        ratios = [
            rows[i + 1]["bram_mbits"] / rows[i]["bram_mbits"]
            for i in range(len(rows) - 1)
        ]
        return ratios

    ratios = benchmark(check)
    for ratio in ratios:
        assert ratio == pytest.approx(2.0, rel=0.05)


def test_figure2_instrumentation_speed(benchmark):
    """Time to instrument one design with the full toolchain."""
    instr = benchmark(instrument_for_debugging, "C2", 8192)
    assert instr.recorder_width > 0
