"""Figure 1 / Listing 1: the example FSM and its recovered structure.

Runs FSM detection on the paper's Listing 1 code and regenerates the
Figure 1 state diagram (states + labeled transition arcs).
"""

from repro.analysis import detect_fsms
from repro.hdl import elaborate, parse
from repro.hdl.codegen import generate_expression

LISTING1 = """
module listing1 (
    input wire clk,
    input wire request_valid,
    input wire work_done,
    output reg [1:0] state
);
    localparam IDLE = 0;
    localparam WORK = 1;
    localparam FINISH = 2;
    always @(posedge clk) begin
        case (state)
            IDLE: if (request_valid) state <= WORK;
            WORK: if (work_done) state <= FINISH;
            FINISH: state <= IDLE;
        endcase
    end
endmodule
"""

NAMES = {0: "IDLE", 1: "WORK", 2: "FINISH"}


def _detect():
    design = elaborate(parse(LISTING1), top="listing1")
    return detect_fsms(design.top)


def test_figure1_fsm_recovered(benchmark, emit):
    fsms = benchmark(_detect)
    (fsm,) = fsms
    lines = ["FSM register: %s (%d-bit)" % (fsm.name, fsm.width)]
    lines.append("States: %s" % ", ".join(NAMES[s] for s in sorted(fsm.states)))
    lines.append("Transitions:")
    for arc in sorted(fsm.transitions, key=lambda t: (t.from_state, t.to_state)):
        lines.append(
            "  %s -> %s   when %s"
            % (
                NAMES.get(arc.from_state, arc.from_state),
                NAMES.get(arc.to_state, arc.to_state),
                generate_expression(arc.condition),
            )
        )
    emit("figure1_fsm_example.txt", "\n".join(lines))
    arcs = {(t.from_state, t.to_state) for t in fsm.transitions}
    assert arcs == {(0, 1), (1, 2), (2, 0)}
