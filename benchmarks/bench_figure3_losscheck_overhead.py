"""Figure 3: LossCheck's register/logic overhead, normalized to the
platform's total resources (HARP: D1, D2, D3, C2; KC705: D4, C4).

Matches the paper's claims: below 1.7% of the Intel platform and below
0.7% of the Xilinx platform, with no BRAM cost (LossCheck's shadow
state is bounded, §4.5.2). Also reports the §6.4 frequency outcome.
"""

from repro.core import LossCheck
from repro.resources import (
    achievable_frequency,
    estimate_resources,
    estimate_timing,
    platform_for,
)
from repro.testbed import FIGURE3_HARP, FIGURE3_KC705, SPECS, load_design


def _losscheck_overhead(bug_id):
    spec = SPECS[bug_id]
    platform = platform_for(spec)
    design = load_design(bug_id)
    base = estimate_resources(design)
    lc = LossCheck(
        design,
        source=spec.losscheck.source,
        sink=spec.losscheck.sink,
        source_valid=spec.losscheck.source_valid,
    )
    instrumented = estimate_resources(lc.module)
    overhead = instrumented - base
    norm = overhead.normalized(platform)
    report = estimate_timing(lc.module, platform)
    return {
        "registers_pct": norm["registers"] * 100,
        "logic_pct": norm["logic"] * 100,
        "bram_bits": overhead.bram_bits,
        "fmax": achievable_frequency(report, spec.target_mhz),
        "generated_lines": lc.generated_line_count(),
    }


def _render(group_name, bug_ids, limit_pct):
    lines = [
        "%s (normalized to platform totals; paper bound < %.1f%%)"
        % (group_name, limit_pct),
        "%-5s %14s %10s %10s %10s"
        % ("bug", "registers(%)", "logic(%)", "gen.LoC", "freq(MHz)"),
    ]
    rows = {}
    for bug_id in bug_ids:
        row = _losscheck_overhead(bug_id)
        rows[bug_id] = row
        lines.append(
            "%-5s %14.4f %10.4f %10d %10d"
            % (
                bug_id,
                row["registers_pct"],
                row["logic_pct"],
                row["generated_lines"],
                row["fmax"],
            )
        )
    return "\n".join(lines), rows


def test_figure3_harp(benchmark, emit):
    text, rows = benchmark.pedantic(
        lambda: _render("Intel HARP", FIGURE3_HARP, 1.7), rounds=1, iterations=1
    )
    emit("figure3_losscheck_harp.txt", text)
    for bug_id, row in rows.items():
        assert row["registers_pct"] < 1.7, bug_id
        assert row["logic_pct"] < 1.7, bug_id
        assert row["bram_bits"] == 0, "LossCheck state is bounded (§4.5.2)"


def test_figure3_kc705(benchmark, emit):
    text, rows = benchmark.pedantic(
        lambda: _render("Xilinx KC705", FIGURE3_KC705, 0.7), rounds=1, iterations=1
    )
    emit("figure3_losscheck_kc705.txt", text)
    for bug_id, row in rows.items():
        assert row["registers_pct"] < 0.7, bug_id
        assert row["logic_pct"] < 0.7, bug_id


def test_figure3_optimus_frequency_fallback(benchmark):
    """LossCheck, like the monitors, costs Optimus its 400 MHz (§6.4)."""
    row = benchmark(_losscheck_overhead, "D1")
    assert row["fmax"] == SPECS["D1"].target_mhz


def test_figure3_instrumentation_speed(benchmark):
    spec = SPECS["C2"].losscheck
    design = load_design("C2")

    def build():
        return LossCheck(
            design,
            source=spec.source,
            sink=spec.sink,
            source_valid=spec.source_valid,
        )

    lc = benchmark(build)
    assert lc.monitored
