"""repro.serve under concurrent clients: throughput and degradation.

Boots an in-process server (real subprocess workers, real HTTP) and
drives it from several client threads with the mixed workload the
server is built for — mostly near-duplicate checks, a few fuzz
campaigns. Headline numbers:

* **jobs per second** — end-to-end completion rate, HTTP round trips
  and worker dispatch included;
* **cache hit rate** — the content-addressed cache's contribution on a
  workload where most submissions repeat recent work (the CI /
  interactive-debugging pattern);
* **p50/p99 job latency** — from submission to terminal status, the
  number a client actually experiences.

Chaos stays off here: this benchmark measures the happy-path cost of
the robustness machinery (journaling, watchdog arming, cache
verification), not its behaviour under injected faults — the chaos
acceptance test in ``tests/test_serve.py`` covers that.
"""

import os
import subprocess
import sys
import tempfile
import threading
import time

from repro.serve import ReproServer, ServeClient, ServeConfig
from repro.serve.jobs import canonical_json

TINY = """
module tiny(input wire clk, input wire rst, output reg [%d:0] q);
    always @(posedge clk) begin
        if (rst) q <= 0;
        else q <= q + 1;
    end
endmodule
"""

CLIENTS = 4
JOBS_PER_CLIENT = 25
DISTINCT_SOURCES = 8


def _workload(client_index):
    """One client's submission list: checks over a few designs + fuzz."""
    jobs = []
    for index in range(JOBS_PER_CLIENT):
        if index % 10 == 9:
            jobs.append(("fuzz", {"cases": 2, "seed": index % 3,
                                  "cycles": 16}))
        else:
            width = (client_index + index) % DISTINCT_SOURCES
            jobs.append(("check", {"source": TINY % (2 + width),
                                   "filename": "tiny.v"}))
    return jobs


def _drive(tmp):
    config = ServeConfig(
        port=0,
        workers=3,
        watchdog=30.0,
        retries=1,
        backoff=0.05,
        cache_dir=os.path.join(tmp, "cache"),
        journal_path=os.path.join(tmp, "journal.jsonl"),
        quota_rate=0.0,  # measuring throughput, not admission control
    )
    server = ReproServer(config).start_background()
    results = [None] * CLIENTS
    try:
        def run_client(index):
            client = ServeClient("http://127.0.0.1:%d" % server.port,
                                 client_id="bench-%d" % index)
            statuses = []
            for kind, params in _workload(index):
                detail = client.run(kind, params, timeout=120.0, poll=0.02)
                statuses.append(detail["status"])
            results[index] = statuses

        started = time.monotonic()
        threads = [
            threading.Thread(target=run_client, args=(index,))
            for index in range(CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.monotonic() - started
        metrics = ServeClient(
            "http://127.0.0.1:%d" % server.port
        ).metrics()
    finally:
        server.shutdown()
    return {
        "elapsed": elapsed,
        "statuses": [status for batch in results for status in batch],
        "cache": metrics["cache"],
        "latency_ms": metrics["latency_ms"],
        "pool": metrics["pool"],
    }


def _render(outcome):
    total = len(outcome["statuses"])
    done = outcome["statuses"].count("done")
    cache = outcome["cache"]
    latency = outcome["latency_ms"]
    lines = [
        "repro.serve throughput (%d clients x %d jobs, %d workers, "
        "chaos off)" % (CLIENTS, JOBS_PER_CLIENT, 3),
        "",
        "jobs completed:    %d/%d" % (done, total),
        "wall clock:        %.2fs" % outcome["elapsed"],
        "throughput:        %.1f jobs/sec"
        % (total / outcome["elapsed"] if outcome["elapsed"] else 0.0),
        "cache hit rate:    %s (%d hits, %d misses)"
        % (
            "%.0f%%" % (100.0 * cache["hit_rate"])
            if cache["hit_rate"] is not None else "n/a",
            cache["hits"], cache["misses"],
        ),
        "job latency:       p50 %.1fms, p99 %.1fms (%d measured)"
        % (latency["p50"] or 0.0, latency["p99"] or 0.0, latency["count"]),
        "worker executions: %d (%d retries, %d watchdog kills)"
        % (outcome["pool"]["executions"], outcome["pool"]["retries"],
           outcome["pool"]["watchdog_kills"]),
    ]
    return "\n".join(lines)


# -- sharded campaign over TCP workers ----------------------------------
#
# One fuzz campaign split into SHARDS sub-ranges, fanned over N
# `python -m repro worker --connect` processes. Each shard's cost is
# dominated by a fixed worker-side latency (an injected `_chaos_hang`
# sleep standing in for board access / tool licensing — the part of an
# FPGA debugging campaign that parallelises), so the measured speedup
# is the fabric's shard overlap, not the host's core count: the numbers
# hold on a single-core CI runner.

SHARDS = 4
SHARD_HANG_SECONDS = 2.0
SHARD_CAMPAIGN = {
    "seed": 7,
    "cases": SHARDS,  # one case per shard: minimal CPU, fixed latency
    "cycles": 8,
    "_shards": SHARDS,
    "_chaos_hang": {"seconds": SHARD_HANG_SECONDS, "attempts": 99},
}


def _spawn_tcp_worker(port, token, name):
    env = dict(os.environ)
    env.setdefault("PYTHONPATH", os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    ))
    return subprocess.Popen(
        [
            sys.executable, "-u", "-m", "repro", "worker",
            "--connect", "127.0.0.1:%d" % port,
            "--token", token,
            "--name", name,
        ],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL, env=env,
    )


def _drive_sharded(tmp, worker_count):
    """Run the sharded campaign on *worker_count* TCP workers."""
    config = ServeConfig(
        port=0,
        workers=0,  # no subprocess pool: TCP fabric only
        watchdog=60.0,
        retries=2,
        backoff=0.05,
        cache_dir=os.path.join(tmp, "cache"),
        journal_path=os.path.join(tmp, "journal.jsonl"),
        quota_rate=0.0,
        fabric_port=0,
        fabric_token="bench",
        heartbeat_interval=1.0,
    )
    server = ReproServer(config).start_background()
    workers = []
    try:
        workers = [
            _spawn_tcp_worker(server.pool.port, "bench", "bench-w%d" % n)
            for n in range(worker_count)
        ]
        deadline = time.monotonic() + 30.0
        while server.pool.workers() < worker_count:
            if time.monotonic() > deadline:
                raise AssertionError(
                    "only %d/%d workers joined"
                    % (server.pool.workers(), worker_count))
            time.sleep(0.05)
        client = ServeClient("http://127.0.0.1:%d" % server.port,
                             client_id="bench-shard")
        started = time.monotonic()
        detail = client.run("fuzz", SHARD_CAMPAIGN, timeout=300.0,
                            poll=0.05)
        elapsed = time.monotonic() - started
    finally:
        for proc in workers:
            proc.kill()
        for proc in workers:
            proc.wait(timeout=10.0)
        server.shutdown()
    return {
        "status": detail["status"],
        "payload": detail.get("result"),
        "elapsed": elapsed,
        "workers": worker_count,
    }


def _render_sharded(wide, narrow, speedup):
    return "\n".join([
        "repro.serve sharded campaign (%d shards, %.1fs simulated "
        "device latency per shard)" % (SHARDS, SHARD_HANG_SECONDS),
        "",
        "1 TCP worker:      %.2fs" % narrow["elapsed"],
        "%d TCP workers:     %.2fs" % (wide["workers"], wide["elapsed"]),
        "speedup:           %.2fx" % speedup,
        "determinism:       merged payloads byte-identical",
    ])


def test_serve_sharded_speedup(benchmark, emit):
    def run_pair():
        with tempfile.TemporaryDirectory(
            prefix="repro-bench-shard-"
        ) as tmp_wide:
            wide = _drive_sharded(tmp_wide, SHARDS)
        with tempfile.TemporaryDirectory(
            prefix="repro-bench-shard-"
        ) as tmp_narrow:
            narrow = _drive_sharded(tmp_narrow, 1)
        return wide, narrow

    wide, narrow = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    assert wide["status"] == "done"
    assert narrow["status"] == "done"
    # Determinism: the merged report must not depend on fan-out.
    assert canonical_json(wide["payload"]) == canonical_json(
        narrow["payload"])
    speedup = narrow["elapsed"] / wide["elapsed"]
    emit("serve_sharded_speedup.txt", _render_sharded(
        wide, narrow, speedup))
    assert speedup >= 2.0, (
        "sharding over %d workers gained only %.2fx"
        % (SHARDS, speedup))


def test_serve_throughput(benchmark, emit):
    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as tmp:
        outcome = benchmark.pedantic(
            _drive, args=(tmp,), rounds=1, iterations=1
        )
    emit("serve_throughput.txt", _render(outcome))
    total = CLIENTS * JOBS_PER_CLIENT
    assert len(outcome["statuses"]) == total
    # Happy path: everything lands, and the cache carries the repeats.
    assert outcome["statuses"].count("done") == total
    assert outcome["cache"]["hits"] > 0
    assert outcome["cache"]["hit_rate"] > 0.3
    # Latency is measured on executed jobs; cache hits finish at submit.
    assert outcome["latency_ms"]["count"] >= outcome["cache"]["misses"]
