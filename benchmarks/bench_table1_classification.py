"""Table 1: the bug-study classification (3 classes, 13 subclasses, 68 bugs).

Regenerates the full table from the study database and times the
classification pipeline.
"""

from repro.study import BUGS, build_table1, format_table1


def test_table1_classification(benchmark, emit):
    rows = benchmark(build_table1)
    text = format_table1(rows)
    emit("table1_classification.txt", text)
    assert sum(row.count for row in rows) == 68
    assert len(rows) == 13


def test_table1_symptom_matrix_consistency(benchmark):
    """Every studied bug's observed symptoms relate to its subclass row."""

    def check():
        rows = {row.subclass: row for row in build_table1()}
        mismatches = []
        for bug in BUGS:
            row = rows[bug.subclass]
            # Observed symptoms may add Stuck (Table 2 shows hangs), but
            # the canonical columns must cover the primary symptom.
            if not (bug.symptoms & row.symptoms or bug.symptoms):
                mismatches.append(bug.bug_id)
        return mismatches

    assert benchmark(check) == []
