"""§6.3 effectiveness results: FSM-detection accuracy, LossCheck
localization scoreboard, and generated-code volume.
"""

from repro.analysis import detect_fsms
from repro.testbed import BUG_IDS, SPECS, load_design, run_losscheck
from repro.testbed.debug_configs import instrument_for_debugging

LOSS_BUGS = ["D1", "D2", "D3", "D4", "D11", "C2", "C4"]


def _fsm_accuracy():
    manual = detected = false_pos = false_neg = 0
    for bug_id in BUG_IDS:
        spec = SPECS[bug_id]
        found = {f.name for f in detect_fsms(load_design(bug_id).top)}
        manual += len(spec.manual_fsms)
        detected += len(found)
        false_pos += len(found - set(spec.manual_fsms))
        false_neg += len(set(spec.manual_fsms) - found)
    return manual, detected, false_pos, false_neg


def test_fsm_detection_accuracy(benchmark, emit):
    manual, detected, false_pos, false_neg = benchmark.pedantic(
        _fsm_accuracy, rounds=1, iterations=1
    )
    text = (
        "FSM Monitor detection accuracy (paper: 0 FP, 5 FN of 32)\n"
        "manually identified FSMs: %d\n"
        "detected: %d\nfalse positives: %d\nfalse negatives: %d"
        % (manual, detected, false_pos, false_neg)
    )
    emit("effectiveness_fsm_accuracy.txt", text)
    assert (manual, false_pos, false_neg) == (32, 0, 5)


def _losscheck_scoreboard():
    rows = []
    for bug_id in LOSS_BUGS:
        outcome = run_losscheck(bug_id)
        rows.append(
            (
                bug_id,
                outcome.localized,
                list(outcome.result.localized),
                outcome.false_positives,
                sorted(outcome.result.filtered),
                outcome.generated_lines,
            )
        )
    return rows


def test_losscheck_scoreboard(benchmark, emit):
    rows = benchmark.pedantic(_losscheck_scoreboard, rounds=1, iterations=1)
    lines = [
        "LossCheck localization (paper: 6/7 localized; D1 has 1 FP; D11 "
        "is the mis-filtered FN)",
        "%-5s %-10s %-28s %-14s %-20s %8s"
        % ("bug", "localized", "reported", "false pos.", "filtered", "gen.LoC"),
    ]
    for bug_id, localized, reported, fps, filtered, loc in rows:
        lines.append(
            "%-5s %-10s %-28s %-14s %-20s %8d"
            % (bug_id, "yes" if localized else "NO",
               ",".join(reported) or "-", ",".join(fps) or "-",
               ",".join(filtered) or "-", loc)
        )
    emit("effectiveness_losscheck.txt", "\n".join(lines))
    localized_count = sum(1 for _, loc, *_ in rows if loc)
    assert localized_count == 6


def test_generated_code_volume(benchmark, emit):
    def volumes():
        return {
            bug_id: instrument_for_debugging(bug_id, 8192).generated_lines
            for bug_id in BUG_IDS
        }

    lines_per_bug = benchmark.pedantic(volumes, rounds=1, iterations=1)
    average = sum(lines_per_bug.values()) / len(lines_per_bug)
    text = "\n".join(
        ["Generated Verilog per bug (SignalCat + monitors)"]
        + ["%-5s %5d" % (b, lines_per_bug[b]) for b in BUG_IDS]
        + ["average: %.1f lines" % average]
    )
    emit("effectiveness_generated_loc.txt", text)
    assert average > 20
