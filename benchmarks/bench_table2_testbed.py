"""Table 2: the testbed of 20 reproducible bugs.

Reproduces every bug push-button, checks the observed symptoms against
the documented ones, and regenerates the Table 2 matrix (subclass,
application, platform, symptoms, helpful tools).
"""

from repro.testbed import BUG_IDS, SPECS, Symptom, Tool, reproduce, run_scenario

_SYMPTOM_ORDER = [Symptom.STUCK, Symptom.LOSS, Symptom.INCORRECT, Symptom.EXTERNAL]
_TOOL_ORDER = [
    Tool.SIGNALCAT,
    Tool.FSM_MONITOR,
    Tool.STATISTICS_MONITOR,
    Tool.DEPENDENCY_MONITOR,
    Tool.LOSSCHECK,
]


def _render_table2(observations):
    header = "%-4s %-28s %-22s %-8s | %-5s %-4s %-6s %-4s | %-3s %-4s %-5s %-4s %-3s" % (
        "ID", "Subclass", "Application", "Platform",
        "Stuck", "Loss", "Incor.", "Ext.",
        "SC", "FSM", "Stat.", "Dep.", "LC",
    )
    lines = [header, "-" * len(header)]
    for bug_id in BUG_IDS:
        spec = SPECS[bug_id]
        observed = observations[bug_id]
        symptom_marks = [
            "x" if s in observed else "" for s in _SYMPTOM_ORDER
        ]
        tool_marks = [
            "x" if t in spec.helpful_tools else "" for t in _TOOL_ORDER
        ]
        lines.append(
            "%-4s %-28s %-22s %-8s | %-5s %-4s %-6s %-4s | %-3s %-4s %-5s %-4s %-3s"
            % tuple(
                [bug_id, spec.subclass.value, spec.application,
                 spec.platform.value]
                + symptom_marks
                + tool_marks
            )
        )
    return "\n".join(lines)


def test_table2_full_testbed(benchmark, emit):
    def reproduce_everything():
        observations = {}
        for bug_id in BUG_IDS:
            result = reproduce(bug_id)
            observations[bug_id] = result.observation.symptoms
        return observations

    observations = benchmark.pedantic(reproduce_everything, rounds=1, iterations=1)
    emit("table2_testbed.txt", _render_table2(observations))
    for bug_id in BUG_IDS:
        assert SPECS[bug_id].symptoms <= observations[bug_id], bug_id


def test_table2_single_reproduction_speed(benchmark):
    """Push-button latency of one representative reproduction (D1)."""
    observation = benchmark(run_scenario, "D1")
    assert observation.stuck and observation.loss
