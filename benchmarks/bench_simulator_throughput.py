"""Ablation: simulation throughput with and without instrumentation.

Not a paper figure — supporting data for DESIGN.md's claim that the
recording-IP path (on-FPGA mode) adds only modest simulation cost, and
a stable baseline for the simulator itself.
"""

from repro.core import Mode, SignalCat
from repro.hdl import elaborate, parse
from repro.sim import Simulator
from repro.testbed import load_design
from repro.testbed.debug_configs import instrument_for_debugging

COUNTER = """
module counter (input wire clk, input wire rst, output reg [31:0] count);
    always @(posedge clk) begin
        if (rst) count <= 0;
        else count <= count + 1;
    end
endmodule
"""


def test_simulator_cycles_per_second(benchmark):
    design = elaborate(parse(COUNTER), top="counter")
    sim = Simulator(design)

    def run_block():
        sim.step(100)

    benchmark(run_block)
    assert sim["count"] > 0


def test_uninstrumented_design_simulation(benchmark):
    design = load_design("D1")
    sim = Simulator(design)
    benchmark(lambda: sim.step(50))


def test_instrumented_design_simulation(benchmark):
    instr = instrument_for_debugging("D1", buffer_depth=1024)
    sim = Simulator(instr.module)
    benchmark(lambda: sim.step(50))


def test_signalcat_reconstruction_speed(benchmark):
    design = elaborate(
        parse(
            """
            module chatty (input wire clk, output reg [15:0] n);
                always @(posedge clk) begin
                    n <= n + 1;
                    $display("n=%d", n);
                end
            endmodule
            """
        ),
        top="chatty",
    )
    sc = SignalCat(design, mode=Mode.ON_FPGA, buffer_depth=4096)
    sim = sc.simulator()
    sim.step(1000)
    log = benchmark(sc.reconstruct, sim)
    assert len(log) == 1000
