"""repro.repair across the whole testbed: how much does it fix, how fast?

Three headline numbers:

* **bugs repaired / 20** — testbed bugs where the diagnostic-bounded
  template search finds a scenario-passing patch within the default
  budget;
* **candidates validated per second** — throughput of the
  parse-elaborate-simulate validation loop (the campaign's hot path);
* **median rank of the reference-equivalent patch** — among repaired
  bugs, the rank position of the first candidate whose outputs match
  the fixed design on every traced cycle (``output_divergence_cycle is
  None``). A median of 1 means waveform ranking puts the
  right-for-the-right-reason patch on top, not merely somewhere in the
  passing set.

The fault-sensitivity localization pass is skipped here (``use_faults=
False``) to keep the benchmark wall-clock dominated by the search
itself rather than by site probing; the CI smoke job exercises the
fault-localized path. The skip costs exactly one repair — D12's
overwrite site is only surfaced by fault probing — so the default CLI
configuration repairs 18/20 where this benchmark reports 17/20.
"""

import time

from repro.repair import RepairConfig, run_repair
from repro.testbed import BUG_IDS


def _campaigns():
    rows = {}
    for bug_id in BUG_IDS:
        start = time.time()
        outcome = run_repair(RepairConfig(
            bug_id=bug_id, use_faults=False,
        ))
        elapsed = time.time() - start
        report = outcome.report
        ref_rank = None
        for entry in report["ranking"]:
            metrics = entry["metrics"]
            if metrics["equivalent"] or \
                    metrics["output_divergence_cycle"] is None:
                ref_rank = entry["rank"]
                break
        rows[bug_id] = {
            "repaired": report["repaired"],
            "tried": report["candidates"]["tried"],
            "planned": report["candidates"]["planned"],
            "plausible": len(report["ranking"]),
            "reference_rank": ref_rank,
            "seconds": elapsed,
            "best": (report["best"]["description"]
                     if report["best"] else ""),
        }
    return rows


def _median(values):
    ordered = sorted(values)
    if not ordered:
        return None
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _render(rows):
    lines = [
        "repro.repair across the 20-bug testbed (default budget, "
        "no fault probing)",
        "",
        "%-5s %-9s %6s %8s %6s %9s %7s  %s"
        % ("bug", "result", "tried", "planned", "plaus",
           "ref.rank", "sec", "best candidate"),
    ]
    for bug_id, row in rows.items():
        lines.append(
            "%-5s %-9s %6d %8d %6d %9s %7.1f  %s"
            % (
                bug_id,
                "repaired" if row["repaired"] else "no",
                row["tried"],
                row["planned"],
                row["plausible"],
                "-" if row["reference_rank"] is None
                else row["reference_rank"],
                row["seconds"],
                row["best"][:44],
            )
        )
    repaired = sum(1 for row in rows.values() if row["repaired"])
    validated = sum(row["tried"] for row in rows.values())
    seconds = sum(row["seconds"] for row in rows.values())
    ranks = [
        row["reference_rank"] for row in rows.values()
        if row["reference_rank"] is not None
    ]
    lines += [
        "",
        "bugs repaired: %d/20" % repaired,
        "candidates validated: %d in %.1fs (%.1f/sec)"
        % (validated, seconds, validated / seconds if seconds else 0.0),
        "median rank of the reference-equivalent patch: %s"
        % (_median(ranks) if ranks else "n/a"),
    ]
    return "\n".join(lines), repaired, validated, seconds, ranks


def test_repair_testbed(benchmark, emit):
    rows = benchmark.pedantic(_campaigns, rounds=1, iterations=1)
    text, repaired, validated, seconds, ranks = _render(rows)
    emit("repair_testbed.txt", text)
    # The acceptance bar: a majority of the testbed repairs.
    assert repaired >= 11
    assert validated > 0 and seconds > 0
    # Waveform ranking puts a reference-equivalent patch at or near the
    # top wherever one exists.
    assert ranks and _median(ranks) <= 2
