"""Tests for FSM Monitor (§4.2), Statistics Monitor (§4.4) and
Dependency Monitor (§4.3)."""

import pytest

from repro.core import (
    DependencyMonitor,
    FSMMonitor,
    Mode,
    StatisticsMonitor,
)
from repro.hdl import elaborate, parse

WORKER = """
module worker (
    input wire clk,
    input wire rst,
    input wire request_valid,
    input wire [7:0] req,
    output reg done,
    output reg [7:0] result
);
    localparam IDLE = 0;
    localparam WORK = 1;
    localparam FINISH = 2;
    reg [1:0] state;
    reg [3:0] ticks;
    reg [7:0] acc;
    always @(posedge clk) begin
        done <= 0;
        if (rst) begin
            state <= IDLE;
            ticks <= 0;
        end else begin
            case (state)
                IDLE: if (request_valid) begin
                    state <= WORK;
                    acc <= req;
                    ticks <= 0;
                end
                WORK: begin
                    acc <= acc + 1;
                    ticks <= ticks + 1;
                    if (ticks == 3) state <= FINISH;
                end
                FINISH: begin
                    result <= acc;
                    done <= 1;
                    state <= IDLE;
                end
            endcase
        end
    end
endmodule
"""


def worker_design():
    return elaborate(parse(WORKER), top="worker")


def run_one_request(sim, req=10):
    sim["rst"] = 1
    sim.step()
    sim["rst"] = 0
    sim["req"] = req
    sim["request_valid"] = 1
    sim.step()
    sim["request_valid"] = 0
    sim.step(8)


class TestFSMMonitor:
    def test_detects_state_register(self):
        monitor = FSMMonitor(worker_design())
        assert [m.info.name for m in monitor.fsms] == ["state"]

    def test_transition_trace(self):
        monitor = FSMMonitor(worker_design())
        sim = monitor.simulator()
        run_one_request(sim)
        arcs = [(t.from_state, t.to_state) for t in monitor.trace(sim)]
        assert arcs == [(0, 1), (1, 2), (2, 0)]

    def test_trace_identical_on_fpga(self):
        sim_monitor = FSMMonitor(worker_design())
        sim = sim_monitor.simulator(mode=Mode.SIMULATION)
        run_one_request(sim)
        fpga_monitor = FSMMonitor(worker_design())
        fpga = fpga_monitor.simulator(mode=Mode.ON_FPGA, buffer_depth=64)
        run_one_request(fpga)
        assert [
            (t.cycle, t.from_state, t.to_state) for t in sim_monitor.trace(sim)
        ] == [
            (t.cycle, t.from_state, t.to_state) for t in fpga_monitor.trace(fpga)
        ]

    def test_state_names_in_description(self):
        monitor = FSMMonitor(
            worker_design(),
            state_names={"state": {0: "IDLE", 1: "WORK", 2: "FINISH"}},
        )
        sim = monitor.simulator()
        run_one_request(sim)
        text = monitor.describe_trace(sim)
        assert "IDLE -> WORK" in text
        assert "FINISH -> IDLE" in text

    def test_exclude_filter(self):
        monitor = FSMMonitor(worker_design(), exclude=("state",))
        assert monitor.fsms == []

    def test_manual_addition(self):
        monitor = FSMMonitor(worker_design(), exclude=("state",))
        monitor.add_register("ticks")
        assert [m.info.name for m in monitor.fsms] == ["ticks"]
        assert monitor.fsms[0].manually_added

    def test_manual_addition_unknown_register(self):
        monitor = FSMMonitor(worker_design())
        with pytest.raises(KeyError):
            monitor.add_register("no_such_reg")

    def test_final_states(self):
        monitor = FSMMonitor(worker_design())
        sim = monitor.simulator()
        run_one_request(sim)
        assert monitor.final_states(sim) == {"state": 0}

    def test_generated_lines(self):
        monitor = FSMMonitor(worker_design())
        assert monitor.generated_line_count() > 0


class TestStatisticsMonitor:
    def test_counts(self):
        monitor = StatisticsMonitor(
            worker_design(), {"requests": "request_valid", "dones": "done"}
        )
        sim = monitor.simulator()
        for _ in range(3):
            run_one_request(sim)
        counts = monitor.counts(sim)
        assert counts == {"requests": 3, "dones": 3}

    def test_expression_condition(self):
        monitor = StatisticsMonitor(
            worker_design(), {"busy": "state == 1"}
        )
        sim = monitor.simulator()
        run_one_request(sim)
        assert monitor.counts(sim)["busy"] == 4  # WORK lasts 4 cycles

    def test_trace_events_increment(self):
        monitor = StatisticsMonitor(worker_design(), {"reqs": "request_valid"})
        sim = monitor.simulator()
        run_one_request(sim)
        run_one_request(sim)
        events = monitor.trace(sim)
        assert [e.count for e in events] == [1, 2]
        assert all(e.event == "reqs" for e in events)

    def test_counts_identical_on_fpga(self):
        monitor = StatisticsMonitor(worker_design(), {"reqs": "request_valid"})
        sim = monitor.simulator(mode=Mode.ON_FPGA, buffer_depth=64)
        run_one_request(sim)
        assert monitor.counts(sim)["reqs"] == 1
        assert [e.count for e in monitor.trace(sim)] == [1]

    def test_no_events(self):
        monitor = StatisticsMonitor(worker_design(), {})
        sim = monitor.simulator()
        run_one_request(sim)
        assert monitor.counts(sim) == {}


class TestDependencyMonitor:
    def test_chain_report(self):
        monitor = DependencyMonitor(worker_design(), "result", depth=3)
        report = monitor.report()
        assert report["result"] == 0
        assert report["acc"] == 1
        assert "req" in report

    def test_update_trace(self):
        monitor = DependencyMonitor(worker_design(), "result", depth=3)
        sim = monitor.simulator()
        run_one_request(sim, req=10)
        updates = monitor.trace(sim, register="acc")
        assert [u.value for u in updates] == [10, 11, 12, 13, 14]

    def test_tracked_excludes_inputs(self):
        monitor = DependencyMonitor(worker_design(), "result", depth=3)
        assert "req" not in monitor.tracked_registers
        assert "acc" in monitor.tracked_registers

    def test_data_only_mode(self):
        monitor = DependencyMonitor(
            worker_design(), "result", depth=3, include_control=False
        )
        assert "request_valid" not in monitor.report()

    def test_trace_identical_on_fpga(self):
        a = DependencyMonitor(worker_design(), "result", depth=2)
        sim = a.simulator(mode=Mode.SIMULATION)
        run_one_request(sim)
        b = DependencyMonitor(worker_design(), "result", depth=2)
        fpga = b.simulator(mode=Mode.ON_FPGA, buffer_depth=128)
        run_one_request(fpga)
        assert [(u.cycle, u.register, u.value) for u in a.trace(sim)] == [
            (u.cycle, u.register, u.value) for u in b.trace(fpga)
        ]

    def test_memories_not_shadow_compared(self):
        design = elaborate(
            parse(
                """
                module m (input wire clk, input wire [2:0] a, input wire [7:0] d,
                          input wire we, output reg [7:0] q);
                    reg [7:0] mem [0:7];
                    always @(posedge clk) begin
                        if (we) mem[a] <= d;
                        q <= mem[a];
                    end
                endmodule
                """
            )
        )
        monitor = DependencyMonitor(design, "q", depth=3)
        assert "mem" not in monitor.tracked_registers
        # And the instrumented design still simulates.
        sim = monitor.simulator()
        sim["a"] = 1
        sim["d"] = 5
        sim["we"] = 1
        sim.step(2)
        assert sim["q"] == 5
