"""Tests reproducing the paper's §6.3 effectiveness results."""

import pytest

from repro.analysis import detect_fsms
from repro.core import FSMMonitor, LossCheck, StatisticsMonitor
from repro.testbed import (
    BUG_IDS,
    SPECS,
    load_design,
    run_losscheck,
)
from repro.testbed.debug_configs import CONFIGS, instrument_for_debugging

LOSS_BUGS = ["D1", "D2", "D3", "D4", "D11", "C2", "C4"]


class TestFSMDetectionAccuracy:
    """§6.3: 'of the 32 manually-identified FSMs in our benchmark suite,
    FSM Monitor has 0 false positives and 5 false negatives'."""

    def test_thirty_two_manual_fsms(self):
        total = sum(len(SPECS[b].manual_fsms) for b in BUG_IDS)
        assert total == 32

    def test_zero_false_positives(self):
        for bug_id in BUG_IDS:
            spec = SPECS[bug_id]
            detected = {f.name for f in detect_fsms(load_design(bug_id).top)}
            assert detected <= set(spec.manual_fsms), (
                bug_id,
                detected - set(spec.manual_fsms),
            )

    def test_five_false_negatives(self):
        false_negatives = 0
        for bug_id in BUG_IDS:
            spec = SPECS[bug_id]
            detected = {f.name for f in detect_fsms(load_design(bug_id).top)}
            false_negatives += len(set(spec.manual_fsms) - detected)
        assert false_negatives == 5

    def test_undetectable_are_exactly_the_two_process_fsms(self):
        for bug_id in BUG_IDS:
            spec = SPECS[bug_id]
            detected = {f.name for f in detect_fsms(load_design(bug_id).top)}
            missed = set(spec.manual_fsms) - detected
            assert missed == set(spec.undetectable_fsms), bug_id


@pytest.mark.parametrize("bug_id", LOSS_BUGS)
class TestLossCheckPerBug:
    def test_outcome_matches_paper(self, bug_id):
        outcome = run_losscheck(bug_id)
        assert outcome.matches_paper, (
            bug_id,
            outcome.result.localized,
            outcome.result.filtered,
        )


class TestLossCheckAggregate:
    """§6.3's LossCheck scoreboard."""

    def test_six_of_seven_localized(self):
        localized = [b for b in LOSS_BUGS if run_losscheck(b).localized]
        assert sorted(localized) == ["C2", "C4", "D1", "D2", "D3", "D4"]

    def test_d1_reports_exactly_one_false_positive(self):
        outcome = run_losscheck("D1")
        assert outcome.false_positives == ["in_reg"]

    def test_d4_and_c4_need_no_filtering(self):
        """§6.3: D4 and C4 are localized without the FP filtering."""
        for bug_id in ("D4", "C4"):
            assert not SPECS[bug_id].losscheck.uses_filtering
            outcome = run_losscheck(bug_id)
            assert outcome.localized and not outcome.false_positives

    def test_d11_false_negative_mechanism(self):
        """§4.5.4: D11's loss site is mis-filtered by the ground truth."""
        outcome = run_losscheck("D11")
        assert not outcome.localized
        # The loss register fired, but was filtered as an intentional drop.
        assert "word_stage" in outcome.result.filtered
        assert any(
            w.location == "word_stage" for w in outcome.result.warnings
        )


class TestGeneratedCodeVolume:
    """§6.3: the tools automate dozens of lines of analysis Verilog per
    bug (the paper reports an average of 72 for the monitors and
    522-19,462 for LossCheck on its full-size applications; our testbed
    designs are miniatures, so the shape is 'tens of lines, more for
    LossCheck-heavy paths')."""

    def test_monitor_instrumentation_generates_code(self):
        lines = [
            instrument_for_debugging(b, buffer_depth=1024).generated_lines
            for b in BUG_IDS
        ]
        assert all(count >= 20 for count in lines)
        assert sum(lines) / len(lines) >= 40

    def test_losscheck_generates_code(self):
        for bug_id in LOSS_BUGS:
            outcome = run_losscheck(bug_id)
            assert outcome.generated_lines > 0

    def test_every_bug_has_a_debug_config(self):
        assert set(CONFIGS) == set(BUG_IDS)


class TestInstrumentedDesignsStillWork:
    """Instrumentation must not change design behavior."""

    @pytest.mark.parametrize("bug_id", ["D1", "D8", "C1", "S3"])
    def test_fixed_design_still_passes_with_full_instrumentation(self, bug_id):
        from repro.sim import Simulator
        from repro.testbed.scenarios import SCENARIOS

        instr = instrument_for_debugging(bug_id, buffer_depth=256, fixed=True)
        sim = Simulator(instr.module)
        observation = SCENARIOS[bug_id](sim)
        assert not observation.failed, observation.details

    @pytest.mark.parametrize("bug_id", ["D2", "C2"])
    def test_buggy_design_still_fails_with_full_instrumentation(self, bug_id):
        from repro.sim import Simulator
        from repro.testbed.scenarios import SCENARIOS

        instr = instrument_for_debugging(bug_id, buffer_depth=256, fixed=False)
        sim = Simulator(instr.module)
        observation = SCENARIOS[bug_id](sim)
        assert observation.failed
