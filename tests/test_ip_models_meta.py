"""Tests for the declarative IP analysis models and the IP base class."""

import pytest

from repro.analysis.ip_models import (
    DEFAULT_IP_MODELS,
    IPAnalysisModel,
    IPFlow,
    IPLossRule,
)
from repro.sim.ip import IPModel, REGISTRY


class TestDefaultModels:
    def test_all_default_blackboxes_modeled(self):
        """Every runtime IP model has a matching analysis model (§5)."""
        assert set(DEFAULT_IP_MODELS) == set(REGISTRY)

    def test_fifo_models_declare_loss_rules(self):
        for name in ("scfifo", "dcfifo"):
            model = DEFAULT_IP_MODELS[name]
            assert model.loss_rules, name
            rule = model.loss_rules[0]
            assert rule.port == "data"
            assert "full" in rule.condition.lower()

    def test_data_flows_are_gated_by_write_conditions(self):
        flow = [
            f for f in DEFAULT_IP_MODELS["scfifo"].flows
            if f.src_port == "data" and f.dst_port == "q"
        ][0]
        assert "{wrreq}" in flow.condition
        assert flow.latency >= 1

    def test_ram_model_covers_both_ports(self):
        model = DEFAULT_IP_MODELS["altsyncram"]
        pairs = {(f.src_port, f.dst_port) for f in model.flows}
        assert ("data_a", "q_a") in pairs
        assert ("data_b", "q_b") in pairs

    def test_recorder_is_a_sink(self):
        assert DEFAULT_IP_MODELS["signal_recorder"].flows == []


class TestModelDataclasses:
    def test_custom_model_construction(self):
        model = IPAnalysisModel(
            name="my_ip",
            flows=[IPFlow("din", "dout", latency=2, condition="{en}")],
            loss_rules=[IPLossRule("din", "{drop}", "dropped on purpose")],
        )
        assert model.flows[0].latency == 2
        assert model.loss_rules[0].description


class TestIPModelBase:
    def test_abstract_methods(self):
        model = IPModel({"X": 1})
        assert model.param("X") == 1
        assert model.param("Y", 7) == 7
        with pytest.raises(NotImplementedError):
            model.outputs({})
        with pytest.raises(NotImplementedError):
            model.clock_edge({}, set())

    def test_registry_factories_accept_params(self):
        for name, factory in REGISTRY.items():
            instance = factory({})
            assert isinstance(instance, IPModel), name
            assert set(instance.OUTPUT_PORTS), name
