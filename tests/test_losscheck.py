"""Tests for LossCheck (§4.5): shadow algebra, filtering, localization."""

import pytest

from repro.core import LossCheck, Mode
from repro.hdl import ast, elaborate, parse
from repro.hdl.codegen import generate_expression
from repro.sim import Simulator


def lossy():
    return elaborate(
        parse(
            """
            module lossy (
                input wire clk,
                input wire in_valid,
                input wire [7:0] in,
                input wire cond_a,
                input wire cond_b,
                input wire [7:0] a,
                output reg [7:0] out
            );
                reg [7:0] b;
                always @(posedge clk) begin
                    if (cond_a) out <= a;
                    else if (cond_b) out <= b;
                    if (in_valid) b <= in;
                end
            endmodule
            """
        ),
        top="lossy",
    )


def overwrite_b(sim):
    """Two valid inputs back-to-back with cond_b never raised."""
    sim["in_valid"] = 1
    sim["in"] = 1
    sim.step()
    sim["in"] = 2
    sim.step()
    sim["in_valid"] = 0
    sim.step(3)


def propagate_b(sim):
    """Each input drains through out before the next arrives."""
    sim["cond_b"] = 1
    for value in (1, 2):
        sim["in_valid"] = 1
        sim["in"] = value
        sim.step()
        sim["in_valid"] = 0
        sim.step(2)


class TestStaticSetup:
    def test_monitored_registers(self):
        lc = LossCheck(lossy(), source="in", sink="out", source_valid="in_valid")
        assert lc.monitored == ["b"]

    def test_no_path_rejected(self):
        with pytest.raises(ValueError):
            LossCheck(lossy(), source="cond_a", sink="in", source_valid=None)

    def test_generated_shadow_logic_matches_paper(self):
        """§4.5.2: A_b = in_valid, V_b = in_valid, P_b = ~cond_a & cond_b."""
        lc = LossCheck(lossy(), source="in", sink="out", source_valid="in_valid")
        text = lc.generated_verilog()
        assert "assign lc_A_b = in_valid;" in text
        assert "assign lc_V_b = (in_valid && in_valid);" in text
        assert "assign lc_P_b = (!(cond_a) && cond_b);" in text
        # Equation 1: N = V | (N & ~P).
        assert "(lc_Vr_b | (lc_N_b & ~(lc_Pr_b)))" in text
        # Equation 2: Loss = A & ~P & N.
        assert "(lc_Ar_b & (~(lc_Pr_b) & lc_N_b))" in text

    def test_relation_table_exposed(self):
        lc = LossCheck(lossy(), source="in", sink="out", source_valid="in_valid")
        pairs = {(r.src, r.dst) for r in lc.relation_table().relations}
        assert ("in", "b") in pairs and ("b", "out") in pairs


class TestDynamicDetection:
    def test_overwrite_detected(self):
        lc = LossCheck(lossy(), source="in", sink="out", source_valid="in_valid")
        result = lc.analyze(overwrite_b)
        assert result.localized == ["b"]
        assert result.found_loss

    def test_no_loss_when_propagating(self):
        lc = LossCheck(lossy(), source="in", sink="out", source_valid="in_valid")
        result = lc.analyze(propagate_b)
        assert result.localized == []

    def test_invalid_data_overwrite_not_loss(self):
        """Overwriting a value that was never valid is not a loss."""
        lc = LossCheck(lossy(), source="in", sink="out", source_valid="in_valid")

        def drive(sim):
            sim["in_valid"] = 0
            sim["in"] = 1
            sim.step(2)
            sim["in_valid"] = 1
            sim["in"] = 2
            sim.step()
            sim["in_valid"] = 0
            sim.step(2)

        assert lc.analyze(drive).localized == []

    def test_warning_cycle_reported(self):
        lc = LossCheck(lossy(), source="in", sink="out", source_valid="in_valid")
        result = lc.analyze(overwrite_b)
        assert result.warnings[0].cycle == 2  # one cycle after the overwrite
        assert "data loss at b" in str(result.warnings[0])

    def test_missing_source_valid_treats_all_valid(self):
        lc = LossCheck(lossy(), source="in", sink="out", source_valid=None)

        def drive(sim):
            sim["in"] = 1
            sim.step()
            sim["in"] = 2
            sim.step(2)

        # Every cycle writes b (in_valid gates the write)... with no
        # valid signal the write itself is still gated by in_valid.
        sim_result = lc.analyze(drive)
        assert sim_result.localized == []  # in_valid never raised: no writes


class TestFiltering:
    def test_ground_truth_filters_intentional_drop(self):
        design = elaborate(
            parse(
                """
                module dropper (
                    input wire clk,
                    input wire in_valid,
                    input wire [7:0] in,
                    input wire keep,
                    input wire fwd,
                    output reg [7:0] out
                );
                    reg [7:0] hold;
                    always @(posedge clk) begin
                        // Values are intentionally dropped while !keep.
                        if (in_valid) hold <= in;
                        if (keep && fwd) out <= hold;
                    end
                endmodule
                """
            ),
            top="dropper",
        )
        lc = LossCheck(design, source="in", sink="out", source_valid="in_valid")

        def intentional_drop(sim):
            sim["keep"] = 0
            sim["in_valid"] = 1
            for value in (1, 2, 3):
                sim["in"] = value
                sim.step()
            sim["in_valid"] = 0
            sim.step(2)

        filtered = lc.calibrate(intentional_drop)
        assert "hold" in filtered
        result = lc.analyze(intentional_drop)
        assert result.localized == []
        assert result.warnings  # raw warnings still visible

    def test_filter_persists_across_analyses(self):
        lc = LossCheck(lossy(), source="in", sink="out", source_valid="in_valid")
        lc.filtered = {"b"}
        result = lc.analyze(overwrite_b)
        assert result.localized == []


class TestArrayBoundsChecks:
    def test_non_power_of_two_drop_detected(self):
        design = elaborate(
            parse(
                """
                module arr (
                    input wire clk,
                    input wire in_valid,
                    input wire [7:0] in,
                    input wire [4:0] widx,
                    input wire [4:0] ridx,
                    output reg [7:0] out
                );
                    reg [7:0] buf [0:9];
                    always @(posedge clk) begin
                        if (in_valid) buf[widx] <= in;
                        out <= buf[ridx];
                    end
                endmodule
                """
            ),
            top="arr",
        )
        lc = LossCheck(design, source="in", sink="out", source_valid="in_valid")

        def drive(sim):
            sim["in_valid"] = 1
            sim["in"] = 9
            sim["widx"] = 12  # out of range for depth 10
            sim.step()
            sim["in_valid"] = 0
            sim.step()

        result = lc.analyze(drive)
        assert result.localized == ["buf"]

    def test_in_range_writes_not_flagged(self):
        design = elaborate(
            parse(
                """
                module arr2 (
                    input wire clk,
                    input wire in_valid,
                    input wire [7:0] in,
                    input wire [4:0] widx,
                    output reg [7:0] out
                );
                    reg [7:0] buf [0:9];
                    always @(posedge clk) begin
                        if (in_valid) buf[widx] <= in;
                        out <= buf[0];
                    end
                endmodule
                """
            ),
            top="arr2",
        )
        lc = LossCheck(design, source="in", sink="out", source_valid="in_valid")

        def drive(sim):
            sim["in_valid"] = 1
            for idx in range(10):
                sim["widx"] = idx
                sim["in"] = idx
                sim.step()
            sim["in_valid"] = 0
            sim.step()

        assert lc.analyze(drive).localized == []


class TestIPLossPoints:
    def test_fifo_overflow_reported(self):
        design = elaborate(
            parse(
                """
                module viafifo (
                    input wire clk,
                    input wire in_valid,
                    input wire [7:0] in,
                    input wire pop,
                    output reg [7:0] out
                );
                    wire [7:0] q;
                    wire full;
                    wire empty;
                    reg [7:0] staged;
                    scfifo #(.LPM_WIDTH(8), .LPM_NUMWORDS(2)) f (
                        .clock(clk), .data(staged), .wrreq(in_valid),
                        .rdreq(pop), .q(q), .full(full), .empty(empty)
                    );
                    always @(posedge clk) begin
                        if (in_valid) staged <= in;
                        out <= q;
                    end
                endmodule
                """
            ),
            top="viafifo",
        )
        lc = LossCheck(design, source="in", sink="out", source_valid="in_valid")

        def drive(sim):
            sim["in_valid"] = 1
            for value in range(5):  # overflows the 2-entry FIFO
                sim["in"] = value
                sim.step()
            sim["in_valid"] = 0
            sim.step()

        result = lc.analyze(drive)
        assert "f.data" in result.localized


class TestOnFpgaMode:
    def test_losscheck_through_recording_ip(self):
        lc = LossCheck(lossy(), source="in", sink="out", source_valid="in_valid")
        result = lc.analyze(overwrite_b, mode=Mode.ON_FPGA, buffer_depth=64)
        assert result.localized == ["b"]
