"""Tests for LossCheck (§4.5): shadow algebra, filtering, localization."""

import pytest

from repro.core import LossCheck, Mode
from repro.hdl import ast, elaborate, parse
from repro.hdl.codegen import generate_expression
from repro.sim import Simulator


def lossy():
    return elaborate(
        parse(
            """
            module lossy (
                input wire clk,
                input wire in_valid,
                input wire [7:0] in,
                input wire cond_a,
                input wire cond_b,
                input wire [7:0] a,
                output reg [7:0] out
            );
                reg [7:0] b;
                always @(posedge clk) begin
                    if (cond_a) out <= a;
                    else if (cond_b) out <= b;
                    if (in_valid) b <= in;
                end
            endmodule
            """
        ),
        top="lossy",
    )


def overwrite_b(sim):
    """Two valid inputs back-to-back with cond_b never raised."""
    sim["in_valid"] = 1
    sim["in"] = 1
    sim.step()
    sim["in"] = 2
    sim.step()
    sim["in_valid"] = 0
    sim.step(3)


def propagate_b(sim):
    """Each input drains through out before the next arrives."""
    sim["cond_b"] = 1
    for value in (1, 2):
        sim["in_valid"] = 1
        sim["in"] = value
        sim.step()
        sim["in_valid"] = 0
        sim.step(2)


class TestStaticSetup:
    def test_monitored_registers(self):
        lc = LossCheck(lossy(), source="in", sink="out", source_valid="in_valid")
        assert lc.monitored == ["b"]

    def test_no_path_rejected(self):
        with pytest.raises(ValueError):
            LossCheck(lossy(), source="cond_a", sink="in", source_valid=None)

    def test_generated_shadow_logic_matches_paper(self):
        """§4.5.2: A_b = in_valid, V_b = in_valid, P_b = ~cond_a & cond_b."""
        lc = LossCheck(lossy(), source="in", sink="out", source_valid="in_valid")
        text = lc.generated_verilog()
        assert "assign lc_A_b = in_valid;" in text
        assert "assign lc_V_b = (in_valid && in_valid);" in text
        assert "assign lc_P_b = (!(cond_a) && cond_b);" in text
        # Equation 1: N = V | (N & ~P).
        assert "(lc_Vr_b | (lc_N_b & ~(lc_Pr_b)))" in text
        # Equation 2: Loss = A & ~P & N.
        assert "(lc_Ar_b & (~(lc_Pr_b) & lc_N_b))" in text

    def test_relation_table_exposed(self):
        lc = LossCheck(lossy(), source="in", sink="out", source_valid="in_valid")
        pairs = {(r.src, r.dst) for r in lc.relation_table().relations}
        assert ("in", "b") in pairs and ("b", "out") in pairs


class TestDynamicDetection:
    def test_overwrite_detected(self):
        lc = LossCheck(lossy(), source="in", sink="out", source_valid="in_valid")
        result = lc.analyze(overwrite_b)
        assert result.localized == ["b"]
        assert result.found_loss

    def test_no_loss_when_propagating(self):
        lc = LossCheck(lossy(), source="in", sink="out", source_valid="in_valid")
        result = lc.analyze(propagate_b)
        assert result.localized == []

    def test_invalid_data_overwrite_not_loss(self):
        """Overwriting a value that was never valid is not a loss."""
        lc = LossCheck(lossy(), source="in", sink="out", source_valid="in_valid")

        def drive(sim):
            sim["in_valid"] = 0
            sim["in"] = 1
            sim.step(2)
            sim["in_valid"] = 1
            sim["in"] = 2
            sim.step()
            sim["in_valid"] = 0
            sim.step(2)

        assert lc.analyze(drive).localized == []

    def test_warning_cycle_reported(self):
        lc = LossCheck(lossy(), source="in", sink="out", source_valid="in_valid")
        result = lc.analyze(overwrite_b)
        assert result.warnings[0].cycle == 2  # one cycle after the overwrite
        assert "data loss at b" in str(result.warnings[0])

    def test_missing_source_valid_treats_all_valid(self):
        lc = LossCheck(lossy(), source="in", sink="out", source_valid=None)

        def drive(sim):
            sim["in"] = 1
            sim.step()
            sim["in"] = 2
            sim.step(2)

        # Every cycle writes b (in_valid gates the write)... with no
        # valid signal the write itself is still gated by in_valid.
        sim_result = lc.analyze(drive)
        assert sim_result.localized == []  # in_valid never raised: no writes


class TestFiltering:
    def test_ground_truth_filters_intentional_drop(self):
        design = elaborate(
            parse(
                """
                module dropper (
                    input wire clk,
                    input wire in_valid,
                    input wire [7:0] in,
                    input wire keep,
                    input wire fwd,
                    output reg [7:0] out
                );
                    reg [7:0] hold;
                    always @(posedge clk) begin
                        // Values are intentionally dropped while !keep.
                        if (in_valid) hold <= in;
                        if (keep && fwd) out <= hold;
                    end
                endmodule
                """
            ),
            top="dropper",
        )
        lc = LossCheck(design, source="in", sink="out", source_valid="in_valid")

        def intentional_drop(sim):
            sim["keep"] = 0
            sim["in_valid"] = 1
            for value in (1, 2, 3):
                sim["in"] = value
                sim.step()
            sim["in_valid"] = 0
            sim.step(2)

        filtered = lc.calibrate(intentional_drop)
        assert "hold" in filtered
        result = lc.analyze(intentional_drop)
        assert result.localized == []
        assert result.warnings  # raw warnings still visible

    def test_filter_persists_across_analyses(self):
        lc = LossCheck(lossy(), source="in", sink="out", source_valid="in_valid")
        lc.filtered = {"b"}
        result = lc.analyze(overwrite_b)
        assert result.localized == []


class TestArrayBoundsChecks:
    def test_non_power_of_two_drop_detected(self):
        design = elaborate(
            parse(
                """
                module arr (
                    input wire clk,
                    input wire in_valid,
                    input wire [7:0] in,
                    input wire [4:0] widx,
                    input wire [4:0] ridx,
                    output reg [7:0] out
                );
                    reg [7:0] buf [0:9];
                    always @(posedge clk) begin
                        if (in_valid) buf[widx] <= in;
                        out <= buf[ridx];
                    end
                endmodule
                """
            ),
            top="arr",
        )
        lc = LossCheck(design, source="in", sink="out", source_valid="in_valid")

        def drive(sim):
            sim["in_valid"] = 1
            sim["in"] = 9
            sim["widx"] = 12  # out of range for depth 10
            sim.step()
            sim["in_valid"] = 0
            sim.step()

        result = lc.analyze(drive)
        assert result.localized == ["buf"]

    def test_in_range_writes_not_flagged(self):
        design = elaborate(
            parse(
                """
                module arr2 (
                    input wire clk,
                    input wire in_valid,
                    input wire [7:0] in,
                    input wire [4:0] widx,
                    output reg [7:0] out
                );
                    reg [7:0] buf [0:9];
                    always @(posedge clk) begin
                        if (in_valid) buf[widx] <= in;
                        out <= buf[0];
                    end
                endmodule
                """
            ),
            top="arr2",
        )
        lc = LossCheck(design, source="in", sink="out", source_valid="in_valid")

        def drive(sim):
            sim["in_valid"] = 1
            for idx in range(10):
                sim["widx"] = idx
                sim["in"] = idx
                sim.step()
            sim["in_valid"] = 0
            sim.step()

        assert lc.analyze(drive).localized == []


class TestIPLossPoints:
    def test_fifo_overflow_reported(self):
        design = elaborate(
            parse(
                """
                module viafifo (
                    input wire clk,
                    input wire in_valid,
                    input wire [7:0] in,
                    input wire pop,
                    output reg [7:0] out
                );
                    wire [7:0] q;
                    wire full;
                    wire empty;
                    reg [7:0] staged;
                    scfifo #(.LPM_WIDTH(8), .LPM_NUMWORDS(2)) f (
                        .clock(clk), .data(staged), .wrreq(in_valid),
                        .rdreq(pop), .q(q), .full(full), .empty(empty)
                    );
                    always @(posedge clk) begin
                        if (in_valid) staged <= in;
                        out <= q;
                    end
                endmodule
                """
            ),
            top="viafifo",
        )
        lc = LossCheck(design, source="in", sink="out", source_valid="in_valid")

        def drive(sim):
            sim["in_valid"] = 1
            for value in range(5):  # overflows the 2-entry FIFO
                sim["in"] = value
                sim.step()
            sim["in_valid"] = 0
            sim.step()

        result = lc.analyze(drive)
        assert "f.data" in result.localized


class TestOnFpgaMode:
    def test_losscheck_through_recording_ip(self):
        lc = LossCheck(lossy(), source="in", sink="out", source_valid="in_valid")
        result = lc.analyze(overwrite_b, mode=Mode.ON_FPGA, buffer_depth=64)
        assert result.localized == ["b"]


class TestPruning:
    """prune=True: payload-slice restriction of the monitored set."""

    def routed(self):
        import os

        path = os.path.join(
            os.path.dirname(__file__), "fixtures", "flow", "routed_pipeline.v"
        )
        with open(path) as handle:
            return elaborate(parse(handle.read()), top="routed_pipeline")

    def test_prune_drops_verdict_registers(self):
        design = self.routed()
        full = LossCheck(design, "in_data", "out_q")
        pruned = LossCheck(design, "in_data", "out_q", prune=True)
        assert set(pruned.monitored) < set(full.monitored)
        assert pruned.generated_line_count() < full.generated_line_count()
        assert pruned.pruned_out == ["route_sel", "threshold"]
        # The genuine loss point survives pruning.
        assert "stage_b" in pruned.monitored

    def test_prune_detects_same_loss(self):
        design = self.routed()

        def drive(sim):
            sim["out_ready"] = 0
            sim["in_valid"] = 1
            sim["in_data"] = 0x00  # header: route 0, threshold 0
            sim.step()
            for value in (0x11, 0x22, 0x33):  # beats pile up un-consumed
                sim["in_data"] = value
                sim.step()
            sim["in_valid"] = 0
            sim.step(3)

        for prune in (False, True):
            lc = LossCheck(design, "in_data", "out_q", prune=prune)
            result = lc.analyze(drive)
            assert "stage_b" in result.localized, "prune=%s" % prune

    def test_prune_falls_back_for_control_sources(self):
        # A pointer Source reaches the sink only through index positions
        # (ring[wr_ptr] <= ...): the payload slice misses the endpoints,
        # so the pruned run must keep the conservative full set, not go
        # blind.
        from repro.testbed import load_design

        design = load_design("D3")
        full = LossCheck(design, "wr_ptr", "poll_data")
        pruned = LossCheck(design, "wr_ptr", "poll_data", prune=True)
        assert pruned.monitored == full.monitored
        assert pruned.pruned_out == []

    def test_prune_preserves_spec_bug_verdicts(self):
        from repro.testbed import SPECS, run_losscheck

        for bug_id, spec in sorted(SPECS.items()):
            if spec.losscheck is None:
                continue
            full = run_losscheck(bug_id)
            pruned = run_losscheck(bug_id, prune=True)
            assert pruned.result.localized == full.result.localized, bug_id
            assert pruned.matches_paper == full.matches_paper, bug_id
            assert (
                pruned.monitored_registers <= full.monitored_registers
            ), bug_id

    def test_prune_metrics_gauges(self):
        from repro import obs

        design = self.routed()
        obs.reset()
        with obs.observed():
            LossCheck(design, "in_data", "out_q", prune=True)
            monitored = obs.gauge("pass.losscheck.monitored").value
            pruned_out = obs.gauge("pass.losscheck.pruned_out").value
        assert monitored == 2 and pruned_out == 2
