"""Tests for the extension features: checkpointing, post-trigger capture,
and change-only (dedup) recording."""

import pytest

from repro.core import Mode, SignalCat
from repro.hdl import elaborate, parse
from repro.sim import Simulator
from repro.testbed import load_design
from repro.testbed.scenarios import SCENARIOS

CHATTY = """
module chatty (
    input wire clk,
    input wire go,
    output reg [15:0] n
);
    always @(posedge clk) begin
        if (go) begin
            n <= n + 1;
            $display("n=%d", n);
        end
    end
endmodule
"""

STICKY = """
module sticky (
    input wire clk,
    input wire [7:0] level,
    output reg [7:0] held
);
    always @(posedge clk) begin
        held <= level;
        $display("level=%d", level);
    end
endmodule
"""


class TestCheckpointing:
    def test_restore_replays_identically(self, counter_design):
        sim = Simulator(counter_design)
        sim["enable"] = 1
        sim.step(5)
        snapshot = sim.checkpoint()
        sim.step(5)
        after_ten = sim["count"]
        sim.restore(snapshot)
        assert sim["count"] == 5
        assert sim.cycle == 5
        sim.step(5)
        assert sim["count"] == after_ten

    def test_divergent_futures_from_one_checkpoint(self, counter_design):
        sim = Simulator(counter_design)
        sim["enable"] = 1
        sim.step(3)
        snapshot = sim.checkpoint()
        sim.step(4)
        assert sim["count"] == 7
        sim.restore(snapshot)
        sim["enable"] = 0
        sim.step(4)
        assert sim["count"] == 3  # the alternative future

    def test_display_log_restored(self):
        sim = Simulator(elaborate(parse(CHATTY), top="chatty"))
        sim["go"] = 1
        sim.step(3)
        snapshot = sim.checkpoint()
        sim.step(3)
        assert len(sim.display_events) == 6
        sim.restore(snapshot)
        assert len(sim.display_events) == 3

    def test_ip_state_restored(self):
        design = load_design("D2")  # contains an scfifo
        sim = Simulator(design)
        SCENARIOS["D2"].__name__  # touch to document intent
        sim["num_pixels"] = 4
        sim["start"] = 1
        sim.step()
        sim["start"] = 0
        snapshot = sim.checkpoint()
        fifo = sim.ip_model("out_fifo")
        before = list(fifo.core.entries)
        sim["rd_rsp_valid"] = 1
        sim["rd_rsp_data"] = 0x111111
        sim.step(3)
        sim.restore(snapshot)
        assert list(sim.ip_model("out_fifo").core.entries) == before

    def test_waveform_restored(self, counter_design):
        sim = Simulator(counter_design, trace=["count"])
        sim["enable"] = 1
        sim.step(4)
        snapshot = sim.checkpoint()
        sim.step(4)
        sim.restore(snapshot)
        assert sim.waveform["count"] == [0, 1, 2, 3]


class TestPostTriggerCapture:
    def test_stop_delay_extends_recording(self):
        design = elaborate(parse(CHATTY), top="chatty")
        sc = SignalCat(
            design,
            mode=Mode.ON_FPGA,
            buffer_depth=64,
            start_event="1",
            stop_event="n == 3",
            stop_delay=2,
        )

        def drive(sim):
            sim["go"] = 1
            sim.step(10)

        log = sc.run(drive)
        # Without the window recording stops at n==3; with stop_delay=2
        # the stop cycle plus two more are captured.
        values = [entry.values[0] for entry in log]
        assert values == [0, 1, 2, 3, 4, 5]

    def test_zero_delay_stops_at_event(self):
        design = elaborate(parse(CHATTY), top="chatty")
        sc = SignalCat(
            design,
            mode=Mode.ON_FPGA,
            buffer_depth=64,
            start_event="1",
            stop_event="n == 3",
        )

        def drive(sim):
            sim["go"] = 1
            sim.step(10)

        values = [entry.values[0] for entry in sc.run(drive)]
        assert values == [0, 1, 2]


class TestDedupRecording:
    def test_identical_samples_collapsed(self):
        design = elaborate(parse(STICKY), top="sticky")
        sc = SignalCat(design, mode=Mode.ON_FPGA, buffer_depth=64, dedup=True)

        def drive(sim):
            for value in (5, 5, 5, 9, 9, 5):
                sim["level"] = value
                sim.step()

        values = [entry.values[0] for entry in sc.run(drive)]
        assert values == [5, 9, 5]

    def test_dedup_off_keeps_everything(self):
        design = elaborate(parse(STICKY), top="sticky")
        sc = SignalCat(design, mode=Mode.ON_FPGA, buffer_depth=64)

        def drive(sim):
            for value in (5, 5, 9):
                sim["level"] = value
                sim.step()

        values = [entry.values[0] for entry in sc.run(drive)]
        assert values == [5, 5, 9]

    def test_dedup_stretches_buffer(self):
        design = elaborate(parse(STICKY), top="sticky")

        def drive(sim):
            for cycle in range(32):
                sim["level"] = cycle // 16  # long runs of equal values
                sim.step()

        plain = SignalCat(design, mode=Mode.ON_FPGA, buffer_depth=4)
        deduped = SignalCat(
            design, mode=Mode.ON_FPGA, buffer_depth=4, dedup=True
        )
        plain_log = plain.run(drive)
        dedup_log = deduped.run(drive)
        # The plain buffer wrapped and lost the value transition; the
        # deduped one kept both distinct values in 4 entries.
        assert {e.values[0] for e in dedup_log} == {0, 1}
        assert len(plain_log) == 4
