"""repro.diag: the diagnostics model, recovering frontend, lint, check."""

import json
import os

import pytest

from repro.diag import (
    Diagnostic,
    DiagnosticSink,
    RULES,
    SCHEMA,
    Severity,
    SourceSpan,
    build_check_report,
    check_targets,
    check_text,
    diagnostic_from_exception,
    error_code,
    is_registered,
    lint_source,
    render_check_report,
)
from repro.hdl import parse
from repro.hdl.elaborate import ElaborationError, elaborate
from repro.hdl.lexer import LexerError, tokenize
from repro.hdl.parser import ParseError, parse_expression
from repro.testbed.metadata import BUG_IDS

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "broken")


# ---------------------------------------------------------------------------
# Model
# ---------------------------------------------------------------------------


class TestModel:
    def test_severity_order(self):
        assert Severity.NOTE.rank < Severity.WARNING.rank < Severity.ERROR.rank

    def test_format_convention(self):
        diagnostic = Diagnostic(
            Severity.ERROR,
            "P0201",
            "expected ';'",
            SourceSpan("counter.v", 14, 9),
            hint="add it",
        )
        assert diagnostic.format() == (
            "counter.v:14:9: error[P0201]: expected ';' (hint: add it)"
        )

    def test_to_dict_omits_empty_hint(self):
        diagnostic = Diagnostic(Severity.NOTE, "L0001", "skipped")
        assert "hint" not in diagnostic.to_dict()

    def test_sink_counts_and_sorting(self):
        sink = DiagnosticSink()
        sink.warning("L0305", "later", SourceSpan("a.v", 9, 1))
        sink.error("P0201", "earlier", SourceSpan("a.v", 2, 5))
        sink.note("L0001", "other file", SourceSpan("b.v", 1, 1))
        assert sink.counts() == {"error": 1, "warning": 1, "note": 1}
        assert [d.span.line for d in sink.sorted()] == [2, 9, 1]
        assert sink.has_errors and sink.error_count == 1

    def test_sink_overflow(self):
        sink = DiagnosticSink(max_errors=3)
        for index in range(5):
            sink.error("P0201", "e%d" % index)
        assert sink.overflowed

    def test_every_emitted_code_is_registered(self):
        for code in RULES:
            assert is_registered(code)
        assert not is_registered("X9999")

    def test_error_code_prefers_rule_code(self):
        assert error_code(ParseError("m", code="P0203")) == "P0203"
        assert error_code(KeyError("x")) == "KeyError"

    def test_diagnostic_from_exception_uses_attached(self):
        with pytest.raises(ParseError) as info:
            parse("module m (input wire a); assign = 1; endmodule")
        diagnostic = diagnostic_from_exception(info.value)
        assert diagnostic.code == info.value.code
        assert diagnostic.span.line == 1


# ---------------------------------------------------------------------------
# Recovering lexer/parser
# ---------------------------------------------------------------------------


class TestRecoveringFrontend:
    def test_lexer_sink_mode_skips_bad_chars(self):
        sink = DiagnosticSink()
        tokens = tokenize("wire ` x;", sink=sink)
        assert [t.text for t in tokens] == ["wire", "x", ";"]
        assert [d.code for d in sink.diagnostics] == ["P0101"]
        assert sink.diagnostics[0].span.col == 6

    def test_lexer_tracks_columns(self):
        tokens = tokenize("module m;\n  wire w;")
        cols = {t.text: t.col for t in tokens}
        assert cols["module"] == 1 and cols["m"] == 8
        assert cols["wire"] == 3 and cols["w"] == 8

    def test_one_run_reports_many_errors(self):
        sink = DiagnosticSink()
        source = parse(
            "module m (input wire clk, output reg [3:0] q);\n"
            "  assign = 1;\n"
            "  always @(posedge clk) begin\n"
            "    q <= ;\n"
            "    q <= 2;\n"
            "  end\n"
            "endmodule\n",
            sink=sink,
        )
        assert sink.error_count >= 2
        # Recovery salvaged the module and the good statement.
        assert [m.name for m in source.modules] == ["m"]

    def test_strict_mode_carries_all_diagnostics(self):
        with pytest.raises(ParseError) as info:
            parse("module m (input wire a);\n assign = 1;\n assign = 2;\n endmodule")
        assert len(info.value.diagnostics) >= 2
        assert all(d.code.startswith("P") for d in info.value.diagnostics)

    def test_recovery_salvages_sibling_module(self):
        sink = DiagnosticSink()
        source = parse(
            "module bad (input wire a);\n  assign = 1;\nendmodule\n"
            "module good (input wire b, output wire c);\n"
            "  assign c = b;\nendmodule\n",
            sink=sink,
        )
        names = [m.name for m in source.modules]
        assert "good" in names and sink.has_errors

    def test_eof_token_carries_last_source_line(self):
        # Regression: the fabricated EOF token used to claim lineno 0.
        with pytest.raises(ParseError) as info:
            parse("module m (\n  input wire a\n);")
        spans = [d.span for d in info.value.diagnostics]
        assert spans and all(s.line >= 1 for s in spans)
        assert spans[-1].line == 3

    def test_eof_line_on_blank_input(self):
        with pytest.raises(ParseError) as info:
            parse_expression("// only a comment\n")
        assert info.value.diagnostics[0].span.line >= 1

    def test_filename_threads_through(self):
        with pytest.raises(ParseError) as info:
            parse("module m (input wire a); assign = 1; endmodule",
                  filename="dut.v")
        assert str(info.value).startswith("dut.v:1:")

    def test_cascade_terminates(self):
        # Dense garbage must terminate (overflow note, no infinite loop).
        sink = DiagnosticSink(max_errors=5)
        parse("module m (input wire a);\n" + "= ; ] ) (\n" * 40 + "endmodule",
              sink=sink)
        assert sink.overflowed
        assert any(d.code == "P0211" for d in sink.diagnostics)

    def test_elaboration_errors_carry_codes(self):
        with pytest.raises(ElaborationError) as info:
            elaborate(
                parse("module m (input wire [3:0] n); reg [n:0] x; endmodule")
            )
        assert info.value.code == "E0201"
        with pytest.raises(ElaborationError) as info:
            elaborate(
                parse(
                    "module top (input wire x); child c0 (.a(x)); endmodule"
                ),
                top="top",
            )
        assert info.value.code == "E0202"


# ---------------------------------------------------------------------------
# Lint
# ---------------------------------------------------------------------------


def _lint_codes(text):
    sink = lint_source(parse(text))
    return [d.code for d in sink.sorted()]


class TestLint:
    def test_undeclared_signal_is_error(self):
        sink = lint_source(
            parse(
                "module m (input wire a, output wire b);\n"
                "  assign b = a & ghost;\nendmodule"
            )
        )
        errors = sink.errors()
        assert [d.code for d in errors] == ["L0301"]
        assert "ghost" in errors[0].message

    def test_unused_signal(self):
        assert "L0302" in _lint_codes(
            "module m (input wire a, output wire b);\n"
            "  wire dead;\n  assign b = a;\nendmodule"
        )

    def test_multiply_driven(self):
        assert "L0303" in _lint_codes(
            "module m (input wire a, input wire b, output reg q);\n"
            "  always @(*) q = a;\n  always @(*) q = b;\nendmodule"
        )

    def test_per_bit_assigns_not_flagged(self):
        assert "L0303" not in _lint_codes(
            "module m (input wire a, input wire b, output wire [1:0] q);\n"
            "  assign q[0] = a;\n  assign q[1] = b;\nendmodule"
        )

    def test_constant_does_not_fit(self):
        assert "L0304" in _lint_codes(
            "module m (input wire clk, output reg [3:0] q);\n"
            "  always @(posedge clk) q <= 31;\nendmodule"
        )

    def test_silent_truncation(self):
        assert "L0305" in _lint_codes(
            "module m (input wire [7:0] w, output wire [3:0] n);\n"
            "  assign n = w;\nendmodule"
        )

    def test_counter_increment_not_flagged(self):
        # Unsized literals must not inflate to 32 bits (LRM width rules
        # would flag every counter in the testbed).
        assert "L0305" not in _lint_codes(
            "module m (input wire clk, output reg [3:0] q);\n"
            "  always @(posedge clk) q <= q + 1;\nendmodule"
        )

    def test_fsm_case_missing_default(self):
        codes = _lint_codes(
            "module m (input wire clk, output reg [1:0] s);\n"
            "  always @(posedge clk)\n"
            "    case (s)\n"
            "      2'b00: s <= 2'b01;\n"
            "      2'b01: s <= 2'b00;\n"
            "    endcase\nendmodule"
        )
        assert "L0306" in codes

    def test_non_fsm_case_not_flagged(self):
        assert "L0306" not in _lint_codes(
            "module m (input wire [1:0] sel, output reg q);\n"
            "  always @(*)\n"
            "    case (sel)\n"
            "      2'b00: q = 1'b0;\n"
            "      2'b01: q = 1'b1;\n"
            "    endcase\nendmodule"
        )

    def test_blocking_in_edge_triggered(self):
        assert "L0307" in _lint_codes(
            "module m (input wire clk, output reg q);\n"
            "  always @(posedge clk) q = 1'b1;\nendmodule"
        )

    def test_loop_variable_exempt_from_blocking_rule(self):
        assert "L0307" not in _lint_codes(
            "module m (input wire clk, output reg [3:0] q);\n"
            "  integer i;\n"
            "  always @(posedge clk)\n"
            "    for (i = 0; i < 4; i = i + 1) q[i] <= 1'b0;\nendmodule"
        )

    def test_unconnected_instance_port(self):
        codes = _lint_codes(
            "module child (input wire a, input wire b, output wire y);\n"
            "  assign y = a & b;\nendmodule\n"
            "module top (input wire x, output wire z);\n"
            "  child c0 (.a(x), .y(z));\nendmodule"
        )
        assert "L0308" in codes


# ---------------------------------------------------------------------------
# check pipeline
# ---------------------------------------------------------------------------


class TestCheck:
    def test_all_testbed_bugs_have_no_error_diagnostics(self):
        # The 20 designs are deliberately buggy but syntactically valid:
        # their defects surface as warnings, never as errors.
        for result in check_targets(BUG_IDS, run_tools=False):
            errors = result.sink.errors()
            assert not errors, "%s: %s" % (
                result.target,
                [d.format() for d in errors],
            )
            assert all(m.elaborated for m in result.modules), result.target

    def test_testbed_tool_passes_run(self):
        (result,) = check_targets(["D2"])
        assert all(m.tools for m in result.modules)

    @pytest.mark.parametrize(
        "fixture,codes",
        [
            ("three_errors.v", {"P0203", "P0201"}),
            ("bad_tokens.v", {"P0101", "P0102", "P0210"}),
            ("mixed_defects.v", {"P0203"}),
        ],
    )
    def test_broken_fixture_reports_many_errors_in_one_run(
        self, fixture, codes
    ):
        result = check_text(
            open(os.path.join(FIXTURES, fixture)).read(), filename=fixture
        )
        errors = result.sink.errors()
        assert len(errors) >= 3 or fixture == "mixed_defects.v"
        assert codes <= {d.code for d in result.sink.diagnostics}
        for diagnostic in errors:
            assert is_registered(diagnostic.code)
            assert diagnostic.span.line >= 1
            assert diagnostic.span.col >= 1

    def test_mixed_fixture_lints_salvaged_module(self):
        result = check_text(
            open(os.path.join(FIXTURES, "mixed_defects.v")).read(),
            filename="mixed_defects.v",
        )
        codes = {d.code for d in result.sink.diagnostics}
        # One parse error plus >=3 lint findings, all in one run.
        assert {"P0203", "L0302", "L0305", "L0306", "L0307"} <= codes
        fsm = [m for m in result.modules if m.name == "fsm"]
        assert fsm and fsm[0].elaborated and fsm[0].tools

    def test_broken_module_skipped_with_note(self):
        result = check_text(
            "module top (input wire x, output wire y);\n"
            "  mystery u0 (.p(x), .q(y));\nendmodule\n"
            "module standalone (input wire a, output wire b);\n"
            "  assign b = a;\nendmodule\n"
        )
        by_name = {m.name: m for m in result.modules}
        assert not by_name["top"].elaborated
        assert by_name["standalone"].elaborated
        codes = {d.code for d in result.sink.diagnostics}
        assert "E0202" in codes and "L0001" in codes

    def test_exit_codes(self):
        clean = check_text(
            "module m (input wire a, output wire b);"
            " assign b = a; endmodule"
        )
        assert clean.exit_code == 0 and clean.status == "clean"
        warn_source = (
            "module m (input wire a, output wire b);"
            " wire dead; assign b = a; endmodule"
        )
        # Warnings no longer fail the run by default; --strict restores
        # the old contract.
        relaxed = check_text(warn_source)
        assert relaxed.sink.counts()["warning"] >= 1
        assert relaxed.exit_code == 0
        strict = check_text(warn_source, strict=True)
        assert strict.exit_code == 1
        errors = check_text(
            "module m (input wire a, output wire b);"
            " assign b = a; assign b = ~a; endmodule"
        )
        assert errors.sink.counts()["error"] >= 1 or (
            errors.sink.counts()["warning"] >= 1
        )
        hopeless = check_text("utter ( garbage")
        assert hopeless.exit_code == 3
        assert hopeless.status == "unrecoverable-parse"

    def test_select_ignore_filters(self):
        warn_source = (
            "module m (input wire a, output wire b);"
            " wire dead; assign b = a; endmodule"
        )
        selected = check_text(warn_source, select=("L03",))
        assert selected.sink.diagnostics
        assert all(
            d.code.startswith("L03") for d in selected.sink.diagnostics
        )
        ignored = check_text(warn_source, ignore=("L03",))
        assert not any(
            d.code.startswith("L03") for d in ignored.sink.diagnostics
        )
        # Filtering cannot turn an unrecoverable parse into a clean run.
        hopeless = check_text("utter ( garbage", select=("L04",))
        assert hopeless.exit_code == 3

    def test_select_strict_contract_covers_l05(self):
        # A value-level finding (L0501: provably-dead branch) obeys the
        # same prefix-filter and exit-code contract as L03/L04.
        l05_source = (
            "module m (input wire clk, output reg q);\n"
            "  reg [3:0] zero;\n"
            "  always @(posedge clk) begin\n"
            "    zero <= 0;\n"
            "    if (zero[1]) q <= 1; else q <= 0;\n"
            "  end\nendmodule"
        )
        selected = check_text(l05_source, run_tools=False, select=("L05",))
        assert selected.sink.diagnostics
        assert all(
            d.code.startswith("L05") for d in selected.sink.diagnostics
        )
        # L05 findings are warnings: exit 0 by default, 1 under --strict.
        assert selected.exit_code == 0
        strict = check_text(
            l05_source, run_tools=False, select=("L05",), strict=True
        )
        assert strict.exit_code == 1
        ignored = check_text(l05_source, run_tools=False, ignore=("L05",))
        assert not any(
            d.code.startswith("L05") for d in ignored.sink.diagnostics
        )

    def test_report_schema_and_determinism(self):
        results = check_targets(["D3"], run_tools=False)
        report = build_check_report(results)
        assert report["schema"] == SCHEMA
        first = render_check_report(report)
        second = render_check_report(
            build_check_report(check_targets(["D3"], run_tools=False))
        )
        assert first == second
        parsed = json.loads(first)
        for entry in parsed["reports"][0]["diagnostics"]:
            assert set(entry) <= {
                "severity", "code", "message", "span", "hint"
            }

    def test_cli_check_json(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.json"
        code = main(
            ["check", os.path.join(FIXTURES, "three_errors.v"),
             "--json", "-o", str(out)]
        )
        assert code == 1
        payload = json.loads(out.read_text())
        assert payload["schema"] == SCHEMA
        assert payload["reports"][0]["counts"]["error"] >= 3

    def test_cli_check_bug_id(self, capsys):
        from repro.cli import main

        # D6 is structurally clean; the value pass (L05xx) warns about
        # its never-reset output cone, so warnings exist but the exit
        # code stays 0 without --strict.
        assert main(["check", "D6", "--no-tools"]) == 0
        assert "0 errors" in capsys.readouterr().out
        assert main(["check", "D6", "--no-tools", "--ignore", "L05"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_obs_counters_wired(self):
        from repro import obs

        obs.reset()
        with obs.observed():
            check_text("module m (input wire a); wire dead; endmodule",
                       run_tools=False)
            emitted = obs.counter("diag.emitted").value
            warnings = obs.counter("diag.warning").value
        assert emitted >= 1 and warnings >= 1


# ---------------------------------------------------------------------------
# Fuzz lint oracle
# ---------------------------------------------------------------------------


class TestLintOracle:
    def test_passes_on_valid_design(self):
        from repro.fuzz.oracles import lint_oracle

        outcome = lint_oracle(
            "module m (input wire clk, output reg q);\n"
            "  always @(posedge clk) q <= ~q;\nendmodule"
        )
        assert outcome.status == "pass"

    def test_passes_on_broken_design(self):
        from repro.fuzz.oracles import lint_oracle

        outcome = lint_oracle(
            open(os.path.join(FIXTURES, "three_errors.v")).read()
        )
        assert outcome.status == "pass"

    def test_registered_in_campaign(self):
        from repro.fuzz.oracles import ORACLE_NAMES, ORACLES

        assert "lint" in ORACLE_NAMES and "lint" in ORACLES
