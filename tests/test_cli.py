"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "D1" in out and "S3" in out
        assert "Buffer Overflow" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "Total: 68 bugs" in capsys.readouterr().out

    def test_reproduce(self, capsys):
        assert main(["reproduce", "D9"]) == 0
        out = capsys.readouterr().out
        assert "D9 reproduced" in out
        assert "big-endian" in out

    def test_verify_fix(self, capsys):
        assert main(["verify-fix", "D9"]) == 0
        assert "fix verified clean" in capsys.readouterr().out

    def test_losscheck(self, capsys):
        assert main(["losscheck", "C4"]) == 0
        out = capsys.readouterr().out
        assert "localized: ['tdata']" in out
        assert "matches the paper's outcome: True" in out

    def test_fsms(self, capsys):
        assert main(["fsms", "C1"]) == 0
        out = capsys.readouterr().out
        assert "cm_state" in out
        assert "missed (two-process FSMs): ru_state" in out

    def test_instrument(self, capsys):
        assert main(["instrument", "D8", "--buffer", "256"]) == 0
        captured = capsys.readouterr()
        assert "signal_recorder" in captured.out
        assert "generated instrumentation" in captured.err

    def test_unknown_bug(self, capsys):
        assert main(["reproduce", "Z9"]) == 2
        assert "unknown bug id" in capsys.readouterr().err

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_wave(self, capsys, tmp_path):
        out_path = str(tmp_path / "d8.vcd")
        assert main(["wave", "D8", out_path]) == 0
        assert "wrote" in capsys.readouterr().out
        content = open(out_path).read()
        assert "sw_state" in content

    def test_wave_fixed_variant(self, capsys, tmp_path):
        out_path = str(tmp_path / "d8f.vcd")
        assert main(["wave", "D8", out_path, "--fixed"]) == 0
        assert "(fixed)" in open(out_path).read()
