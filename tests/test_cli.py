"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "D1" in out and "S3" in out
        assert "Buffer Overflow" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "Total: 68 bugs" in capsys.readouterr().out

    def test_reproduce(self, capsys):
        assert main(["reproduce", "D9"]) == 0
        out = capsys.readouterr().out
        assert "D9 reproduced" in out
        assert "big-endian" in out

    def test_verify_fix(self, capsys):
        assert main(["verify-fix", "D9"]) == 0
        assert "fix verified clean" in capsys.readouterr().out

    def test_losscheck(self, capsys):
        assert main(["losscheck", "C4"]) == 0
        out = capsys.readouterr().out
        assert "localized: ['tdata']" in out
        assert "matches the paper's outcome: True" in out

    def test_fsms(self, capsys):
        assert main(["fsms", "C1"]) == 0
        out = capsys.readouterr().out
        assert "cm_state" in out
        assert "missed (two-process FSMs): ru_state" in out

    def test_instrument(self, capsys):
        assert main(["instrument", "D8", "--buffer", "256"]) == 0
        captured = capsys.readouterr()
        assert "signal_recorder" in captured.out
        assert "generated instrumentation" in captured.err

    def test_unknown_bug(self, capsys):
        assert main(["reproduce", "Z9"]) == 2
        assert "unknown bug id" in capsys.readouterr().err

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_wave(self, capsys, tmp_path):
        out_path = str(tmp_path / "d8.vcd")
        assert main(["wave", "D8", out_path]) == 0
        assert "wrote" in capsys.readouterr().out
        content = open(out_path).read()
        assert "sw_state" in content

    def test_wave_fixed_variant(self, capsys, tmp_path):
        out_path = str(tmp_path / "d8f.vcd")
        assert main(["wave", "D8", out_path, "--fixed"]) == 0
        assert "(fixed)" in open(out_path).read()

    def test_version(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro %s" % __version__ in capsys.readouterr().out

    def test_quiet_suppresses_stdout(self, capsys):
        assert main(["--quiet", "list"]) == 0
        assert capsys.readouterr().out == ""

    def test_quiet_short_flag_keeps_exit_status(self, capsys):
        assert main(["-q", "reproduce", "Z9"]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "unknown bug id" in captured.err


class TestProfile:
    def test_profile_prints_spans_and_metrics(self, capsys, tmp_path):
        out_path = str(tmp_path / "profile_D1.json")
        assert main(["profile", "D1", "--buffer", "256", "-o", out_path]) == 0
        out = capsys.readouterr().out
        for span_name in ("profile", "parse", "elaborate", "simulate",
                          "instrument"):
            assert span_name in out
        assert "sim.cycles" in out
        assert "pass.signalcat.generated_loc" in out

    def test_profile_report_json(self, capsys, tmp_path):
        from repro import obs

        out_path = str(tmp_path / "profile_D1.json")
        assert main(["profile", "D1", "--buffer", "256", "-o", out_path]) == 0
        report = json.loads(open(out_path).read())
        assert report["schema"] == obs.SCHEMA
        assert report["meta"]["reproduced"] is True
        # The acceptance bar: >= 3 levels of span nesting and >= 8 metrics.
        assert obs.max_depth(report["spans"]) >= 3
        assert len(report["metrics"]) >= 8

    def test_profile_default_output_path(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["profile", "D1", "--buffer", "256"]) == 0
        report = json.loads((tmp_path / "results" / "profile_D1.json").read_text())
        assert report["label"] == "profile:D1"

    def test_profile_leaves_obs_disabled(self, capsys, tmp_path):
        from repro import obs

        out_path = str(tmp_path / "p.json")
        assert main(["profile", "D1", "--buffer", "256", "-o", out_path]) == 0
        assert obs.enabled is False


class TestFaultsCommand:
    def test_faults_campaign_writes_reports(self, capsys, tmp_path):
        assert main([
            "faults", "--bug", "D2", "--faults-per-bug", "2",
            "--output-dir", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "faults: 2 cases" in out
        assert "losscheck caught injected data-loss faults on:" in out
        detection = json.loads(
            (tmp_path / "detection_seed0.json").read_text()
        )
        assert detection["schema"] == "repro.faults/v1"
        assert detection["cases"] == 2
        run_report = json.loads((tmp_path / "report_seed0.json").read_text())
        assert run_report["schema"] == "repro.obs/v1"
        assert run_report["meta"]["cases"] == 2

    def test_faults_resumes_from_journal(self, capsys, tmp_path):
        args = [
            "faults", "--bug", "D2", "--faults-per-bug", "2",
            "--output-dir", str(tmp_path),
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "(2 resumed from journal)" in capsys.readouterr().out

    def test_faults_determinism_across_runs(self, capsys, tmp_path):
        for run in ("a", "b"):
            assert main([
                "faults", "--bug", "C4", "--faults-per-bug", "2",
                "--seed", "5", "--output-dir", str(tmp_path / run),
            ]) == 0
        first = (tmp_path / "a" / "journal_seed5.jsonl").read_bytes()
        second = (tmp_path / "b" / "journal_seed5.jsonl").read_bytes()
        assert first == second
        assert (
            json.loads((tmp_path / "a" / "detection_seed5.json").read_text())
            == json.loads((tmp_path / "b" / "detection_seed5.json").read_text())
        )

    def test_faults_unknown_bug(self, capsys, tmp_path):
        assert main([
            "faults", "--bug", "Z9", "--output-dir", str(tmp_path),
        ]) == 2
        assert "unknown bug id" in capsys.readouterr().err


class TestExitCodes:
    def test_stage_classification(self):
        from repro.cli import (
            EXIT_ELABORATE,
            EXIT_PARSE,
            EXIT_SIMULATE,
            EXIT_TOOL,
            classify_failure,
        )
        from repro.hdl.elaborate import ElaborationError
        from repro.hdl.lexer import LexerError
        from repro.hdl.parser import ParseError
        from repro.sim.simulator import CombinationalLoopError
        from repro.sim.values import EvaluationError

        assert classify_failure(ParseError("x")) == EXIT_PARSE
        assert classify_failure(LexerError("x")) == EXIT_PARSE
        assert classify_failure(ElaborationError("x")) == EXIT_ELABORATE
        assert classify_failure(CombinationalLoopError("x")) == EXIT_SIMULATE
        assert classify_failure(EvaluationError("x")) == EXIT_SIMULATE
        assert classify_failure(ValueError("tool broke")) == EXIT_TOOL

    def test_tool_pass_failure_exit_code(self, capsys):
        # S1 has no LossCheck spec: the tool pass refuses -> exit 6.
        assert main(["losscheck", "S1"]) == 6
        assert "error (tool pass)" in capsys.readouterr().err
