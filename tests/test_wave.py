"""Tests for repro.wave: VCD round-trip, trace diff, OSDD, recorder decode."""

import json

import pytest

from repro.cli import main
from repro.core import Mode, SignalCat
from repro.hdl import elaborate, parse
from repro.sim import Simulator
from repro.wave import (
    SCHEMA,
    SignalTrace,
    Trace,
    capture_what_if,
    classify_signals,
    diff_traces,
    dump_vcd,
    escape_id,
    first_snapshot_divergence,
    parse_fault_spec,
    parse_vcd,
    render_wave_report,
    unescape_id,
    wavediff_bug,
)
from repro.wave.capture import FaultSpecError

STREAMER = """
module streamer (
    input wire clk,
    input wire rst,
    input wire in_valid,
    input wire [7:0] in_data,
    output reg out_valid,
    output reg [7:0] out_data
);
    reg [7:0] held;
    wire [7:0] next_data;
    assign next_data = in_data + 1;
    always @(posedge clk) begin
        if (rst) out_valid <= 0;
        else begin
            held <= in_data;
            out_valid <= in_valid;
            out_data <= next_data;
        end
    end
endmodule
"""

PKTCOUNT = """
module pktcount (
    input wire clk,
    input wire pkt_valid,
    input wire [7:0] pkt,
    output reg [15:0] count
);
    always @(posedge clk) begin
        if (pkt_valid) begin
            count <= count + 1;
            $display("packet %h arrived, total %d", pkt, count);
        end
    end
endmodule
"""


def streamer():
    return elaborate(parse(STREAMER), top="streamer")


def pktcount_design():
    return elaborate(parse(PKTCOUNT), top="pktcount")


def drive_packets(sim, values=(0xAA, 0xBB, 0xCC)):
    for value in values:
        sim["pkt"] = value
        sim["pkt_valid"] = 1
        sim.step()
        sim["pkt_valid"] = 0
        sim.step()


def make_trace(cycles, label="", **signals):
    """Synthetic Trace from {name: (kind, [values])} keyword specs."""
    built = {}
    for name, (kind, values) in signals.items():
        built[name] = SignalTrace(
            name=name, width=8, values=list(values), kind=kind
        )
    return Trace(cycles=cycles, signals=built, label=label)


class TestVCDWriter:
    def test_dumpvars_initial_values(self):
        text = dump_vcd({"a": [0, 1], "bus": [5, 5]}, {"a": 1, "bus": 4})
        lines = text.splitlines()
        start = lines.index("$dumpvars")
        end = lines.index("$end", start)
        # Every signal gets an initial value inside the #0 $dumpvars block.
        assert lines[start - 1] == "#0"
        block = lines[start + 1:end]
        assert len(block) == 2
        assert sorted(block)[0].startswith("0")      # a = 0
        assert sorted(block)[1].startswith("b101 ")  # bus = 5

    def test_unknown_values_render_x(self):
        text = dump_vcd({"a": [None, 1], "bus": [None, 3]}, {"a": 1, "bus": 4})
        lines = text.splitlines()
        assert any(line.startswith("x") for line in lines)
        assert any(line.startswith("bx ") for line in lines)

    def test_reserved_chars_escaped(self):
        assert escape_id("a b") == "a\\x20b"
        assert escape_id("x$y") == "x\\x24y"
        assert escape_id("p\\q") == "p\\\\q"
        for name in ("a b", "x$y", "p\\q", "s0.a0.total + 1"):
            assert unescape_id(escape_id(name)) == name

    def test_escaped_name_survives_roundtrip(self):
        waveform = {"s0.a0.pkt + 1": [1, 2], "plain": [0, 0]}
        widths = {"s0.a0.pkt + 1": 8, "plain": 1}
        parsed, parsed_widths = parse_vcd(dump_vcd(waveform, widths))
        assert parsed == waveform
        assert parsed_widths == widths

    def test_backcompat_reexports(self):
        from repro.sim import dump_vcd as sim_dump
        from repro.sim import write_vcd as sim_write
        from repro.sim.vcd import dump_vcd as module_dump
        from repro.wave.vcd import dump_vcd as wave_dump

        assert sim_dump is module_dump
        assert sim_dump.__wrapped__ is wave_dump
        assert sim_write is not None

    def test_backcompat_shim_warns_at_call_time(self):
        import warnings

        from repro.sim.vcd import dump_vcd as deprecated_dump
        from repro.sim.vcd import parse_vcd as deprecated_parse

        with pytest.warns(DeprecationWarning, match="repro.wave.vcd"):
            text = deprecated_dump({"a": [0, 1]}, {"a": 1})
        with pytest.warns(DeprecationWarning, match="repro.wave.vcd"):
            waveform, widths = deprecated_parse(text)
        assert waveform == {"a": [0, 1]}
        # The wrapped originals stay warning-free: repro.sim re-exports
        # the shim eagerly, so only *calls* through it may warn.
        from repro.wave.vcd import dump_vcd as wave_dump

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            wave_dump({"a": [0]}, {"a": 1})


class TestVCDRoundTrip:
    def test_dump_parse_trace_equality(self):
        waveform = {
            "a": [0, 1, 1, 0, None],
            "bus": [5, 5, 2, 2, 2],
            "wide": [None, None, 1000, 1000, 7],
        }
        widths = {"a": 1, "bus": 4, "wide": 16}
        trace = Trace.from_waveform(waveform, widths)
        again = Trace.from_vcd(trace.to_vcd())
        assert again.cycles == trace.cycles
        assert again.waveform() == trace.waveform()
        assert {n: s.width for n, s in again.signals.items()} == widths

    def test_simulator_roundtrip(self):
        sim = Simulator(streamer(), trace="all")
        sim["in_valid"] = 1
        sim["in_data"] = 7
        sim.step(4)
        trace = Trace.from_simulator(sim)
        again = Trace.from_vcd(trace.to_vcd())
        assert again.waveform() == trace.waveform()
        assert again.cycles == sim.cycle


class TestTraceModel:
    def test_classify_signals(self):
        kinds = classify_signals(streamer().top)
        assert kinds["in_data"] == "input"
        assert kinds["out_data"] == "output"  # output port, even registered
        assert kinds["held"] == "state"
        assert kinds["next_data"] == "internal"

    def test_from_simulator_attaches_kinds(self):
        sim = Simulator(streamer(), trace="all")
        sim.step(2)
        trace = Trace.from_simulator(sim)
        assert trace["out_data"].kind == "output"
        assert trace["held"].kind == "state"
        assert trace.label == "streamer"

    def test_filter_by_glob(self):
        sim = Simulator(streamer(), trace="all")
        sim.step(2)
        trace = Trace.from_simulator(sim).filter(signals="out_*")
        assert trace.names() == ["out_data", "out_valid"]

    def test_filter_last_window(self):
        trace = make_trace(6, a=("state", [0, 1, 2, 3, 4, 5]))
        window = trace.filter(last=2)
        assert window.cycles == 2
        assert window["a"].values == [4, 5]


class TestRecorderDecode:
    def test_recorder_buffer_decodes_to_trace(self):
        sc = SignalCat(pktcount_design(), mode=Mode.ON_FPGA, buffer_depth=64)
        sim = sc.simulator()
        drive_packets(sim)
        trace = Trace.from_recorder(sc, sim)
        assert trace.names() == ["s0.a0.pkt", "s0.a1.count"]
        assert trace.cycles == sim.cycle
        pkt = trace["s0.a0.pkt"]
        count = trace["s0.a1.count"]
        assert pkt.kind == "recorded"
        assert pkt.width == 8 and count.width == 16
        assert [v for v in pkt.values if v is not None] == [0xAA, 0xBB, 0xCC]
        assert [v for v in count.values if v is not None] == [0, 1, 2]
        # Cycles without a fired $display stay unknown.
        assert pkt.values.count(None) == trace.cycles - 3

    def test_wrapped_buffer_forgets_oldest(self):
        sc = SignalCat(pktcount_design(), mode=Mode.ON_FPGA, buffer_depth=2)
        sim = sc.simulator()
        drive_packets(sim)
        trace = Trace.from_recorder(sc, sim)
        assert [
            v for v in trace["s0.a0.pkt"].values if v is not None
        ] == [0xBB, 0xCC]

    def test_recorded_trace_exports_vcd(self):
        sc = SignalCat(pktcount_design(), mode=Mode.ON_FPGA, buffer_depth=64)
        sim = sc.simulator()
        drive_packets(sim)
        trace = Trace.from_recorder(sc, sim)
        again = Trace.from_vcd(trace.to_vcd())
        assert again.waveform() == trace.waveform()


class TestAlignment:
    def test_identical_traces(self):
        trace = make_trace(4, a=("state", [0, 1, 2, 3]))
        diff = diff_traces(trace, trace)
        assert not diff.diverged
        assert diff.signals_compared == 1
        assert diff.first is None and diff.osdd is None

    def test_unknowns_never_diverge(self):
        golden = make_trace(3, a=("state", [1, 1, 1]))
        variant = make_trace(3, a=("state", [1, None, 1]))
        diff = diff_traces(golden, variant)
        assert not diff.diverged
        assert diff.signals[0].unknown_cycles == 1

    def test_pipeline_skew_absorbed_by_alignment(self):
        ramp = [0, 1, 2, 3, 4, 5, 6, 7]
        golden = make_trace(8, a=("state", ramp))
        variant = make_trace(8, a=("state", [0, 0] + ramp[:-2]))
        assert diff_traces(golden, variant).diverged
        aligned = diff_traces(golden, variant, max_offset=3)
        assert aligned.offset == 2
        assert not aligned.diverged

    def test_osdd_output_minus_state(self):
        golden = make_trace(
            10,
            st=("state", [0] * 10),
            out=("output", [0] * 10),
        )
        variant = make_trace(
            10,
            st=("state", [0] * 5 + [1] * 5),
            out=("output", [0] * 8 + [1] * 2),
        )
        diff = diff_traces(golden, variant)
        assert diff.state_divergence == (5, "st")
        assert diff.output_divergence == (8, "out")
        assert diff.osdd == 3
        assert (diff.first.cycle, diff.first.signal) == (5, "st")

    def test_input_divergence_excluded_from_first(self):
        golden = make_trace(
            6,
            stim=("input", [0] * 6),
            st=("state", [0] * 6),
        )
        variant = make_trace(
            6,
            stim=("input", [1] * 6),
            st=("state", [0, 0, 0, 1, 1, 1]),
        )
        diff = diff_traces(golden, variant)
        assert diff.divergent_signals == 2
        assert diff.first.signal == "st"

    def test_snapshot_divergence_legacy_strings(self):
        a = [{"x": 1, "y": 2}, {"x": 1, "y": 3}]
        b = [{"x": 1, "y": 2}, {"x": 5, "y": 3}]
        divergence = first_snapshot_divergence(a, b)
        assert divergence.describe("interpreted", "compiled") == (
            "cycle 1 signal x: interpreted=1 compiled=5"
        )
        short = first_snapshot_divergence(a, a[:1])
        assert short.describe("plain", "tool") == "trace length plain=2 tool=1"
        assert first_snapshot_divergence(a, a) is None

    def test_fuzz_oracle_uses_shared_aligner(self):
        from repro.fuzz.oracles import _first_trace_divergence

        a = [{"x": 1}]
        b = [{"x": 2}]
        assert _first_trace_divergence(a, b, "interpreted", "compiled") == (
            "cycle 0 signal x: interpreted=1 compiled=2"
        )
        assert _first_trace_divergence(a, a, "interpreted", "compiled") is None


class TestFaultSpec:
    def test_single_event(self):
        schedule = parse_fault_spec("seu_reg:count@12:bit=3")
        assert schedule.label == "seu_reg:count@12:bit=3"
        (event,) = schedule.events
        assert (event.kind, event.target, event.cycle, event.bit) == (
            "seu_reg", "count", 12, 3
        )

    def test_multi_event_and_options(self):
        schedule = parse_fault_spec(
            "stuck0:valid@5:duration=4+glitch:ready@9:bit=1"
        )
        assert len(schedule.events) == 2
        stuck, glitch = sorted(schedule.events)
        assert stuck.kind == "stuck0" and stuck.duration == 4
        assert glitch.kind == "glitch" and glitch.bit == 1

    @pytest.mark.parametrize("spec", [
        "seu_reg:count",            # no @CYCLE
        "count@12",                 # no KIND:TARGET
        "bogus:count@12",           # unknown kind
        "seu_reg:count@twelve",     # non-integer cycle
        "seu_reg:count@12:bits=3",  # unknown option
        "seu_reg:count@12:bit=x",   # non-integer option
        "seu_reg:count@3++",        # empty event
    ])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(FaultSpecError):
            parse_fault_spec(spec)


class TestCaptureWhatIf:
    def test_faulted_trace_captured_then_rolled_back(self):
        sim = Simulator(streamer(), trace="all")
        sim["in_valid"] = 1
        sim["in_data"] = 3
        sim.step(4)
        schedule = parse_fault_spec("seu_reg:held@5:bit=0")
        trace, _value = capture_what_if(
            sim, schedule, lambda s: s.run(4), label="faulted"
        )
        assert trace.cycles == 8
        assert trace.label == "faulted"
        # The golden timeline is untouched by the what-if replay.
        assert sim.cycle == 4
        assert all(len(v) == 4 for v in sim.waveform.values())


class TestWavediffBugs:
    # Pinned divergence geometry for three testbed bugs (plus a
    # negative-OSDD control): first divergence cycle/signal and the
    # output/state delta of the fixed-vs-buggy comparison.
    EXPECTED = {
        "C4": {"first": (7, "fifo_pop"), "osdd": 2},
        "D1": {"first": (36, "parity"), "osdd": 2},
        "D12": {"first": (7, "len"), "osdd": 6},
        "C2": {"first": (6, "b_ready"), "osdd": -2},
    }

    @pytest.mark.parametrize("bug_id", sorted(EXPECTED))
    def test_known_divergence_geometry(self, bug_id):
        expected = self.EXPECTED[bug_id]
        outcome = wavediff_bug(bug_id)
        assert outcome.diverged
        assert (
            outcome.diff.first.cycle, outcome.diff.first.signal
        ) == expected["first"]
        assert outcome.diff.osdd == expected["osdd"]

    def test_fault_mode_diverges_at_injection(self):
        outcome = wavediff_bug("C4", fault="seu_reg:pop_inflight@20")
        assert outcome.report["mode"] == "fault"
        assert outcome.report["fault"]["events"][0]["kind"] == "seu_reg"
        assert outcome.diff.first.cycle == 20
        assert outcome.diff.first.signal == "pop_inflight"

    def test_never_applied_fault_means_no_divergence(self):
        outcome = wavediff_bug("C4", fault="seu_reg:pop_inflight@100000")
        assert not outcome.diverged

    def test_signal_and_last_windows(self):
        outcome = wavediff_bug("C4", signals=["fifo_*"], last=20)
        assert all(n.startswith("fifo_") for n in outcome.golden.names())
        assert outcome.golden.cycles == 20
        assert outcome.variant.cycles == 20

    def test_all_20_bugs_byte_deterministic(self):
        from repro.testbed.metadata import BUG_IDS

        for bug_id in BUG_IDS:
            first = render_wave_report(wavediff_bug(bug_id).report)
            second = render_wave_report(wavediff_bug(bug_id).report)
            assert first == second, bug_id
            report = json.loads(first)
            assert report["schema"] == SCHEMA
            assert report["diverged"] is True
            assert report["first_divergence"]["cycle"] >= 0
            divergent = [
                s for s in report["signals"]
                if s["first_divergence"] is not None
            ]
            assert len(divergent) == report["divergent_signals"] > 0


class TestScorerOSDD:
    def test_detection_scorer_reports_osdd(self):
        from repro.faults.models import FaultEvent, FaultSchedule
        from repro.faults.scoring import DetectionScorer

        scorer = DetectionScorer("C4")
        schedule = FaultSchedule(
            events=[FaultEvent(cycle=20, kind="seu_reg",
                               target="pop_inflight")],
            label="unit",
        )
        score = scorer.score(schedule)
        record = score.to_dict()
        assert record["divergence"]["cycle"] == 20
        assert record["divergence"]["signal"] == "pop_inflight"
        assert isinstance(record["osdd"], int) or record["osdd"] is None
        json.dumps(record)  # journal-serializable


class TestWaveCli:
    def test_wavediff_exit_one_on_divergence(self, capsys):
        assert main(["wavediff", "C4"]) == 1
        out = capsys.readouterr().out
        assert "OSDD: 2 cycles" in out
        assert "first divergence: cycle 7 signal fifo_pop" in out

    def test_wavediff_json_report_deterministic(self, capsys, tmp_path):
        paths = []
        for name in ("a.json", "b.json"):
            path = str(tmp_path / name)
            assert main(["wavediff", "C4", "--json", "-o", path]) == 1
            paths.append(path)
        first = open(paths[0], "rb").read()
        assert first == open(paths[1], "rb").read()
        report = json.loads(first)
        assert report["schema"] == SCHEMA
        assert report["osdd"] == 2
        assert report["mode"] == "fixed-vs-buggy"

    def test_wavediff_json_to_stdout(self, capsys):
        assert main(["wavediff", "C4", "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["schema"] == SCHEMA

    def test_wavediff_fault_mode(self, capsys):
        code = main([
            "wavediff", "C4", "--fault", "seu_reg:pop_inflight@20",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "C4:buggy vs C4:buggy+fault" in out
        assert "cycle 20 signal pop_inflight" in out

    def test_wavediff_clean_fault_exits_zero(self, capsys):
        code = main([
            "wavediff", "C4", "--fault", "seu_reg:pop_inflight@100000",
        ])
        assert code == 0
        assert "no divergence" in capsys.readouterr().out

    def test_wavediff_bad_spec_is_usage_error(self, capsys):
        assert main(["wavediff", "C4", "--fault", "bogus:x@1"]) == 2
        assert "unknown fault kind" in capsys.readouterr().err

    def test_wavediff_negative_cycle_is_usage_error(self, capsys):
        code = main(["wavediff", "C4", "--fault", "seu_reg:fifo_pop@-5"])
        assert code == 2
        assert "negative cycle" in capsys.readouterr().err

    def test_wavediff_duplicate_option_is_usage_error(self, capsys):
        code = main([
            "wavediff", "C4", "--fault",
            "seu_reg:fifo_pop@5:bit=1:bit=2",
        ])
        assert code == 2
        assert "duplicate fault option 'bit'" in capsys.readouterr().err

    def test_wavediff_negative_option_is_usage_error(self, capsys):
        code = main(["wavediff", "C4", "--fault", "seu_reg:fifo_pop@5:bit=-1"])
        assert code == 2
        assert "is negative" in capsys.readouterr().err

    def test_wavediff_fixed_requires_fault(self, capsys):
        assert main(["wavediff", "C4", "--fixed"]) == 2
        assert "--fixed without --fault" in capsys.readouterr().err

    def test_wavediff_unknown_bug(self, capsys):
        assert main(["wavediff", "Z9"]) == 2
        assert "unknown bug id" in capsys.readouterr().err

    def test_wavediff_vcd_out(self, capsys, tmp_path):
        assert main([
            "wavediff", "C4", "--vcd-out", str(tmp_path),
        ]) == 1
        golden = (tmp_path / "C4_golden.vcd").read_text()
        variant = (tmp_path / "C4_variant.vcd").read_text()
        assert "$dumpvars" in golden
        assert "fifo_pop" in variant

    def test_wave_signals_filter(self, capsys, tmp_path):
        path = str(tmp_path / "d8.vcd")
        assert main(["wave", "D8", path, "--signals", "sw_*"]) == 0
        content = open(path).read()
        assert "sw_state" in content
        assert "dest" not in content

    def test_wave_last_window(self, capsys, tmp_path):
        path = str(tmp_path / "d8.vcd")
        assert main(["wave", "D8", path, "--last", "5"]) == 0
        out = capsys.readouterr().out
        assert "wrote 5-cycle waveform" in out
