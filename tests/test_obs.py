"""Tests for the observability layer (repro.obs)."""

import json

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import NULL_SPAN, Tracer


@pytest.fixture(autouse=True)
def clean_obs():
    """Each test gets a fresh observation window and the default gate."""
    obs.reset()
    yield
    obs.reset()
    obs.enabled = False


class TestCounters:
    def test_starts_at_zero_and_accumulates(self):
        counter = obs.counter("sim.cycles")
        assert counter.value == 0
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_get_or_create_returns_same_instance(self):
        assert obs.counter("x") is obs.counter("x")

    def test_kind_conflict_rejected(self):
        obs.counter("x")
        with pytest.raises(TypeError):
            obs.gauge("x")

    def test_snapshot(self):
        obs.counter("events").inc(3)
        snap = obs.metrics()
        assert {"name": "events", "kind": "counter", "value": 3} in snap


class TestGauges:
    def test_set_overwrites(self):
        gauge = obs.gauge("pass.loc")
        gauge.set(10)
        gauge.set(7)
        assert gauge.value == 7


class TestHistograms:
    def test_summary_statistics(self):
        hist = obs.histogram("settle")
        for value in (1, 1, 2, 8):
            hist.observe(value)
        assert hist.count == 4
        assert hist.total == 12
        assert hist.min == 1
        assert hist.max == 8
        assert hist.mean == 3.0

    def test_power_of_two_buckets(self):
        hist = obs.histogram("settle")
        for value in (0, 1, 2, 3, 4, 5):
            hist.observe(value)
        snap = hist.snapshot()
        # 0 -> "0", 1 -> "1", 2 -> "2", 3..4 -> "4", 5 -> "8"
        assert snap["buckets"] == {"0": 1, "1": 1, "2": 1, "4": 2, "8": 1}

    def test_empty_histogram_mean(self):
        assert obs.histogram("empty").mean == 0.0

    def test_percentile_upper_bound_estimate(self):
        hist = obs.histogram("latency")
        for value in (1, 2, 3, 100):
            hist.observe(value)
        # Bucket upper bounds: 1, 2, 4, 128. p50 lands in bucket 2,
        # p99 in the last bucket.
        assert hist.percentile(0.5) == 2.0
        assert hist.percentile(0.99) == 128.0
        assert hist.percentile(0.0) == 1.0
        assert hist.percentile(1.0) == 128.0

    def test_percentile_empty_is_zero(self):
        assert obs.histogram("empty").percentile(0.5) == 0.0


class TestSpans:
    def test_disabled_spans_are_noops(self):
        assert not obs.enabled
        assert obs.span("anything") is NULL_SPAN
        with obs.span("anything") as span:
            span.set(key="value")
        assert obs.spans() == []

    def test_nesting(self):
        with obs.observed():
            with obs.span("outer"):
                with obs.span("middle"):
                    with obs.span("inner"):
                        pass
                with obs.span("sibling"):
                    pass
        roots = obs.spans()
        assert len(roots) == 1
        outer = roots[0]
        assert outer["name"] == "outer"
        assert [c["name"] for c in outer["children"]] == ["middle", "sibling"]
        assert outer["children"][0]["children"][0]["name"] == "inner"
        assert obs.max_depth(roots) == 3

    def test_durations_recorded_and_nested_within_parent(self):
        with obs.observed():
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
        outer = obs.spans()[0]
        inner = outer["children"][0]
        assert outer["duration_s"] >= inner["duration_s"] >= 0

    def test_attrs_and_exception_annotation(self):
        with obs.observed():
            with pytest.raises(ValueError):
                with obs.span("work", bug="D1"):
                    raise ValueError("boom")
        snap = obs.spans()[0]
        assert snap["attrs"]["bug"] == "D1"
        assert snap["attrs"]["error"] == "ValueError"
        assert snap["duration_s"] is not None

    def test_tracer_isolated_instances(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        assert [s["name"] for s in tracer.snapshot()] == ["a"]
        assert obs.spans() == []


class TestReport:
    def test_report_round_trips_through_json(self):
        with obs.observed():
            with obs.span("phase", bug="D1"):
                obs.counter("sim.cycles").inc(100)
                obs.histogram("sim.settle_iterations").observe(2)
        report = obs.build_report("unit", meta={"k": "v"})
        decoded = json.loads(json.dumps(report))
        assert decoded["schema"] == obs.SCHEMA
        assert decoded["label"] == "unit"
        assert decoded["meta"] == {"k": "v"}
        assert decoded["spans"][0]["name"] == "phase"
        names = {m["name"] for m in decoded["metrics"]}
        assert {"sim.cycles", "sim.settle_iterations"} <= names

    def test_write_report(self, tmp_path):
        path = tmp_path / "report.json"
        obs.counter("n").inc()
        obs.write_report(obs.build_report("unit"), str(path))
        assert json.loads(path.read_text())["metrics"][0]["value"] == 1

    def test_render_span_tree_indents_children(self):
        with obs.observed():
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
        text = obs.render_span_tree(obs.spans())
        lines = text.splitlines()
        assert lines[0].startswith("outer")
        assert lines[1].startswith("  inner")

    def test_render_metrics_table(self):
        obs.counter("sim.cycles").inc(5)
        obs.histogram("settle").observe(1)
        text = obs.render_metrics_table(obs.metrics())
        assert "sim.cycles" in text and "counter" in text and "5" in text
        assert "n=1" in text

    def test_empty_renders(self):
        assert "no spans" in obs.render_span_tree([])
        assert "no metrics" in obs.render_metrics_table([])


class TestRegistryReset:
    def test_reset_clears_metrics_and_spans(self):
        with obs.observed():
            obs.counter("a").inc()
            with obs.span("s"):
                pass
        obs.reset()
        assert obs.metrics() == []
        assert obs.spans() == []

    def test_registry_len_and_contains(self):
        registry = MetricsRegistry()
        registry.counter("a")
        assert len(registry) == 1
        assert "a" in registry
        assert registry.get("a").kind == "counter"
        assert registry.get("missing") is None


class TestSimulatorIntegration:
    def test_simulator_metrics_collected_when_enabled(self, counter_design):
        from repro.sim import Simulator

        with obs.observed():
            sim = Simulator(counter_design)
            sim["rst"] = 1
            sim.step(2)
            sim["rst"] = 0
            sim["enable"] = 1
            sim.step(10)
        assert obs.registry.get("sim.cycles").value == 12
        settle = obs.registry.get("sim.settle_iterations")
        assert settle.count > 0

    def test_simulator_metrics_silent_when_disabled(self, counter_design):
        from repro.sim import Simulator

        sim = Simulator(counter_design)
        sim.step(5)
        assert obs.metrics() == []

    def test_pass_gauges_recorded(self, fsm_design):
        from repro.core import FSMMonitor

        with obs.observed():
            FSMMonitor(fsm_design)
        assert obs.registry.get("pass.fsm_monitor.generated_loc").value > 0
        roots = obs.spans()
        assert roots[0]["name"] == "pass:fsm_monitor"

    def test_reproduce_attaches_report(self):
        from repro.testbed import reproduce

        with obs.observed():
            result = reproduce("D1")
        assert result.report is not None
        assert result.report["schema"] == obs.SCHEMA
        span_names = [s["name"] for s in result.report["spans"]]
        assert "reproduce" in span_names

    def test_reproduce_no_report_by_default(self):
        from repro.testbed import reproduce

        assert reproduce("D1").report is None

    def test_recorder_wraps_and_dedup_drops(self):
        from repro.sim.ip.recorder import SignalRecorder

        with obs.observed():
            recorder = SignalRecorder({"WIDTH": 8, "DEPTH": 2, "DEDUP": 1})
            for word in (1, 2, 3, 3):
                recorder.clock_edge({"enable": 1, "data": word}, {"clock"})
        assert obs.registry.get("sim.recorder.samples").value == 3
        assert obs.registry.get("sim.recorder.overwrites").value == 1
        assert obs.registry.get("sim.recorder.dedup_drops").value == 1
