"""Tests for the 68-bug study database and Table 1 (§3)."""

from collections import Counter

from repro.study import (
    BUGS,
    DESIGNS,
    TABLE1_ORDER,
    build_table1,
    class_counts,
    designs_with,
    format_table1,
    subclass_counts,
)
from repro.testbed import BUG_IDS, SPECS
from repro.testbed.metadata import BugClass, BugSubclass, Symptom


class TestTable1Counts:
    """Table 1's per-subclass bug counts."""

    EXPECTED = {
        BugSubclass.BUFFER_OVERFLOW: 5,
        BugSubclass.BIT_TRUNCATION: 12,
        BugSubclass.MISINDEXING: 5,
        BugSubclass.ENDIANNESS_MISMATCH: 1,
        BugSubclass.FAILURE_TO_UPDATE: 5,
        BugSubclass.DEADLOCK: 3,
        BugSubclass.PRODUCER_CONSUMER_MISMATCH: 3,
        BugSubclass.SIGNAL_ASYNCHRONY: 10,
        BugSubclass.USE_WITHOUT_VALID: 1,
        BugSubclass.PROTOCOL_VIOLATION: 3,
        BugSubclass.API_MISUSE: 3,
        BugSubclass.INCOMPLETE_IMPLEMENTATION: 7,
        BugSubclass.ERRONEOUS_EXPRESSION: 10,
    }

    def test_sixty_eight_bugs(self):
        assert len(BUGS) == 68

    def test_per_subclass_counts(self):
        assert dict(subclass_counts()) == self.EXPECTED

    def test_class_totals(self):
        counts = class_counts()
        assert counts[BugClass.DATA_MIS_ACCESS] == 28
        assert counts[BugClass.COMMUNICATION] == 17
        assert counts[BugClass.SEMANTIC] == 23

    def test_thirteen_subclasses_in_order(self):
        assert len(TABLE1_ORDER) == 13
        rows = build_table1()
        assert [r.subclass for r in rows] == TABLE1_ORDER

    def test_three_classes(self):
        rows = build_table1()
        assert {r.bug_class for r in rows} == {
            BugClass.DATA_MIS_ACCESS,
            BugClass.COMMUNICATION,
            BugClass.SEMANTIC,
        }


class TestTable1Symptoms:
    def test_buffer_overflow_is_loss(self):
        row = [r for r in build_table1() if r.subclass is BugSubclass.BUFFER_OVERFLOW][0]
        assert row.symptoms == {Symptom.LOSS}

    def test_deadlock_is_stuck(self):
        row = [r for r in build_table1() if r.subclass is BugSubclass.DEADLOCK][0]
        assert row.symptoms == {Symptom.STUCK}

    def test_bit_truncation_incorrect_and_external(self):
        row = [r for r in build_table1() if r.subclass is BugSubclass.BIT_TRUNCATION][0]
        assert row.symptoms == {Symptom.INCORRECT, Symptom.EXTERNAL}

    def test_checkmark_rendering(self):
        row = [r for r in build_table1() if r.subclass is BugSubclass.DEADLOCK][0]
        assert row.checkmarks() == ["x", "", "", ""]

    def test_formatted_table_lists_all_rows(self):
        text = format_table1()
        for subclass in TABLE1_ORDER:
            assert subclass.value in text
        assert "Total: 68 bugs" in text


class TestStudyStructure:
    def test_nineteen_designs(self):
        assert len(DESIGNS) == 19
        assert {b.design for b in BUGS} == set(DESIGNS)

    def test_bit_truncation_spans_seven_designs(self):
        """§3.2.2: 12 bit truncation bugs in 7 different FPGA designs."""
        assert len(designs_with(BugSubclass.BIT_TRUNCATION)) == 7

    def test_erroneous_expression_flow_split(self):
        """§3.4.4: 5 control-flow and 5 data-flow erroneous expressions."""
        flows = Counter(
            b.flow for b in BUGS
            if b.subclass is BugSubclass.ERRONEOUS_EXPRESSION
        )
        assert flows == {"control": 5, "data": 5}

    def test_unique_bug_ids(self):
        assert len({b.bug_id for b in BUGS}) == 68

    def test_every_bug_has_symptoms_and_description(self):
        for bug in BUGS:
            assert bug.symptoms
            assert len(bug.description) > 10
            assert bug.collection


class TestTestbedLinkage:
    def test_all_testbed_bugs_in_study(self):
        linked = {b.testbed_id for b in BUGS if b.testbed_id}
        assert linked == set(BUG_IDS)

    def test_linked_subclasses_agree(self):
        for bug in BUGS:
            if bug.testbed_id:
                assert bug.subclass is SPECS[bug.testbed_id].subclass

    def test_linked_each_testbed_bug_once(self):
        linked = [b.testbed_id for b in BUGS if b.testbed_id]
        assert len(linked) == len(set(linked)) == 20


class TestLookupHelpers:
    def test_bug_by_id(self):
        from repro.study import bug_by_id

        bug = bug_by_id("B01")
        assert bug.design == "Reed-Solomon Decoder"
        import pytest
        with pytest.raises(KeyError):
            bug_by_id("B99")

    def test_bugs_in_design(self):
        from repro.study import bugs_in_design

        optimus = bugs_in_design("Optimus")
        assert {b.testbed_id for b in optimus} == {"D3", "C2"}
        assert bugs_in_design("No Such Design") == []

    def test_testbed_link(self):
        from repro.study import testbed_link

        bug = testbed_link("D11")
        assert bug.subclass is BugSubclass.FAILURE_TO_UPDATE
        import pytest
        with pytest.raises(KeyError):
            testbed_link("Z1")
