"""Tests for the repro.fuzz subsystem: generator, mutator, oracles,
reducer, campaign runner, and the `python -m repro fuzz` CLI."""

import glob
import os
import signal
import time

import pytest

from repro.fuzz import (
    CampaignConfig,
    ORACLES,
    crash_signature,
    ddmin,
    differential_oracle,
    generate_design,
    metamorphic_oracle,
    mutate_source,
    mutation_names,
    reduce_source,
    roundtrip_oracle,
    run_campaign,
)
from repro.fuzz.oracles import OracleOutcome
from repro.fuzz.runner import case_spec, oracle_signature, run_case
from repro.hdl import ast, ast_diff, ast_equal, elaborate, parse
from repro.hdl.codegen import generate_source
from repro.sim import Simulator
from repro.sim.values import Evaluator

DESIGN_DIR = os.path.join(
    os.path.dirname(__file__), "..", "src", "repro", "testbed", "designs"
)
DESIGN_FILES = sorted(glob.glob(os.path.join(DESIGN_DIR, "*.v")))


# ---------------------------------------------------------------------------
# AST equality / diff
# ---------------------------------------------------------------------------


class TestAstEquality:
    def test_equal_ignores_linenos(self):
        a = parse("module m (input wire c);\nendmodule")
        b = parse("\n\nmodule m (input wire c);\nendmodule")
        assert ast_equal(a, b)
        assert ast_diff(a, b) is None

    def test_diff_names_the_divergent_path(self):
        a = parse("module m (input wire c); assign x = a + b; endmodule")
        b = parse("module m (input wire c); assign x = a - b; endmodule")
        assert not ast_equal(a, b)
        diff = ast_diff(a, b)
        assert "op" in diff and "'+'" in diff and "'-'" in diff

    def test_diff_reports_length_mismatch(self):
        a = parse("module m (); wire x; endmodule")
        b = parse("module m (); wire x; wire y; endmodule")
        assert "length" in ast_diff(a, b)


# ---------------------------------------------------------------------------
# Generator
# ---------------------------------------------------------------------------


class TestGenerator:
    @pytest.mark.parametrize("seed", range(0, 40, 7))
    def test_generated_designs_are_valid(self, seed):
        design = generate_design(seed)
        elaborated = elaborate(parse(design.text), top=design.top)
        sim = Simulator(elaborated)
        sim.set("rst", 1)
        sim.step()
        sim.set("rst", 0)
        for _ in range(8):
            sim.step()
        assert sim.cycle == 9

    def test_deterministic(self):
        assert generate_design(7).text == generate_design(7).text

    def test_distinct_seeds_distinct_designs(self):
        assert generate_design(1).text != generate_design(2).text


# ---------------------------------------------------------------------------
# Mutator
# ---------------------------------------------------------------------------


class TestMutator:
    def test_families_are_nonempty(self):
        assert len(mutation_names(preserving=True)) >= 4
        assert len(mutation_names(preserving=False)) >= 6

    @pytest.mark.parametrize("seed", range(6))
    def test_mutant_closure(self, seed):
        """Mutants must remain parseable (valid fuzzer inputs)."""
        base = generate_design(seed).text
        for preserving in (True, False):
            result = mutate_source(base, seed, preserving=preserving)
            assert result is not None
            assert result.preserving is preserving
            parse(result.text)

    def test_preserving_mutant_keeps_behavior(self):
        design = generate_design(3)
        result = mutate_source(design.text, 11, preserving=True)
        outcome = differential_oracle(result.text, top=design.top, seed=3)
        assert outcome.status == "pass"

    def test_mutation_changes_source(self):
        base = generate_design(5).text
        result = mutate_source(base, 2, preserving=False)
        assert result.text != base


_SITED = """
module sited (
    input wire clk,
    input wire rst,
    input wire en,
    output reg [3:0] q,
    output reg done
);
    always @(posedge clk) begin
        if (rst) begin
            q <= 0;
            done <= 0;
        end else if (en) begin
            q <= q + 1;
            done <= q == 9;
        end
    end
endmodule
"""


class TestMutatorSiteTargeting:
    def test_signal_site_restricts_to_its_cone(self):
        for seed in range(8):
            result = mutate_source(_SITED, seed, site="done")
            assert result is not None
            # The mutated line must involve `done`, not the q-only ones.
            assert "done" in result.description or "done" in result.text

    def test_line_site_accepts_file_colon_line(self):
        # Line 14 is `q <= q + 1;` in _SITED (1-based, leading newline).
        for spec in (14, "14", "sited.v:14"):
            result = mutate_source(_SITED, 0, site=spec)
            assert result is not None

    def test_unmatched_site_returns_none(self):
        assert mutate_source(_SITED, 0, site="no_such_signal") is None
        assert mutate_source(_SITED, 0, site=9999) is None

    def test_site_none_is_unchanged_behavior(self):
        with_site = mutate_source(_SITED, 4, site=None)
        without = mutate_source(_SITED, 4)
        assert with_site.text == without.text
        assert with_site.name == without.name

    def test_sited_mutants_stay_parseable(self):
        for seed in range(6):
            result = mutate_source(_SITED, seed, site="q")
            assert result is not None
            parse(result.text)


# ---------------------------------------------------------------------------
# Oracles
# ---------------------------------------------------------------------------


class TestRoundtripOracle:
    @pytest.mark.parametrize(
        "path", DESIGN_FILES, ids=[os.path.basename(p) for p in DESIGN_FILES]
    )
    def test_all_testbed_designs_roundtrip(self, path):
        with open(path) as handle:
            text = handle.read()
        outcome = roundtrip_oracle(text)
        assert outcome.status == "pass", outcome.detail

    def test_detects_codegen_divergence(self):
        # A number that codegen cannot faithfully re-emit would show up
        # as an AST diff; simulate one by comparing two distinct sources.
        assert roundtrip_oracle("module m (); wire x; endmodule").status == "pass"


class _OffByOneAdd(Evaluator):
    """Deliberately broken backend: every addition is off by one."""

    def _eval_binary(self, expr, state, ctx_width):
        value = super()._eval_binary(expr, state, ctx_width)
        if expr.op == "+":
            value ^= 1
        return value


class TestDifferentialOracle:
    GOOD = """
    module m (input wire clk, input wire rst, input wire [3:0] a,
              output reg [3:0] q);
        always @(posedge clk) begin
            if (rst) q <= 0;
            else q <= q + a;
        end
    endmodule
    """

    def test_known_good_passes(self):
        outcome = differential_oracle(self.GOOD, seed=1, cycles=16)
        assert outcome.status == "pass", outcome.detail

    def test_seeded_bad_backend_fails(self):
        outcome = differential_oracle(
            self.GOOD, seed=1, cycles=16, compiled_factory=_OffByOneAdd
        )
        assert outcome.status == "fail"
        assert "signal" in outcome.detail


class _PerturbingTool:
    """Fake instrumentation pass that breaks the design it instruments."""

    def __init__(self, text, top):
        design = elaborate(parse(text), top=top)
        self.module = design.top
        for item in self.module.items:
            for node in item.walk():
                if isinstance(node, ast.NonblockingAssign):
                    node.rhs = ast.BinaryOp(
                        op="+", left=node.rhs, right=ast.Number(value=1)
                    )


class TestMetamorphicOracle:
    def test_real_passes_do_not_perturb(self):
        design = generate_design(12)
        outcome = metamorphic_oracle(design.text, top=design.top, seed=12)
        assert outcome.status in ("pass", "inapplicable"), outcome.detail

    def test_seeded_bad_pass_fails(self):
        design = generate_design(12)
        tools = [
            ("bad", lambda: _PerturbingTool(design.text, design.top)),
        ]
        outcome = metamorphic_oracle(
            design.text, top=design.top, seed=12, tools=tools
        )
        assert outcome.status == "fail"
        assert "bad" in outcome.detail

    def test_no_applicable_tool_is_inapplicable(self):
        design = generate_design(12)
        outcome = metamorphic_oracle(
            design.text, top=design.top, seed=12, tools=[]
        )
        assert outcome.status == "inapplicable"


# ---------------------------------------------------------------------------
# Reducer
# ---------------------------------------------------------------------------


class TestReducer:
    def test_ddmin_is_minimal(self):
        # Failure needs both 3 and 7 present; ddmin must find exactly those.
        result = ddmin(list(range(10)), lambda items: 3 in items and 7 in items)
        assert result == [3, 7]

    def test_reduces_injected_bug_to_small_reproducer(self):
        # A design with an injected bug (q reaches the magic value 7)
        # padded with unrelated logic; the reducer must strip the padding.
        design = generate_design(21)
        bug = (
            "module buggy (input wire clk, input wire rst,\n"
            "              output reg [3:0] q);\n"
            "    always @(posedge clk) begin\n"
            "        if (rst) q <= 0;\n"
            "        else q <= 7;\n"
            "    end\n"
            "endmodule\n"
        )
        text = design.text + "\n" + bug

        def bug_manifests(candidate):
            try:
                sim = Simulator(elaborate(parse(candidate), top="buggy"))
                sim.set("rst", 1)
                sim.step()
                sim.set("rst", 0)
                sim.step()
                sim.step()
                return sim.get("q") == 7
            except Exception:
                return False

        assert bug_manifests(text)
        reduced = reduce_source(text, bug_manifests)
        lines = [l for l in reduced.splitlines() if l.strip()]
        assert len(lines) <= 15
        assert bug_manifests(reduced)

    def test_predicate_must_hold_on_input(self):
        with pytest.raises(ValueError):
            reduce_source("module m (); endmodule", lambda text: False)


# ---------------------------------------------------------------------------
# Signatures
# ---------------------------------------------------------------------------


class TestSignatures:
    def test_crash_signature_buckets_same_frames_together(self):
        def boom():
            raise RuntimeError("x")

        sigs = set()
        for _ in range(2):
            try:
                boom()
            except RuntimeError as exc:
                sigs.add(crash_signature(exc))
        assert len(sigs) == 1
        signature = sigs.pop()
        assert signature.startswith("RuntimeError@")
        assert "test_fuzz.py:boom" in signature

    def test_oracle_signature_normalizes_values(self):
        a = oracle_signature("differential", "cycle 3 signal q: 1 != 2")
        b = oracle_signature("differential", "cycle 9 signal q: 7 != 0")
        assert a == b


# ---------------------------------------------------------------------------
# Campaign runner
# ---------------------------------------------------------------------------


class TestCampaign:
    def test_case_specs_are_jobs_independent(self):
        specs = [case_spec(0, i) for i in range(20)]
        assert specs == [case_spec(0, i) for i in range(20)]
        kinds = {kind for _, kind, _ in specs}
        assert "generated" in kinds

    def test_smoke_campaign_50_cases(self, tmp_path):
        """Deterministic 50-case campaign: the stack must be clean."""
        config = CampaignConfig(
            cases=50,
            seed=0,
            jobs=1,
            cycles=16,
            output_dir=str(tmp_path),
        )
        report = run_campaign(config)
        counts = report.counts
        assert len(report.results) == 50
        assert counts["oracle_fail"] == 0, report.buckets
        assert counts["crash"] == 0, report.buckets
        assert counts["timeout"] == 0
        assert not report.buckets

    def test_injected_oracle_failure_is_bucketed_and_reduced(
        self, tmp_path, monkeypatch
    ):
        def always_fails(text, top=None, seed=0, cycles=0):
            return OracleOutcome(
                oracle="roundtrip", status="fail", detail="injected failure"
            )

        monkeypatch.setitem(ORACLES, "roundtrip", always_fails)
        config = CampaignConfig(
            cases=4,
            seed=1,
            jobs=1,
            oracles=("roundtrip",),
            output_dir=str(tmp_path),
            reduce_checks=50,
        )
        report = run_campaign(config)
        assert report.counts["oracle_fail"] == 4
        assert len(report.buckets) == 1
        (path,) = report.reproducers.values()
        assert os.path.exists(path)
        with open(path) as handle:
            content = handle.read()
        assert "injected failure" in content
        # The predicate holds on any text, so reduction collapses the body.
        body = [
            l for l in content.splitlines()
            if l.strip() and not l.startswith("//")
        ]
        assert len(body) <= 2

    def test_crash_is_caught_and_bucketed(self, tmp_path, monkeypatch):
        def explodes(text, top=None, seed=0, cycles=0):
            raise RuntimeError("synthetic stack bug")

        monkeypatch.setitem(ORACLES, "differential", explodes)
        config = CampaignConfig(
            cases=2,
            seed=2,
            jobs=1,
            oracles=("differential",),
            output_dir=str(tmp_path),
            reduce=False,
        )
        report = run_campaign(config)
        assert report.counts["crash"] == 2
        assert len(report.buckets) == 1
        signature = next(iter(report.buckets))
        assert signature.startswith("RuntimeError@")

    @pytest.mark.skipif(
        not hasattr(signal, "SIGALRM"), reason="needs SIGALRM"
    )
    def test_case_timeout(self, monkeypatch):
        def hangs(text, top=None, seed=0, cycles=0):
            time.sleep(5)

        monkeypatch.setitem(ORACLES, "metamorphic", hangs)
        result = run_case((3, 0, ("metamorphic",), 8, 0.2))
        assert result.status == "timeout"

    def test_time_budget_stops_early(self, tmp_path):
        config = CampaignConfig(
            cases=500,
            seed=0,
            jobs=1,
            cycles=8,
            time_budget=0.5,
            output_dir=str(tmp_path),
        )
        report = run_campaign(config)
        assert 0 < len(report.results) < 500


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestFuzzCli:
    def test_fuzz_command(self, tmp_path, capsys):
        from repro.cli import main

        report_path = str(tmp_path / "report.json")
        status = main(
            [
                "fuzz",
                "--seed", "0",
                "--cases", "5",
                "--cycles", "12",
                "--output-dir", str(tmp_path),
                "--report", report_path,
            ]
        )
        assert status == 0
        assert os.path.exists(report_path)
        out = capsys.readouterr().out
        assert "5 cases" in out
        import json

        with open(report_path) as handle:
            data = json.load(handle)
        assert data["schema"] == "repro.obs/v1"
        names = {m["name"] for m in data["metrics"]}
        assert "fuzz.cases" in names
