"""Tests for expression transforms and constant evaluation."""

import pytest

from repro.hdl import ast, parse_expression, parse_statement
from repro.hdl.transform import (
    NotConstantError,
    const_eval,
    fold_constants,
    map_expression,
    map_statement,
    rename_identifiers,
    substitute,
    try_const_eval,
)


class TestConstEval:
    @pytest.mark.parametrize(
        "text,value",
        [
            ("1 + 2 * 3", 7),
            ("(1 << 4) - 1", 15),
            ("10 / 3", 3),
            ("10 % 3", 1),
            ("1 && 0", 0),
            ("1 || 0", 1),
            ("5 > 3", 1),
            ("5 <= 3", 0),
            ("~0 & 15", -1 & 15),
            ("1 ? 10 : 20", 10),
            ("0 ? 10 : 20", 20),
            ("8'hFF ^ 8'h0F", 0xF0),
        ],
    )
    def test_constant_expressions(self, text, value):
        assert const_eval(parse_expression(text)) == value

    def test_environment_lookup(self):
        expr = parse_expression("W - 1")
        assert const_eval(expr, {"W": 8}) == 7

    def test_size_cast_masks(self):
        assert const_eval(parse_expression("4'(255)")) == 15

    def test_non_constant_raises(self):
        with pytest.raises(NotConstantError):
            const_eval(parse_expression("some_signal + 1"))

    def test_try_const_eval_returns_none(self):
        assert try_const_eval(parse_expression("x + 1")) is None
        assert try_const_eval(parse_expression("2 + 2")) == 4


class TestFoldConstants:
    def test_parameter_folded(self):
        expr = fold_constants(parse_expression("W - 1"), {"W": 8})
        assert isinstance(expr, ast.Number)
        assert expr.value == 7

    def test_partial_fold(self):
        expr = fold_constants(parse_expression("x + (W - 1)"), {"W": 8})
        assert isinstance(expr, ast.BinaryOp)
        assert isinstance(expr.right, ast.Number)

    def test_signals_untouched(self):
        expr = fold_constants(parse_expression("a + b"), {})
        assert expr == parse_expression("a + b")


class TestSubstituteAndRename:
    def test_substitute(self):
        expr = substitute(parse_expression("a + b"), {"a": 5})
        assert isinstance(expr.left, ast.Number)
        assert expr.left.value == 5

    def test_rename(self):
        expr = rename_identifiers(parse_expression("a + b"), {"a": "inst.a"})
        assert expr.left.name == "inst.a"
        assert expr.right.name == "b"

    def test_rename_inside_selects(self):
        expr = rename_identifiers(parse_expression("mem[idx]"), {"mem": "m", "idx": "i"})
        assert expr.var.name == "m"
        assert expr.index.name == "i"


class TestMapStatement:
    def test_expressions_rewritten_everywhere(self):
        stmt = parse_statement("if (en) begin q <= d; m[i] = x; end")
        renamed = map_statement(
            stmt, lambda e: rename_identifiers(e, {"en": "enable"})
        )
        assert renamed.cond.name == "enable"

    def test_statement_dropped(self):
        stmt = parse_statement('begin a <= 1; $display("x"); b <= 2; end')
        result = map_statement(
            stmt,
            lambda e: e,
            lambda s: None if isinstance(s, ast.Display) else s,
        )
        assert len(result.statements) == 2

    def test_statement_spliced(self):
        stmt = parse_statement("begin a <= 1; end")

        def duplicate(node):
            if isinstance(node, ast.NonblockingAssign):
                return [node, node]
            return node

        result = map_statement(stmt, lambda e: e, duplicate)
        assert len(result.statements) == 2

    def test_case_arms_rewritten(self):
        stmt = parse_statement("case (s) 0: q <= a; endcase")
        result = map_statement(
            stmt, lambda e: rename_identifiers(e, {"a": "aa", "s": "ss"})
        )
        assert result.subject.name == "ss"
        assert result.items[0].stmt.rhs.name == "aa"


class TestMapExpression:
    def test_identity(self):
        expr = parse_expression("{a, b[3:0]} + (c ? d : 4'(e))")
        assert map_expression(expr, lambda n: n) == expr

    def test_walk_finds_all_identifiers(self):
        expr = parse_expression("{a, b[c +: 2]} + (d ? e : f)")
        names = {n.name for n in expr.walk() if isinstance(n, ast.Identifier)}
        assert names == {"a", "b", "c", "d", "e", "f"}
