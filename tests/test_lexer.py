"""Tests for the Verilog-subset lexer."""

import pytest

from repro.hdl.lexer import LexerError, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)]


def texts(text):
    return [t.text for t in tokenize(text)]


class TestBasicTokens:
    def test_keywords_recognized(self):
        tokens = tokenize("module endmodule always begin end")
        assert all(t.kind == "keyword" for t in tokens)

    def test_identifier(self):
        (token,) = tokenize("my_signal")
        assert token.kind == "ident"
        assert token.text == "my_signal"

    def test_dotted_identifier_is_single_token(self):
        # Flattened hierarchy names stay whole.
        (token,) = tokenize("inst.sub.signal")
        assert token.kind == "ident"
        assert token.text == "inst.sub.signal"

    def test_system_name(self):
        (token,) = tokenize("$display")
        assert token.kind == "sysname"

    def test_identifier_with_dollar(self):
        (token,) = tokenize("sig$tap")
        assert token.kind == "ident"

    def test_operators_maximal_munch(self):
        assert texts("a <= b") == ["a", "<=", "b"]
        assert texts("a << 2") == ["a", "<<", "2"]
        assert texts("a <<< 2") == ["a", "<<<", "2"]

    def test_indexed_part_select_operators(self):
        assert "+:" in texts("a[b +: 4]")
        assert "-:" in texts("a[b -: 4]")

    def test_string_token(self):
        (token,) = tokenize('"hello %d"')
        assert token.kind == "string"
        assert token.text == "hello %d"


class TestNumbers:
    def test_plain_decimal(self):
        (token,) = tokenize("42")
        assert token.kind == "number"
        assert token.value == 42
        assert token.width is None

    def test_underscores_ignored(self):
        (token,) = tokenize("1_000_000")
        assert token.value == 1000000

    def test_sized_hex(self):
        (token,) = tokenize("8'hFF")
        assert token.value == 255
        assert token.width == 8

    def test_sized_binary(self):
        (token,) = tokenize("4'b1010")
        assert token.value == 10
        assert token.width == 4

    def test_sized_octal(self):
        (token,) = tokenize("6'o77")
        assert token.value == 63

    def test_sized_decimal(self):
        (token,) = tokenize("10'd512")
        assert token.value == 512
        assert token.width == 10

    def test_signed_marker(self):
        (token,) = tokenize("8'sh7F")
        assert token.signed
        assert token.value == 127

    def test_x_and_z_digits_read_as_zero(self):
        # Two-state simulation: unknown digits collapse to 0.
        (token,) = tokenize("4'b1x0z")
        assert token.value == 0b1000

    def test_unsized_based_literal(self):
        (token,) = tokenize("'h1F")
        assert token.value == 31
        assert token.width is None


class TestCommentsAndLines:
    def test_line_comment_skipped(self):
        assert texts("a // comment\n b") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert texts("a /* stuff \n more */ b") == ["a", "b"]

    def test_line_numbers_tracked(self):
        tokens = tokenize("a\nb\n\nc")
        assert [t.lineno for t in tokens] == [1, 2, 4]

    def test_line_numbers_across_block_comment(self):
        tokens = tokenize("/* one\ntwo */ x")
        assert tokens[0].lineno == 2

    def test_bad_character_raises(self):
        with pytest.raises(LexerError):
            tokenize("a ` b")

    def test_real_literal_rejected(self):
        with pytest.raises(LexerError):
            tokenize("3.14")
