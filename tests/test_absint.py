"""Tests for repro.flow.absint: domains, facts, L05xx rules, soundness."""

import json
import os

import pytest

from repro.flow import analyze_values, compute_facts
from repro.flow.domains import AbsValue, bit_mask
from repro.fuzz import generate_design
from repro.fuzz.oracles import absint_oracle, build_stimulus, simulate_trace
from repro.core.instrument import dominant_clock
from repro.hdl import elaborate, parse
from repro.testbed import BUG_IDS, load_design

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "flow")


def fixture_design(name, top=None):
    with open(os.path.join(FIXTURES, name + ".v")) as handle:
        text = handle.read()
    return elaborate(parse(text), top=top or name)


def analyze(text, top):
    design = elaborate(parse(text), top=top)
    return analyze_values(design.top, filename=top)


def codes_of(diagnostics):
    return [d.code for d in diagnostics]


# ---------------------------------------------------------------------------
# AbsValue domain algebra
# ---------------------------------------------------------------------------


class TestAbsValue:
    def test_const_pins_every_bit(self):
        v = AbsValue.const(0b1010, 4)
        assert v.is_const and v.const_value == 10
        assert v.ones == 0b1010 and v.zeros == 0b0101
        assert v.contains(10) and not v.contains(11)

    def test_reduction_tightens_both_ways(self):
        # hi=5 proves bit 3 zero; known one at bit 2 lifts lo to 4.
        v = AbsValue.make(4, 0, 5, ones=0b100)
        assert v.lo == 4 and v.hi == 5
        assert v.zeros & 0b1000

    def test_contradiction_falls_back_to_top(self):
        v = AbsValue.make(4, 3, 2)
        assert v.is_top

    def test_join_hulls_interval_and_intersects_bits(self):
        a = AbsValue.const(4, 4)
        b = AbsValue.const(6, 4)
        j = a.join(b)
        assert j.lo == 4 and j.hi == 6
        assert j.ones == 0b100  # bit 2 set in both
        assert j.zeros & 0b0001  # bit 0 clear in both
        assert j.contains(4) and j.contains(6)

    def test_join_merges_taint(self):
        a = AbsValue.const(1, 2, xmask=0b01)
        b = AbsValue.const(2, 2)
        assert a.join(b).xmask == 0b01

    def test_widen_jumps_growing_bound(self):
        old = AbsValue.make(16, 0, 3)
        new = AbsValue.make(16, 0, 4)
        w = old.widen(new)
        assert w.hi == bit_mask(16)
        assert w.lo == 0
        # A stable bound survives widening.
        stable = old.widen(AbsValue.make(16, 1, 3))
        assert stable.hi == 3

    def test_resize_grow_adds_known_zeros(self):
        v = AbsValue.top(4).resized(8)
        assert v.hi == 15 and v.zeros == 0xF0

    def test_resize_shrink_wraps_to_top(self):
        v = AbsValue.make(8, 0, 200).resized(4)
        assert v.lo == 0 and v.hi == 15

    def test_truth_three_valued(self):
        assert AbsValue.const(0, 4).truth() is False
        assert AbsValue.make(4, 1, 5).truth() is True
        assert AbsValue.top(4).truth() is None

    def test_shifted_left_overshift_is_zero(self):
        v = AbsValue.top(8).shifted_left(8, 8)
        assert v.is_const and v.const_value == 0

    def test_describe_renders_bits(self):
        assert AbsValue.const(3, 4).describe() == "constant 3"
        assert "[" in AbsValue.top(4).describe()


# ---------------------------------------------------------------------------
# Fact computation
# ---------------------------------------------------------------------------


class TestComputeFacts:
    def test_constant_register_proven(self):
        design = fixture_design("constant_tap")
        table = compute_facts(design.top)
        assert table.converged
        assert table.get("dbg_tag").is_const
        assert table.constants() == {"dbg_tag": 0}
        # The payload register is not constant.
        assert not table.get("stage").is_const

    def test_inputs_are_top(self):
        design = fixture_design("constant_tap")
        table = compute_facts(design.top)
        fact = table.get("in_data")
        assert fact.lo == 0 and fact.hi == 255

    def test_widening_converges_divergent_counter(self):
        design = fixture_design("divergent_counter")
        table = compute_facts(design.top)
        assert table.converged
        # Widening must converge in a handful of passes, far below the
        # cap the naive one-step-per-iteration chain would trip.
        assert table.iterations < 64
        count = table.get("count")
        assert count.lo == 0 and count.hi == 65535

    def test_iteration_cap_marks_unconverged(self):
        design = fixture_design("divergent_counter")
        table = compute_facts(design.top, max_iterations=2)
        assert not table.converged
        # Unconverged tables yield no diagnostics (facts are unusable).
        from repro.flow.absint import check_values

        assert check_values(design.top, table) == []

    def test_render_is_byte_deterministic(self):
        design = fixture_design("divergent_counter")
        first = compute_facts(design.top).render()
        second = compute_facts(design.top).render()
        assert first == second
        payload = json.loads(first)
        assert payload["schema"] == "repro.flow.absint/v1"
        assert payload["converged"] is True
        assert "count" in payload["signals"]

    def test_ip_summary_bounds_fifo_usedw(self):
        text = (
            "module m (input wire clk, input wire push, input wire pop,\n"
            "          input wire [7:0] d, output wire [7:0] q);\n"
            "  wire [3:0] usedw;\n"
            "  wire full, empty;\n"
            "  scfifo #(.LPM_WIDTH(8), .LPM_NUMWORDS(8)) f (\n"
            "    .clock(clk), .data(d), .wrreq(push), .rdreq(pop),\n"
            "    .q(q), .usedw(usedw), .full(full), .empty(empty));\n"
            "endmodule"
        )
        design = elaborate(parse(text), top="m")
        table = compute_facts(design.top)
        usedw = table.get("usedw")
        assert usedw.lo == 0 and usedw.hi == 8

    def test_unknown_instance_tops_connections(self):
        # Analyzed pre-elaboration (elaborate would reject the unknown
        # module): every signal touching the mystery instance is TOP.
        text = (
            "module m (input wire clk, output wire [7:0] q);\n"
            "  reg [7:0] held;\n"
            "  always @(posedge clk) held <= 5;\n"
            "  mystery u (.a(held), .b(q));\n"
            "endmodule"
        )
        module = parse(text).find_module("m")
        table = compute_facts(module)
        assert table.get("held").is_top
        assert table.get("q").is_top


# ---------------------------------------------------------------------------
# L05xx checkers
# ---------------------------------------------------------------------------


class TestValueCheckers:
    def test_l0501_condition_always_false(self):
        _, diags = analyze(
            "module m (input wire clk, output reg q);\n"
            "  reg [3:0] zero;\n"
            "  always @(posedge clk) begin\n"
            "    zero <= 0;\n"
            "    if (zero[1]) q <= 1; else q <= 0;\n"
            "  end\nendmodule",
            "m",
        )
        assert "L0501" in codes_of(diags)

    def test_l0502_unreachable_case_arm(self):
        _, diags = analyze(
            "module m (input wire clk, output reg q);\n"
            "  reg [1:0] st;\n"
            "  always @(posedge clk) begin\n"
            "    st <= 0;\n"
            "    case (st)\n"
            "      0: q <= 0;\n"
            "      3: q <= 1;\n"
            "    endcase\n"
            "  end\nendmodule",
            "m",
        )
        assert "L0502" in codes_of(diags)

    def test_l0503_width_impossible_comparison(self):
        design = fixture_design("divergent_counter")
        _, diags = analyze_values(design.top, filename="divergent_counter.v")
        codes = codes_of(diags)
        assert "L0503" in codes
        # The dead branch is explained by the L0503, not double-flagged.
        assert "L0501" not in codes
        message = next(d for d in diags if d.code == "L0503").message
        assert "65536" in message and "16-bit" in message

    def test_l0504_unreset_register_reaches_output(self):
        _, diags = analyze(
            "module m (input wire clk, input wire rst,\n"
            "          input wire [7:0] d, output reg [7:0] q);\n"
            "  reg [7:0] held;\n"
            "  reg vld;\n"
            "  always @(posedge clk) begin\n"
            "    if (rst) vld <= 0;\n"
            "    else begin\n"
            "      if (vld) held <= d;\n"
            "      q <= held;\n"
            "    end\n"
            "  end\nendmodule",
            "m",
        )
        l0504 = [d for d in diags if d.code == "L0504"]
        assert l0504 and "'held'" in l0504[0].message

    def test_l0504_silent_when_all_reset(self):
        _, diags = analyze(
            "module m (input wire clk, input wire rst,\n"
            "          input wire [7:0] d, output reg [7:0] q);\n"
            "  always @(posedge clk) begin\n"
            "    if (rst) q <= 0; else q <= d;\n"
            "  end\nendmodule",
            "m",
        )
        assert "L0504" not in codes_of(diags)

    def test_l0505_index_out_of_bounds(self):
        _, diags = analyze(
            "module m (input wire clk, output reg [7:0] q);\n"
            "  reg [7:0] mem [0:3];\n"
            "  wire [3:0] idx;\n"
            "  assign idx = 12;\n"
            "  always @(posedge clk) q <= mem[idx];\n"
            "endmodule",
            "m",
        )
        assert "L0505" in codes_of(diags)

    def test_l0505_silent_for_register_with_reset_zero(self):
        # A sequential index register always joins its initial 0, so a
        # register that *can* be 12 but starts in range stays silent.
        _, diags = analyze(
            "module m (input wire clk, output reg [7:0] q);\n"
            "  reg [7:0] mem [0:3];\n"
            "  reg [3:0] idx;\n"
            "  always @(posedge clk) begin\n"
            "    idx <= 4'd12;\n"
            "    q <= mem[idx];\n"
            "  end\nendmodule",
            "m",
        )
        assert "L0505" not in codes_of(diags)

    def test_l0506_possibly_zero_divisor(self):
        _, diags = analyze(
            "module m (input wire [7:0] a, input wire [7:0] b,\n"
            "          output wire [7:0] q);\n"
            "  assign q = a / b;\n"
            "endmodule",
            "m",
        )
        assert "L0506" in codes_of(diags)

    def test_l0506_silent_when_divisor_nonzero(self):
        _, diags = analyze(
            "module m (input wire [7:0] a, output wire [7:0] q);\n"
            "  assign q = a / 3;\n"
            "endmodule",
            "m",
        )
        assert "L0506" not in codes_of(diags)

    def test_l0507_redundant_mask(self):
        _, diags = analyze(
            "module m (input wire clk, output reg [7:0] q);\n"
            "  reg [7:0] low;\n"
            "  always @(posedge clk) begin\n"
            "    low <= 7;\n"
            "    q <= low & 8'hF0;\n"
            "  end\nendmodule",
            "m",
        )
        assert "L0507" in codes_of(diags)

    def test_all_findings_are_warnings(self):
        from repro.diag.model import Severity

        design = fixture_design("divergent_counter")
        _, diags = analyze_values(design.top)
        assert diags
        assert all(d.severity is Severity.WARNING for d in diags)

    def test_codes_registered(self):
        from repro.diag import is_registered

        for code in ("L0501", "L0502", "L0503", "L0504", "L0505",
                     "L0506", "L0507"):
            assert is_registered(code), code


# ---------------------------------------------------------------------------
# Soundness against the simulator (the absint oracle's core claim)
# ---------------------------------------------------------------------------


class TestSoundness:
    def _assert_sound(self, design, seed=0, cycles=48):
        module = design.top
        table = compute_facts(module)
        assert table.converged
        clock = dominant_clock(module)
        stimulus = build_stimulus(module, seed, cycles, clock)
        trace, _sim = simulate_trace(design, stimulus, clock)
        for cycle, snapshot in enumerate(trace):
            for name, value in snapshot.items():
                fact = table.get(name)
                if fact is None:
                    continue
                values = value if isinstance(value, list) else [value]
                for element in values:
                    assert fact.contains(element), (
                        "%s=%d escapes %s at cycle %d"
                        % (name, element, fact.describe(), cycle)
                    )

    @pytest.mark.parametrize("bug_id", sorted(BUG_IDS))
    def test_testbed_designs_sound(self, bug_id):
        self._assert_sound(load_design(bug_id))
        self._assert_sound(load_design(bug_id, fixed=True))

    @pytest.mark.parametrize("name", ["constant_tap", "divergent_counter",
                                      "routed_pipeline"])
    def test_fixtures_sound(self, name):
        self._assert_sound(fixture_design(name))


# ---------------------------------------------------------------------------
# The absint fuzz oracle
# ---------------------------------------------------------------------------


class TestAbsintOracle:
    def test_registered(self):
        from repro.fuzz.oracles import ORACLE_NAMES, ORACLES

        assert "absint" in ORACLE_NAMES and "absint" in ORACLES

    def test_passes_on_generated_designs(self):
        for seed in range(8):
            g = generate_design(seed)
            outcome = absint_oracle(g.text, top=g.top, seed=seed, cycles=24)
            assert outcome.status == "pass", (seed, outcome.detail)

    def test_inapplicable_on_garbage(self):
        outcome = absint_oracle("utter ( garbage")
        assert outcome.status == "inapplicable"

    def test_cap_hit_is_failure(self):
        text = open(
            os.path.join(FIXTURES, "divergent_counter.v")
        ).read()
        outcome = absint_oracle(
            text, top="divergent_counter", max_iterations=2
        )
        assert outcome.status == "fail"
        assert "iteration cap" in outcome.detail

    def test_detects_planted_unsoundness(self, monkeypatch):
        # Force deliberately-wrong facts (every non-constant scalar
        # claimed constant 0) and confirm the oracle sees the escape.
        import repro.flow as flow_pkg

        real = flow_pkg.compute_facts

        def lying(module, ip_models=None, max_iterations=None):
            table = real(module, ip_models=ip_models,
                         max_iterations=max_iterations)
            for name, fact in list(table.facts.items()):
                if not fact.is_const and not table.depths.get(name):
                    table.facts[name] = AbsValue.const(0, fact.width)
            return table

        monkeypatch.setattr(flow_pkg, "compute_facts", lying)
        g = generate_design(3)
        outcome = absint_oracle(g.text, top=g.top, seed=3, cycles=24)
        assert outcome.status == "fail"
        assert "soundness violation" in outcome.detail


# ---------------------------------------------------------------------------
# Testbed snapshot: the L05xx family on the paper's 20 bugs
# ---------------------------------------------------------------------------


class TestTestbedSnapshot:
    def _l05_codes(self, bug_id, fixed=False):
        design = load_design(bug_id, fixed=fixed)
        _, diags = analyze_values(design.top, filename=bug_id)
        return sorted({d.code for d in diags})

    def test_c2_flagged_by_value_rules(self):
        # C2's merge FSM is provably stuck in MG_RUN: the MG_FLUSH arm
        # is dead code — a value-level finding structure checks missed.
        codes = self._l05_codes("C2")
        assert "L0502" in codes and "L0503" in codes

    def test_every_design_converges(self):
        for bug_id in sorted(BUG_IDS):
            for fixed in (False, True):
                design = load_design(bug_id, fixed=fixed)
                table, _ = analyze_values(design.top, filename=bug_id)
                assert table.converged, (bug_id, fixed)

    def test_no_error_severity_findings_on_fixed_designs(self):
        from repro.diag.model import Severity

        for bug_id in sorted(BUG_IDS):
            design = load_design(bug_id, fixed=True)
            _, diags = analyze_values(design.top, filename=bug_id)
            assert all(
                d.severity is not Severity.ERROR for d in diags
            ), bug_id


# ---------------------------------------------------------------------------
# Integration: facts surface through analyze_flow and repro check
# ---------------------------------------------------------------------------


class TestIntegration:
    def test_analyze_flow_carries_facts(self):
        from repro.flow import analyze_flow

        design = fixture_design("divergent_counter")
        report = analyze_flow(design, filename="divergent_counter.v")
        assert report.facts is not None
        assert report.facts.get("count") is not None
        assert "L0503" in [d.code for d in report.diagnostics]

    def test_check_select_l05(self):
        from repro.diag.check import check_text

        text = open(
            os.path.join(FIXTURES, "divergent_counter.v")
        ).read()
        result = check_text(text, run_tools=False, select=("L05",))
        codes = {d.code for d in result.sink.diagnostics}
        assert codes and all(c.startswith("L05") for c in codes)

    def test_losscheck_prunes_constant_register(self):
        from repro.core import LossCheck

        design = fixture_design("constant_tap")
        lc = LossCheck(design, "in_data", "out_q", prune=True)
        assert "dbg_tag" in lc.pruned_out
        assert "stage" in lc.monitored

    def test_repair_sites_accept_l05(self):
        from repro.repair.sites import RANK_CHECK, _check_sites

        # C2's dead MG_FLUSH arm yields L0502/L0503 findings; they must
        # surface as rank-1 repair sites naming the quoted signal.
        sites = _check_sites("C2")
        l05 = [s for s in sites if s.origin.startswith("check:L05")]
        assert l05
        assert all(s.rank == RANK_CHECK for s in l05)
        assert any(s.signal == "mg_state" for s in l05)
