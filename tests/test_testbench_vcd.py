"""Tests for the Testbench helper and the VCD waveform writer."""

import pytest

from repro.hdl import elaborate, parse
from repro.sim import Simulator, Testbench
from repro.wave.vcd import dump_vcd, write_vcd

STREAMER = """
module streamer (
    input wire clk,
    input wire rst,
    input wire in_valid,
    input wire [7:0] in_data,
    output reg out_valid,
    output reg [7:0] out_data
);
    always @(posedge clk) begin
        if (rst) out_valid <= 0;
        else begin
            out_valid <= in_valid;
            out_data <= in_data + 1;
        end
    end
endmodule
"""


def streamer():
    return elaborate(parse(STREAMER), top="streamer")


class TestTestbench:
    def test_reset_pulse(self):
        tb = Testbench(streamer())
        tb["in_valid"] = 1
        tb.reset()
        assert tb["out_valid"] == 0 or tb.cycle >= 3  # reset consumed cycles
        assert tb.cycle == 3  # two reset cycles + one release cycle

    def test_send_and_collect(self):
        tb = Testbench(streamer())
        collected = tb.watch_valid("out_valid", "out_data")
        tb.reset()
        tb.send("in_data", "in_valid", [1, 2, 3])
        tb.step(2)
        assert collected == [2, 3, 4]

    def test_send_with_gap(self):
        tb = Testbench(streamer())
        collected = tb.watch_valid("out_valid", "out_data")
        tb.reset()
        tb.send("in_data", "in_valid", [5, 6], gap=2)
        tb.step(2)
        assert collected == [6, 7]

    def test_run_until(self):
        tb = Testbench(streamer())
        tb.reset()
        tb["in_valid"] = 1
        tb["in_data"] = 9
        assert tb.run_until(lambda t: t["out_valid"] == 1, max_cycles=5)

    def test_run_until_timeout(self):
        tb = Testbench(streamer())
        tb.reset()
        assert not tb.run_until(lambda t: t["out_valid"] == 1, max_cycles=5)

    def test_missing_reset_signal_is_noop(self):
        design = elaborate(
            parse(
                "module nr (input wire clk, output reg q);"
                " always @(posedge clk) q <= ~q; endmodule"
            )
        )
        tb = Testbench(design, reset="rst")
        tb.reset()
        assert tb.cycle == 0

    def test_display_events_passthrough(self):
        design = elaborate(
            parse(
                'module d (input wire clk);'
                ' always @(posedge clk) $display("tick"); endmodule'
            )
        )
        tb = Testbench(design, reset=None)
        tb.step(2)
        assert len(tb.display_events) == 2


class TestVCD:
    def test_header_and_vars(self):
        text = dump_vcd({"a": [0, 1], "b": [3, 3]}, {"a": 1, "b": 4})
        assert "$timescale" in text
        assert "$var wire 1" in text
        assert "$var wire 4" in text
        assert "$enddefinitions" in text

    def test_only_changes_emitted(self):
        text = dump_vcd({"a": [0, 0, 1, 1, 0]}, {"a": 1})
        # a changes at cycles 0 (initial), 2, and 4.
        assert text.count("\n0") + text.count("\n1") >= 3
        assert "#2" in text and "#4" in text
        assert "#3" not in text

    def test_multibit_binary_format(self):
        text = dump_vcd({"bus": [5]}, {"bus": 4})
        assert "b101 " in text

    def test_write_from_simulator(self, tmp_path):
        sim = Simulator(streamer(), trace="all")
        sim["in_valid"] = 1
        sim["in_data"] = 7
        sim.step(3)
        path = write_vcd(sim, str(tmp_path / "trace.vcd"), comment="unit test")
        content = open(path).read()
        assert "out_data" in content
        assert "$comment" in content

    def test_write_without_trace_rejected(self, tmp_path):
        sim = Simulator(streamer())
        with pytest.raises(ValueError):
            write_vcd(sim, str(tmp_path / "x.vcd"))

    def test_many_signals_get_unique_ids(self):
        waveform = {"sig%03d" % i: [i] for i in range(200)}
        widths = {name: 16 for name in waveform}
        text = dump_vcd(waveform, widths)
        ids = [
            line.split()[3]
            for line in text.splitlines()
            if line.startswith("$var")
        ]
        assert len(set(ids)) == 200
