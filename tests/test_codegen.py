"""Tests for Verilog code generation (round-trips through the parser)."""

from repro.hdl import (
    ast,
    generate_expression,
    generate_module,
    generate_statement,
    parse_expression,
    parse_module,
    parse_statement,
)


def roundtrip_expression(text):
    return generate_expression(parse_expression(text))


class TestExpressionGeneration:
    def test_number(self):
        assert generate_expression(ast.Number(value=255, width=8)) == "8'hff"

    def test_unsized_number(self):
        assert generate_expression(ast.Number(value=7)) == "7"

    def test_binary_parenthesized(self):
        text = roundtrip_expression("a + b * c")
        assert parse_expression(text) == parse_expression("a + b * c")

    def test_precedence_preserved_by_parens(self):
        # (a + b) * c must not regenerate as a + b * c.
        expr = ast.BinaryOp(
            op="*",
            left=ast.BinaryOp(
                op="+", left=ast.Identifier(name="a"), right=ast.Identifier(name="b")
            ),
            right=ast.Identifier(name="c"),
        )
        again = parse_expression(generate_expression(expr))
        assert again == expr

    def test_concat(self):
        assert roundtrip_expression("{a, b}") == "{a, b}"

    def test_replication(self):
        assert roundtrip_expression("{4{a}}") == "{4{a}}"

    def test_size_cast(self):
        assert roundtrip_expression("42'(x >> 6)") == "42'((x >> 6))"

    def test_part_selects(self):
        assert roundtrip_expression("a[7:0]") == "a[7:0]"
        assert roundtrip_expression("a[i +: 4]") == "a[i +: 4]"

    def test_ternary(self):
        text = roundtrip_expression("s ? a : b")
        assert parse_expression(text) == parse_expression("s ? a : b")


class TestStatementGeneration:
    def test_nonblocking(self):
        lines = generate_statement(parse_statement("q <= d;"))
        assert lines == ["    q <= d;"]

    def test_if_else_roundtrip(self):
        stmt = parse_statement("if (c) begin a <= 1; end else begin a <= 0; end")
        text = "\n".join(generate_statement(stmt))
        assert parse_statement(text) == stmt

    def test_case_roundtrip(self):
        stmt = parse_statement(
            "case (s) 0: a <= 1; default: a <= 0; endcase"
        )
        text = "\n".join(generate_statement(stmt))
        assert parse_statement(text) == stmt

    def test_display_escapes_quotes(self):
        stmt = ast.Display(format='say "hi"', args=[])
        line = generate_statement(stmt)[0]
        assert '\\"hi\\"' in line

    def test_for_loop(self):
        stmt = parse_statement("for (i = 0; i < 4; i = i + 1) m[i] <= 0;")
        text = "\n".join(generate_statement(stmt))
        assert "for (i = 0;" in text


class TestModuleRoundtrip:
    SOURCES = [
        """
        module counter #(parameter W = 8) (
            input wire clk,
            input wire rst,
            output reg [W-1:0] count
        );
            always @(posedge clk) begin
                if (rst) count <= 0;
                else count <= count + 1;
            end
        endmodule
        """,
        """
        module with_fifo (input wire clk, input wire [7:0] d, output wire [7:0] q);
            wire e;
            wire f;
            scfifo #(.LPM_WIDTH(8), .LPM_NUMWORDS(4)) f0 (
                .clock(clk), .data(d), .wrreq(e), .rdreq(f), .q(q)
            );
        endmodule
        """,
        """
        module memory (input wire clk, input wire [3:0] a, output wire [7:0] q);
            reg [7:0] mem [0:15];
            assign q = mem[a];
        endmodule
        """,
    ]

    def test_module_roundtrips(self):
        for source in self.SOURCES:
            module = parse_module(source)
            regenerated = parse_module(generate_module(module))
            # Structural equivalence: same names, same item kinds.
            assert regenerated.name == module.name
            assert [p.name for p in regenerated.ports] == [
                p.name for p in module.ports
            ]
            assert len(regenerated.items) == len(module.items)

    def test_double_roundtrip_is_stable(self):
        module = parse_module(self.SOURCES[0])
        once = generate_module(parse_module(generate_module(module)))
        twice = generate_module(parse_module(once))
        assert once == twice


class TestTestbedDesignsRoundtrip:
    def test_all_testbed_designs_roundtrip(self):
        from repro.testbed import BUG_IDS, load_source

        for bug in BUG_IDS:
            source = load_source(bug)
            for module in source.modules:
                regenerated = parse_module(generate_module(module))
                assert regenerated.name == module.name
                assert len(regenerated.items) == len(module.items)


class TestDanglingElse:
    def test_nested_if_wrapped_to_preserve_else_binding(self):
        from repro.hdl import ast as A

        stmt = A.If(
            cond=A.Identifier(name="a"),
            then_stmt=A.If(
                cond=A.Identifier(name="b"),
                then_stmt=A.NonblockingAssign(
                    lhs=A.Identifier(name="x"), rhs=A.Number(value=1)
                ),
            ),
            else_stmt=A.NonblockingAssign(
                lhs=A.Identifier(name="x"), rhs=A.Number(value=2)
            ),
        )
        text = "\n".join(generate_statement(stmt))
        reparsed = parse_statement(text)
        # The else must still belong to the OUTER if.
        assert reparsed.else_stmt is not None
        inner = reparsed.then_stmt
        if isinstance(inner, ast.Block):
            (inner,) = inner.statements
        assert inner.else_stmt is None
