"""Tests for the shared instrumentation machinery."""

from repro.core.instrument import Instrumenter, dominant_clock, flat_name
from repro.hdl import ast, elaborate, parse


def design():
    return elaborate(
        parse(
            """
            module d (input wire clk, input wire [3:0] a, output reg [3:0] q);
                reg sc_flag_0;
                always @(posedge clk) q <= a;
            endmodule
            """
        ),
        top="d",
    )


class TestInstrumenter:
    def test_original_never_mutated(self):
        base = design()
        item_count = len(base.top.items)
        ins = Instrumenter(base, prefix="t_")
        ins.add_reg(ins.fresh("x"))
        assert len(base.top.items) == item_count
        assert len(ins.module.items) == item_count + 1

    def test_fresh_names_avoid_collisions(self):
        ins = Instrumenter(design(), prefix="sc_")
        name = ins.fresh("flag_0")
        assert name != "sc_flag_0"  # already declared in the design
        assert name.startswith("sc_flag_0")

    def test_fresh_names_unique_among_generated(self):
        ins = Instrumenter(design(), prefix="t_")
        names = {ins.fresh("x") for _ in range(5)}
        assert len(names) == 5

    def test_flat_name_replaces_dots(self):
        assert flat_name("inst.sub.sig") == "inst_sub_sig"

    def test_add_wire_creates_decl_and_assign(self):
        ins = Instrumenter(design(), prefix="t_")
        wire = ins.add_wire(ins.fresh("w"), ast.Number(value=1), width=4)
        decls = [i for i in ins.generated_items if isinstance(i, ast.Declaration)]
        assigns = [
            i for i in ins.generated_items
            if isinstance(i, ast.ContinuousAssign)
        ]
        assert decls[0].name == wire.name
        assert decls[0].bit_width == 4
        assert len(assigns) == 1

    def test_add_clocked_block_uses_dominant_clock(self):
        ins = Instrumenter(design(), prefix="t_")
        block = ins.add_clocked_block([ast.Finish()])
        assert block.sens[0].signal == "clk"

    def test_generated_line_count_counts_only_generated(self):
        ins = Instrumenter(design(), prefix="t_")
        assert ins.generated_line_count() == 0
        ins.add_reg(ins.fresh("r"))
        assert ins.generated_line_count() == 1

    def test_instrumented_verilog_reparses(self):
        from repro.hdl import parse_module

        ins = Instrumenter(design(), prefix="t_")
        reg = ins.add_reg(ins.fresh("r"), width=8)
        ins.add_clocked_block(
            [ast.NonblockingAssign(lhs=reg, rhs=ast.Number(value=5))]
        )
        module = parse_module(ins.instrumented_verilog())
        assert module.find_declaration(reg.name) is not None


class TestDominantClock:
    def test_picks_most_frequent(self):
        module = elaborate(
            parse(
                """
                module m (input wire clka, input wire clkb, output reg x,
                          output reg y, output reg z);
                    always @(posedge clka) x <= 1;
                    always @(posedge clkb) y <= 1;
                    always @(posedge clkb) z <= 1;
                endmodule
                """
            ),
            top="m",
        ).top
        assert dominant_clock(module) == "clkb"

    def test_default_when_no_clocked_blocks(self):
        module = elaborate(
            parse("module m (input wire a, output wire b); assign b = a; endmodule")
        ).top
        assert dominant_clock(module) == "clk"
