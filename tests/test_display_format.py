"""Edge-case tests for ``verilog_format`` and ``DisplayEvent``."""

from repro.sim.simulator import DisplayEvent, verilog_format


class TestBasicSpecifiers:
    def test_decimal(self):
        assert verilog_format("count=%d", [42]) == "count=42"

    def test_hex_lower_and_x_alias(self):
        assert verilog_format("%h", [255]) == "ff"
        assert verilog_format("%x", [255]) == "ff"
        assert verilog_format("%H", [255]) == "ff"

    def test_binary(self):
        assert verilog_format("%b", [5]) == "101"
        assert verilog_format("%b", [0]) == "0"

    def test_char_masks_to_byte(self):
        assert verilog_format("%c", [0x141]) == "A"

    def test_string(self):
        assert verilog_format("%s", ["ready"]) == "ready"

    def test_time_is_decimal(self):
        assert verilog_format("t=%t", [7]) == "t=7"

    def test_multiple_arguments_in_order(self):
        assert verilog_format("%d:%h:%b", [10, 10, 2]) == "10:a:10"


class TestWidthPadding:
    def test_width_padded_decimal_right_justifies(self):
        assert verilog_format("[%6d]", [42]) == "[    42]"

    def test_width_narrower_than_value_is_ignored(self):
        assert verilog_format("%2d", [12345]) == "12345"

    def test_negative_width_left_justifies(self):
        assert verilog_format("[%-6d]", [42]) == "[42    ]"

    def test_zero_padded_decimal(self):
        assert verilog_format("%08d", [42]) == "00000042"

    def test_width_padded_hex(self):
        assert verilog_format("%8h", [0xBEEF]) == "    beef"
        assert verilog_format("%08h", [0xBEEF]) == "0000beef"

    def test_width_padded_binary(self):
        assert verilog_format("%08b", [5]) == "00000101"
        assert verilog_format("%4b", [1]) == "   1"


class TestLiteralPercent:
    def test_literal_percent_consumes_no_argument(self):
        assert verilog_format("100%% of %d", [7]) == "100% of 7"

    def test_only_percent(self):
        assert verilog_format("%%", []) == "%"


class TestMissingArguments:
    def test_missing_argument_leaves_specifier_verbatim(self):
        assert verilog_format("a=%d b=%d", [1]) == "a=1 b=%d"

    def test_no_arguments_at_all(self):
        assert verilog_format("%d %h %b", []) == "%d %h %b"

    def test_extra_arguments_ignored(self):
        assert verilog_format("%d", [1, 2, 3]) == "1"


class TestNonSpecifierText:
    def test_plain_text_unchanged(self):
        assert verilog_format("hello world", []) == "hello world"

    def test_lone_percent_without_specifier_unchanged(self):
        # '% ' does not match any specifier and passes through.
        assert verilog_format("50% done", []) == "50% done"


class TestDisplayEvent:
    def test_str_pads_cycle_number(self):
        event = DisplayEvent(cycle=7, text="fired")
        assert str(event) == "[     7] fired"

    def test_defaults(self):
        event = DisplayEvent(cycle=0, text="")
        assert event.values == []
        assert event.lineno == 0
        assert event.label == ""
        assert event.format == ""

    def test_carries_raw_values_and_format(self):
        event = DisplayEvent(
            cycle=3,
            text="n=  5",
            values=[5],
            label="stat:n",
            format="n=%3d",
        )
        assert verilog_format(event.format, event.values) == event.text
