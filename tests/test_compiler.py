"""Tests for the expression compiler: bit-identical to the interpreter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl import elaborate, parse, parse_expression
from repro.sim import Simulator
from repro.sim.compiler import CompiledEvaluator
from repro.sim.values import Evaluator, mask
from repro.testbed import BUG_IDS, load_design
from repro.testbed.scenarios import SCENARIOS

from .test_values import make_env

EXPRESSIONS = [
    "a + b",
    "a - b",
    "a * b",
    "a / b",
    "a % b",
    "a & b | a ^ b",
    "~a",
    "-a",
    "!a",
    "&a",
    "|a",
    "^a",
    "~&a",
    "~|a",
    "~^a",
    "a == b",
    "a != b",
    "a < b",
    "a >= b",
    "a && b",
    "a || b",
    "a << 3",
    "a >> b",
    "a[3]",
    "a[7:4]",
    "a[b +: 4]",
    "a[b -: 4]",
    "{a, b}",
    "{3{a}}",
    "b ? a : b",
    "12'(a + b)",
    "42'(a) >> 6",
    "a - 1 > 0",
]


class TestCompilerAgainstInterpreter:
    @pytest.mark.parametrize("text", EXPRESSIONS)
    def test_known_expressions(self, text):
        symbols, interpreted = make_env({"a": 8, "b": 8})
        compiled = CompiledEvaluator(symbols)
        expr = parse_expression(text)
        for a, b in [(0, 0), (1, 2), (255, 1), (170, 85), (7, 0)]:
            state = {"a": a, "b": b}
            for ctx in (0, 8, 16):
                assert compiled.eval(expr, state, ctx) == interpreted.eval(
                    expr, state, ctx
                ), (text, a, b, ctx)

    @given(
        st.integers(min_value=0, max_value=(1 << 16) - 1),
        st.integers(min_value=0, max_value=(1 << 16) - 1),
    )
    @settings(max_examples=100)
    def test_random_operands(self, a, b):
        symbols, interpreted = make_env({"a": 16, "b": 16})
        compiled = CompiledEvaluator(symbols)
        for text in ("a + b", "a - b", "{a[7:0], b[15:8]}", "a < b", "~a ^ b"):
            expr = parse_expression(text)
            state = {"a": a, "b": b}
            assert compiled.eval(expr, state) == interpreted.eval(expr, state)

    def test_array_reads(self):
        symbols, interpreted = make_env({"i": 4}, arrays={"m": (8, 10)})
        compiled = CompiledEvaluator(symbols)
        expr = parse_expression("m[i]")
        state = {"m": list(range(10)), "i": 3}
        assert compiled.eval(expr, state) == 3
        state["i"] = 12  # out of range, non-power-of-two: reads 0
        assert compiled.eval(expr, state) == interpreted.eval(expr, state) == 0


class TestCompiledSimulation:
    def test_counter_matches(self, counter_design):
        interpreted = Simulator(counter_design)
        compiled = Simulator(counter_design, compile_expressions=True)
        for sim in (interpreted, compiled):
            sim["enable"] = 1
            sim.step(17)
        assert interpreted["count"] == compiled["count"] == 17

    @pytest.mark.parametrize("bug_id", BUG_IDS)
    def test_whole_testbed_scenarios_match(self, bug_id):
        """Every testbed scenario observes identical symptoms compiled."""
        interpreted = SCENARIOS[bug_id](Simulator(load_design(bug_id)))
        compiled = SCENARIOS[bug_id](
            Simulator(load_design(bug_id), compile_expressions=True)
        )
        assert interpreted.symptoms == compiled.symptoms
        assert interpreted.details == compiled.details

    def test_compiled_is_default_off(self, counter_design):
        sim = Simulator(counter_design)
        assert not isinstance(sim.evaluator, CompiledEvaluator)

    def test_display_values_match(self):
        design = elaborate(
            parse(
                'module d (input wire clk, output reg [7:0] n);'
                ' always @(posedge clk) begin n <= n + 3;'
                ' $display("n=%d", n); end endmodule'
            )
        )
        a = Simulator(design)
        b = Simulator(design, compile_expressions=True)
        a.step(5)
        b.step(5)
        assert [e.text for e in a.display_events] == [
            e.text for e in b.display_events
        ]
