"""Tests for the shared runtime-resilience utilities (repro.runtime)."""

import json

import pytest

from repro.runtime import (
    HAS_ALARM,
    JsonlJournal,
    TimeLimitExceeded,
    retry_with_backoff,
    time_limit,
)


class TestTimeLimit:
    def test_disabled_when_falsy(self):
        with time_limit(None):
            total = sum(range(1000))
        assert total == 499500
        with time_limit(0):
            pass

    @pytest.mark.skipif(not HAS_ALARM, reason="platform lacks SIGALRM")
    def test_interrupts_pure_python_loop(self):
        with pytest.raises(TimeLimitExceeded):
            with time_limit(0.05):
                while True:
                    pass

    @pytest.mark.skipif(not HAS_ALARM, reason="platform lacks SIGALRM")
    def test_fast_body_completes(self):
        with time_limit(5.0):
            value = 1 + 1
        assert value == 2

    @pytest.mark.skipif(not HAS_ALARM, reason="platform lacks SIGALRM")
    def test_nested_limits_restore_outer_budget(self):
        # The inner limit expires; the outer one must still be armed
        # afterwards and fire on the remaining loop.
        with pytest.raises(TimeLimitExceeded):
            with time_limit(10.0):
                with pytest.raises(TimeLimitExceeded):
                    with time_limit(0.05):
                        while True:
                            pass
                # Outer budget shrank but survives the inner limit; a
                # second inner limit still interrupts.
                with time_limit(0.05):
                    while True:
                        pass


class TestRetryWithBackoff:
    def test_first_try_success(self):
        result, attempts = retry_with_backoff(lambda: 42, sleep=lambda s: None)
        assert result == 42
        assert attempts == 1

    def test_retries_then_succeeds_with_exponential_delays(self):
        calls = {"n": 0}
        delays = []
        notified = []

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TimeLimitExceeded("slow")
            return "done"

        result, attempts = retry_with_backoff(
            flaky,
            retries=3,
            base_delay=0.5,
            factor=2.0,
            sleep=delays.append,
            on_retry=lambda attempt, exc: notified.append(attempt),
        )
        assert result == "done"
        assert attempts == 3
        assert delays == [0.5, 1.0]
        assert notified == [1, 2]

    def test_exhausted_retries_raise(self):
        calls = {"n": 0}

        def always_slow():
            calls["n"] += 1
            raise TimeLimitExceeded("slow")

        with pytest.raises(TimeLimitExceeded):
            retry_with_backoff(always_slow, retries=2, sleep=lambda s: None)
        assert calls["n"] == 3  # initial try + 2 retries

    def test_non_retryable_exception_propagates_immediately(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise ValueError("bug")

        with pytest.raises(ValueError):
            retry_with_backoff(broken, retries=5, sleep=lambda s: None)
        assert calls["n"] == 1


class TestJsonlJournal:
    def test_append_and_load_round_trip(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with JsonlJournal(path) as journal:
            journal.append({"case": "A#0", "status": "ok"})
            journal.append({"case": "A#1", "status": "timeout"})
        loaded = JsonlJournal(path).load()
        assert loaded == [
            {"case": "A#0", "status": "ok"},
            {"case": "A#1", "status": "timeout"},
        ]

    def test_load_missing_file_is_empty(self, tmp_path):
        assert JsonlJournal(str(tmp_path / "absent.jsonl")).load() == []

    def test_records_are_deterministic_lines(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with JsonlJournal(path) as journal:
            journal.append({"b": 2, "a": 1})
        line = open(path).read().strip()
        assert line == '{"a":1,"b":2}'
        assert json.loads(line) == {"a": 1, "b": 2}

    def test_torn_final_line_skipped(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with JsonlJournal(path) as journal:
            journal.append({"case": "A#0"})
            journal.append({"case": "A#1"})
        with open(path, "a") as handle:
            handle.write('{"case": "A#2", "sta')  # crash mid-append
        loaded = JsonlJournal(path).load()
        assert [record["case"] for record in loaded] == ["A#0", "A#1"]

    def test_append_after_reload_continues_file(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with JsonlJournal(path) as journal:
            journal.append({"case": "A#0"})
        with JsonlJournal(path) as journal:
            journal.append({"case": "A#1"})
        assert [r["case"] for r in JsonlJournal(path).load()] == [
            "A#0", "A#1",
        ]

    def test_truncated_final_line_counts_on_obs(self, tmp_path):
        from repro import obs

        path = str(tmp_path / "journal.jsonl")
        with JsonlJournal(path) as journal:
            journal.append({"case": "A#0"})
        with open(path, "a") as handle:
            handle.write('{"case": "A#1", "sta')
        obs.reset()
        with obs.observed():
            loaded = JsonlJournal(path).load()
            truncated = obs.counter("runtime.journal.truncated").value
        obs.reset()
        obs.enabled = False
        assert [record["case"] for record in loaded] == ["A#0"]
        assert truncated == 1

    def test_dedupe_first_write_wins_and_counts(self, tmp_path):
        from repro import obs

        path = str(tmp_path / "journal.jsonl")
        with JsonlJournal(path) as journal:
            journal.append({"event": "done", "id": "j1", "n": 1})
            journal.append({"event": "submit", "id": "j1"})
            journal.append({"event": "done", "id": "j1", "n": 2})
            journal.append({"event": "done", "id": "j2", "n": 3})

        def identity(record):
            if record.get("event") == "done":
                return ("done", record["id"])
            return None

        obs.reset()
        with obs.observed():
            loaded = JsonlJournal(path).load(dedupe=identity)
            duplicates = obs.counter("runtime.journal.duplicate").value
        obs.reset()
        obs.enabled = False
        assert duplicates == 1
        assert [record.get("n") for record in loaded] == [1, None, 3]

    def test_dedupe_none_keys_never_collapse(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with JsonlJournal(path) as journal:
            journal.append({"event": "case", "id": "j1"})
            journal.append({"event": "case", "id": "j1"})  # identical
        loaded = JsonlJournal(path).load(dedupe=lambda record: None)
        assert len(loaded) == 2

    def test_load_without_dedupe_keeps_duplicates(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with JsonlJournal(path) as journal:
            journal.append({"event": "done", "id": "j1"})
            journal.append({"event": "done", "id": "j1"})
        assert len(JsonlJournal(path).load()) == 2

    def test_corrupt_interior_line_skipped_not_fatal(self, tmp_path):
        # Records after a damaged interior line must survive the reload
        # (a resume that silently dropped the tail would re-run finished
        # work — or worse, report it lost).
        from repro import obs

        path = str(tmp_path / "journal.jsonl")
        with JsonlJournal(path) as journal:
            journal.append({"case": "A#0"})
        with open(path, "a") as handle:
            handle.write('###garbage###\n')
        with JsonlJournal(path) as journal:
            journal.append({"case": "A#2"})
        obs.reset()
        with obs.observed():
            loaded = JsonlJournal(path).load()
            corrupt = obs.counter("runtime.journal.corrupt").value
        obs.reset()
        obs.enabled = False
        assert [record["case"] for record in loaded] == ["A#0", "A#2"]
        assert corrupt == 1

    def test_two_processes_appending_one_journal(self, tmp_path):
        # O_APPEND single-write lines: two uncoordinated writers may
        # interleave records but never tear each other's lines.
        import subprocess
        import sys

        path = str(tmp_path / "journal.jsonl")
        script = (
            "import sys\n"
            "from repro.runtime import JsonlJournal\n"
            "journal = JsonlJournal(sys.argv[1])\n"
            "for index in range(50):\n"
            "    journal.append({'writer': sys.argv[2], 'index': index})\n"
            "journal.close()\n"
        )
        procs = [
            subprocess.Popen([sys.executable, "-c", script, path, name])
            for name in ("alpha", "beta")
        ]
        for proc in procs:
            assert proc.wait(timeout=60) == 0
        loaded = JsonlJournal(path).load()
        assert len(loaded) == 100
        for name in ("alpha", "beta"):
            indices = [r["index"] for r in loaded if r["writer"] == name]
            assert indices == list(range(50))  # per-writer order intact


class TestTimeLimitThreading:
    @pytest.mark.skipif(not HAS_ALARM, reason="platform lacks SIGALRM")
    def test_off_main_thread_raises_clear_error(self):
        import threading

        failures = []

        def worker():
            try:
                with time_limit(1.0):
                    pass
            except RuntimeError as exc:
                failures.append(str(exc))

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert len(failures) == 1
        assert "main thread" in failures[0]
        assert "DeadlineWatchdog" in failures[0]


class TestBackoffJitter:
    def test_jitter_scales_delays_with_injected_rng(self):
        calls = {"n": 0}
        delays = []

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TimeLimitExceeded("slow")
            return "done"

        result, attempts = retry_with_backoff(
            flaky,
            retries=3,
            base_delay=1.0,
            factor=2.0,
            jitter=0.5,
            sleep=delays.append,
            rng=lambda: 1.0,  # worst case: full jitter every wait
        )
        assert result == "done"
        assert delays == [1.5, 3.0]  # base * factor**n, scaled by 1.5

    def test_zero_jitter_is_exact_schedule(self):
        from repro.runtime import backoff_delay

        assert backoff_delay(1, base_delay=0.5, factor=2.0) == 0.5
        assert backoff_delay(3, base_delay=0.5, factor=2.0) == 2.0
        jittered = backoff_delay(
            2, base_delay=0.5, factor=2.0, jitter=0.2, rng=lambda: 0.5
        )
        assert jittered == pytest.approx(1.1)
