"""Tests for the shared runtime-resilience utilities (repro.runtime)."""

import json

import pytest

from repro.runtime import (
    HAS_ALARM,
    JsonlJournal,
    TimeLimitExceeded,
    retry_with_backoff,
    time_limit,
)


class TestTimeLimit:
    def test_disabled_when_falsy(self):
        with time_limit(None):
            total = sum(range(1000))
        assert total == 499500
        with time_limit(0):
            pass

    @pytest.mark.skipif(not HAS_ALARM, reason="platform lacks SIGALRM")
    def test_interrupts_pure_python_loop(self):
        with pytest.raises(TimeLimitExceeded):
            with time_limit(0.05):
                while True:
                    pass

    @pytest.mark.skipif(not HAS_ALARM, reason="platform lacks SIGALRM")
    def test_fast_body_completes(self):
        with time_limit(5.0):
            value = 1 + 1
        assert value == 2

    @pytest.mark.skipif(not HAS_ALARM, reason="platform lacks SIGALRM")
    def test_nested_limits_restore_outer_budget(self):
        # The inner limit expires; the outer one must still be armed
        # afterwards and fire on the remaining loop.
        with pytest.raises(TimeLimitExceeded):
            with time_limit(10.0):
                with pytest.raises(TimeLimitExceeded):
                    with time_limit(0.05):
                        while True:
                            pass
                # Outer budget shrank but survives the inner limit; a
                # second inner limit still interrupts.
                with time_limit(0.05):
                    while True:
                        pass


class TestRetryWithBackoff:
    def test_first_try_success(self):
        result, attempts = retry_with_backoff(lambda: 42, sleep=lambda s: None)
        assert result == 42
        assert attempts == 1

    def test_retries_then_succeeds_with_exponential_delays(self):
        calls = {"n": 0}
        delays = []
        notified = []

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TimeLimitExceeded("slow")
            return "done"

        result, attempts = retry_with_backoff(
            flaky,
            retries=3,
            base_delay=0.5,
            factor=2.0,
            sleep=delays.append,
            on_retry=lambda attempt, exc: notified.append(attempt),
        )
        assert result == "done"
        assert attempts == 3
        assert delays == [0.5, 1.0]
        assert notified == [1, 2]

    def test_exhausted_retries_raise(self):
        calls = {"n": 0}

        def always_slow():
            calls["n"] += 1
            raise TimeLimitExceeded("slow")

        with pytest.raises(TimeLimitExceeded):
            retry_with_backoff(always_slow, retries=2, sleep=lambda s: None)
        assert calls["n"] == 3  # initial try + 2 retries

    def test_non_retryable_exception_propagates_immediately(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise ValueError("bug")

        with pytest.raises(ValueError):
            retry_with_backoff(broken, retries=5, sleep=lambda s: None)
        assert calls["n"] == 1


class TestJsonlJournal:
    def test_append_and_load_round_trip(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with JsonlJournal(path) as journal:
            journal.append({"case": "A#0", "status": "ok"})
            journal.append({"case": "A#1", "status": "timeout"})
        loaded = JsonlJournal(path).load()
        assert loaded == [
            {"case": "A#0", "status": "ok"},
            {"case": "A#1", "status": "timeout"},
        ]

    def test_load_missing_file_is_empty(self, tmp_path):
        assert JsonlJournal(str(tmp_path / "absent.jsonl")).load() == []

    def test_records_are_deterministic_lines(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with JsonlJournal(path) as journal:
            journal.append({"b": 2, "a": 1})
        line = open(path).read().strip()
        assert line == '{"a":1,"b":2}'
        assert json.loads(line) == {"a": 1, "b": 2}

    def test_torn_final_line_skipped(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with JsonlJournal(path) as journal:
            journal.append({"case": "A#0"})
            journal.append({"case": "A#1"})
        with open(path, "a") as handle:
            handle.write('{"case": "A#2", "sta')  # crash mid-append
        loaded = JsonlJournal(path).load()
        assert [record["case"] for record in loaded] == ["A#0", "A#1"]

    def test_append_after_reload_continues_file(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with JsonlJournal(path) as journal:
            journal.append({"case": "A#0"})
        with JsonlJournal(path) as journal:
            journal.append({"case": "A#1"})
        assert [r["case"] for r in JsonlJournal(path).load()] == [
            "A#0", "A#1",
        ]
