"""Tests for the cycle-accurate simulator."""

import pytest

from repro.hdl import elaborate, parse
from repro.sim import (
    CombinationalLoopError,
    Simulator,
    SimulatorError,
    verilog_format,
)


def build(text, top=None, **kwargs):
    return Simulator(elaborate(parse(text), top=top), **kwargs)


class TestSequentialBasics:
    def test_counter(self, counter_design):
        sim = Simulator(counter_design)
        sim["rst"] = 1
        sim.step()
        sim["rst"] = 0
        sim["enable"] = 1
        sim.step(5)
        assert sim["count"] == 5

    def test_counter_wraps_at_width(self, counter_design):
        sim = Simulator(counter_design)
        sim["enable"] = 1
        sim.step(256)
        assert sim["count"] == 0

    def test_reset_dominates(self, counter_design):
        sim = Simulator(counter_design)
        sim["enable"] = 1
        sim.step(3)
        sim["rst"] = 1
        sim.step()
        assert sim["count"] == 0

    def test_nonblocking_swap(self):
        sim = build(
            """
            module swap (input wire clk, output reg [3:0] a, output reg [3:0] b);
                always @(posedge clk) begin
                    a <= b;
                    b <= a;
                end
            endmodule
            """
        )
        sim.state["a"] = 1
        sim.state["b"] = 2
        sim.step()
        assert (sim["a"], sim["b"]) == (2, 1)

    def test_blocking_within_block_sequences(self):
        sim = build(
            """
            module blk (input wire clk, output reg [7:0] y);
                reg [7:0] t;
                always @(posedge clk) begin
                    t = 5;
                    y <= t + 1;
                end
            endmodule
            """
        )
        sim.step()
        assert sim["y"] == 6

    def test_last_nonblocking_assignment_wins(self):
        sim = build(
            """
            module last (input wire clk, output reg [3:0] y);
                always @(posedge clk) begin
                    y <= 1;
                    y <= 2;
                end
            endmodule
            """
        )
        sim.step()
        assert sim["y"] == 2

    def test_fsm_listing1(self, fsm_design):
        """The paper's Listing 1 FSM walks IDLE -> WORK -> FINISH -> IDLE."""
        sim = Simulator(fsm_design)
        sim["request_valid"] = 1
        sim.step()
        assert sim["state"] == 1
        sim["work_done"] = 1
        sim.step()
        assert sim["state"] == 2
        sim.step()
        assert sim["state"] == 0


class TestCombinational:
    def test_continuous_assign_chain(self):
        sim = build(
            """
            module chain (input wire [7:0] x, output wire [7:0] z);
                wire [7:0] y;
                assign y = x + 1;
                assign z = y * 2;
            endmodule
            """
        )
        sim["x"] = 3
        sim.settle()
        assert sim["z"] == 8

    def test_always_star(self):
        sim = build(
            """
            module mux (input wire s, input wire [3:0] a, input wire [3:0] b,
                        output reg [3:0] y);
                always @(*) begin
                    if (s) y = a;
                    else y = b;
                end
            endmodule
            """
        )
        sim["a"] = 5
        sim["b"] = 9
        sim.settle()
        assert sim["y"] == 9
        sim["s"] = 1
        sim.settle()
        assert sim["y"] == 5

    def test_two_process_fsm_settles(self):
        # next = state; case ... next = X — rewrites within a pass but
        # converges; must NOT be reported as a combinational loop.
        sim = build(
            """
            module twop (input wire clk, input wire go, output reg st);
                reg nxt;
                always @(*) begin
                    nxt = st;
                    case (st)
                        0: if (go) nxt = 1;
                        1: nxt = 0;
                    endcase
                end
                always @(posedge clk) st <= nxt;
            endmodule
            """
        )
        sim["go"] = 1
        sim.step()
        assert sim["st"] == 1
        sim.step()
        assert sim["st"] == 0

    def test_true_combinational_loop_detected(self):
        sim = build(
            """
            module osc (input wire clk, output wire a);
                assign a = ~a;
            endmodule
            """
        )
        with pytest.raises(CombinationalLoopError):
            sim.settle()

    def test_combinational_loop_error_names_unstable_signals(self):
        sim = build(
            """
            module osc (input wire clk, output wire a, output wire b,
                        output wire stable);
                assign a = ~b;
                assign b = a;
                assign stable = 1;
            endmodule
            """
        )
        with pytest.raises(CombinationalLoopError) as excinfo:
            sim.settle()
        message = str(excinfo.value)
        assert "still changing" in message
        assert "a" in message.split("still changing:")[1]
        assert "b" in message.split("still changing:")[1]
        assert "stable" not in message.split("still changing:")[1]

    def test_display_in_comb_block_rejected(self):
        with pytest.raises(SimulatorError):
            build(
                """
                module bad (input wire a, output reg q);
                    always @(*) begin
                        q = a;
                        $display("no");
                    end
                endmodule
                """
            )


class TestLvalues:
    def test_bit_write(self):
        sim = build(
            """
            module bits (input wire clk, input wire [2:0] i, input wire v,
                         output reg [7:0] w);
                always @(posedge clk) w[i] <= v;
            endmodule
            """
        )
        sim["i"] = 3
        sim["v"] = 1
        sim.step()
        assert sim["w"] == 0b1000

    def test_part_select_write(self):
        sim = build(
            """
            module parts (input wire clk, input wire [7:0] b, output reg [15:0] w);
                always @(posedge clk) w[15:8] <= b;
            endmodule
            """
        )
        sim["b"] = 0xAB
        sim.step()
        assert sim["w"] == 0xAB00

    def test_concat_lvalue_write(self):
        sim = build(
            """
            module cc (input wire clk, input wire [7:0] v,
                       output reg [3:0] hi, output reg [3:0] lo);
                always @(posedge clk) {hi, lo} <= v;
            endmodule
            """
        )
        sim["v"] = 0xA5
        sim.step()
        assert (sim["hi"], sim["lo"]) == (0xA, 0x5)

    def test_memory_write_read(self):
        sim = build(
            """
            module mem (input wire clk, input wire [3:0] wa, input wire [7:0] wd,
                        input wire we, input wire [3:0] ra, output wire [7:0] rd);
                reg [7:0] store [0:15];
                always @(posedge clk) if (we) store[wa] <= wd;
                assign rd = store[ra];
            endmodule
            """
        )
        sim["wa"] = 5
        sim["wd"] = 77
        sim["we"] = 1
        sim.step()
        sim["ra"] = 5
        sim.settle()
        assert sim["rd"] == 77

    def test_nonblocking_index_uses_pre_commit_value(self):
        # ptr and mem[ptr] written in the same block: the index must be
        # the pre-edge ptr.
        sim = build(
            """
            module ptrw (input wire clk, input wire [7:0] d);
                reg [7:0] mem [0:7];
                reg [2:0] ptr;
                always @(posedge clk) begin
                    mem[ptr] <= d;
                    ptr <= ptr + 1;
                end
            endmodule
            """
        )
        sim["d"] = 11
        sim.step()
        sim["d"] = 22
        sim.step()
        assert sim.get("mem")[0] == 11
        assert sim.get("mem")[1] == 22


class TestDisplayAndFinish:
    def test_display_event_recorded(self):
        sim = build(
            """
            module say (input wire clk, input wire go);
                always @(posedge clk) if (go) $display("got %d and %h", 10, 255);
            endmodule
            """
        )
        sim["go"] = 1
        sim.step()
        assert sim.display_events[0].text == "got 10 and ff"

    def test_display_reads_pre_edge_values(self):
        sim = build(
            """
            module pre (input wire clk, output reg [3:0] n);
                always @(posedge clk) begin
                    n <= n + 1;
                    $display("n=%d", n);
                end
            endmodule
            """
        )
        sim.step(3)
        assert [e.text for e in sim.display_events] == ["n=0", "n=1", "n=2"]

    def test_finish_stops_stepping(self):
        sim = build(
            """
            module fin (input wire clk);
                reg [3:0] n;
                always @(posedge clk) begin
                    n <= n + 1;
                    if (n == 2) $finish;
                end
            endmodule
            """
        )
        sim.step(10)
        assert sim.finished
        assert sim["n"] == 3

    @pytest.mark.parametrize(
        "fmt,values,expected",
        [
            ("%d", [42], "42"),
            ("%h", [255], "ff"),
            ("%x", [255], "ff"),
            ("%b", [5], "101"),
            ("%c", [65], "A"),
            ("a %% b", [], "a % b"),
            ("%d-%h", [1, 16], "1-10"),
            ("%t", [7], "7"),
        ],
    )
    def test_verilog_format(self, fmt, values, expected):
        assert verilog_format(fmt, values) == expected


class TestTraceAndRun:
    def test_waveform_capture(self, counter_design):
        sim = Simulator(counter_design, trace=["count"])
        sim["enable"] = 1
        sim.step(4)
        assert sim.waveform["count"] == [0, 1, 2, 3]

    def test_trace_all(self, counter_design):
        sim = Simulator(counter_design, trace="all")
        assert "count" in sim.waveform

    def test_run_until(self, counter_design):
        sim = Simulator(counter_design)
        sim["enable"] = 1
        cycles = sim.run(100, until=lambda s: s["count"] == 7)
        assert cycles == 7

    def test_set_unknown_signal_rejected(self, counter_design):
        sim = Simulator(counter_design)
        with pytest.raises(SimulatorError):
            sim["nonexistent"] = 1

    def test_set_masks_to_width(self, counter_design):
        sim = Simulator(counter_design)
        sim["enable"] = 0xFF
        assert sim["enable"] == 1


class TestNegedge:
    def test_negedge_block_runs_second_half(self):
        sim = build(
            """
            module dual (input wire clk, output reg [3:0] p, output reg [3:0] n);
                always @(posedge clk) p <= p + 1;
                always @(negedge clk) n <= p;
            endmodule
            """
        )
        sim.step()
        # negedge sees the post-posedge value of p.
        assert sim["p"] == 1
        assert sim["n"] == 1
