"""Tests for the harness API and scenario helpers."""

import struct

import pytest

from repro.testbed import (
    BUG_IDS,
    SPECS,
    Symptom,
    load_design,
    load_source,
    reproduce_all,
)
from repro.testbed.scenarios import (
    Observation,
    _float_bits,
    _bits_float,
    _gray_reference,
    _rsd_codeword,
    _sha_blocks,
    _sha_reference,
)


class TestObservation:
    def test_symptom_mapping(self):
        observation = Observation(stuck=True, incorrect=True)
        assert observation.symptoms == {Symptom.STUCK, Symptom.INCORRECT}
        assert observation.failed

    def test_clean_observation(self):
        observation = Observation()
        assert observation.symptoms == frozenset()
        assert not observation.failed

    def test_all_four_symptoms(self):
        observation = Observation(
            stuck=True, loss=True, incorrect=True, external=True
        )
        assert len(observation.symptoms) == 4


class TestScenarioHelpers:
    def test_float_bits_roundtrip(self):
        for value in (0.0, 1.0, 1.5, 2.25, 3.75, 100.125):
            assert _bits_float(_float_bits(value)) == value

    def test_float_bits_match_struct(self):
        assert _float_bits(1.0) == 0x3F800000
        assert _float_bits(2.0) == 0x40000000

    def test_rsd_codeword_parity(self):
        words, data = _rsd_codeword(15)
        assert words[0] == 15          # header: length
        assert len(words) == 16        # header + 14 data + parity
        parity = 0
        for value in data:
            parity ^= value
        assert words[-1] == parity

    def test_gray_reference_matches_rtl_formula(self):
        pixel = (40 << 16) | (30 << 8) | 20
        assert _gray_reference(pixel) == (40 + 60 + 20) >> 2

    def test_sha_reference_deterministic(self):
        blocks = _sha_blocks(3)
        assert _sha_reference(blocks) == _sha_reference(list(blocks))
        assert _sha_reference(blocks) != _sha_reference(blocks[:2])

    def test_sha_blocks_are_64_bit(self):
        for block in _sha_blocks(8):
            assert 0 <= block < (1 << 64)


class TestHarnessApi:
    def test_reproduce_all_covers_everything(self):
        results = reproduce_all()
        assert set(results) == set(BUG_IDS)
        assert all(r.reproduced for r in results.values())

    def test_load_source_has_both_variants(self):
        for bug_id in BUG_IDS:
            spec = SPECS[bug_id]
            names = {m.name for m in load_source(bug_id).modules}
            assert spec.top in names
            assert spec.fixed_top in names

    def test_load_design_tops_differ(self):
        buggy = load_design("D6")
        fixed = load_design("D6", fixed=True)
        assert buggy.top.name == "fft_butterfly"
        assert fixed.top.name == "fft_butterfly_fixed"

    def test_designs_have_clk_and_rst(self):
        for bug_id in BUG_IDS:
            ports = {p.name for p in load_design(bug_id).top.ports}
            assert "clk" in ports, bug_id
            assert "rst" in ports, bug_id

    def test_design_headers_document_the_bug(self):
        import importlib.resources

        for bug_id in BUG_IDS:
            spec = SPECS[bug_id]
            text = (
                importlib.resources.files("repro.testbed")
                / "designs"
                / spec.design_file
            ).read_text()
            assert "ROOT CAUSE" in text, spec.design_file
            assert "SYMPTOM" in text, spec.design_file
            assert "FIX" in text, spec.design_file
