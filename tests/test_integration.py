"""End-to-end integration tests across subsystems."""

import pytest

from repro.core import FSMMonitor, LossCheck, Mode
from repro.sim import Simulator
from repro.testbed import (
    BUG_IDS,
    GROUND_TRUTH,
    SPECS,
    ReproductionError,
    load_design,
    run_losscheck,
    verify_fix,
)
from repro.testbed.harness import LossCheckOutcome
from repro.testbed.scenarios import SCENARIOS


class TestLossCheckOnFpgaMode:
    """The full LossCheck workflow also works through the recording IP."""

    @pytest.mark.parametrize("bug_id", ["D1", "D4", "C2", "C4"])
    def test_same_localization_on_fpga(self, bug_id):
        spec = SPECS[bug_id].losscheck
        lc = LossCheck(
            load_design(bug_id),
            source=spec.source,
            sink=spec.sink,
            source_valid=spec.source_valid,
        )
        if spec.uses_filtering and bug_id in GROUND_TRUTH:
            lc.calibrate(GROUND_TRUTH[bug_id], mode=Mode.ON_FPGA,
                         buffer_depth=4096)
        result = lc.analyze(
            SCENARIOS[bug_id], mode=Mode.ON_FPGA, buffer_depth=4096
        )
        for location in spec.expected_locations:
            assert location in result.localized, (bug_id, result.localized)


class TestFSMMonitorAcrossTestbed:
    """FSM Monitor produces identical traces in both modes on real designs."""

    @pytest.mark.parametrize("bug_id", ["D1", "D2", "D5", "C1", "S1", "S3"])
    def test_mode_equivalence(self, bug_id):
        sim_monitor = FSMMonitor(load_design(bug_id))
        sim = sim_monitor.simulator(mode=Mode.SIMULATION)
        SCENARIOS[bug_id](sim)
        sim_trace = [
            (t.cycle, t.fsm, t.from_state, t.to_state)
            for t in sim_monitor.trace(sim)
        ]
        fpga_monitor = FSMMonitor(load_design(bug_id))
        fpga = fpga_monitor.simulator(mode=Mode.ON_FPGA, buffer_depth=4096)
        SCENARIOS[bug_id](fpga)
        fpga_trace = [
            (t.cycle, t.fsm, t.from_state, t.to_state)
            for t in fpga_monitor.trace(fpga)
        ]
        assert sim_trace == fpga_trace
        assert sim_trace, "scenario should exercise at least one transition"


class TestHarnessErrors:
    def test_run_losscheck_rejects_non_loss_bug(self):
        with pytest.raises(ValueError):
            run_losscheck("D7")

    def test_reproduction_error_message(self):
        # A fixed design run through reproduce-style checking raises with
        # a readable message.
        from repro.testbed.harness import Reproduction
        from repro.testbed.scenarios import Observation

        result = Reproduction(
            bug_id="D1",
            observation=Observation(),
            expected_symptoms=SPECS["D1"].symptoms,
            fixed=False,
        )
        assert not result.reproduced

    def test_losscheck_outcome_scorekeeping(self):
        outcome = run_losscheck("D1")
        assert isinstance(outcome, LossCheckOutcome)
        assert outcome.localized
        assert outcome.false_positives == ["in_reg"]
        assert outcome.matches_paper


class TestToolComposition:
    """Tools compose: instrumenting an instrumented design still works."""

    def test_fsm_then_losscheck(self):
        design = load_design("C2")
        fsm = FSMMonitor(design, state_names=SPECS["C2"].state_names)
        spec = SPECS["C2"].losscheck
        lc = LossCheck(
            fsm.module,
            source=spec.source,
            sink=spec.sink,
            source_valid=spec.source_valid,
        )
        result = lc.analyze(SCENARIOS["C2"])
        assert "b_buf" in result.localized

    def test_composed_design_preserves_bug_behavior(self):
        design = load_design("D8")
        fsm = FSMMonitor(design)
        sim = Simulator(fsm.module)
        observation = SCENARIOS["D8"](sim)
        assert observation.incorrect


class TestWaveformsFromTestbed:
    def test_vcd_export_of_a_bug_run(self, tmp_path):
        from repro.wave.vcd import write_vcd

        design = load_design("D13")
        sim = Simulator(design, trace="all")
        SCENARIOS["D13"](sim)
        path = write_vcd(sim, str(tmp_path / "d13.vcd"))
        text = open(path).read()
        assert "fl_state" in text
        assert "$enddefinitions" in text


class TestFixedDesignsAreLossClean:
    """The fixed variants must not trip LossCheck on the failure
    stimulus (the loss the tool hunts is gone)."""

    @pytest.mark.parametrize("bug_id", ["D2", "D3", "D4", "C2", "C4"])
    def test_no_root_cause_reported_on_fixed(self, bug_id):
        spec = SPECS[bug_id].losscheck
        lc = LossCheck(
            load_design(bug_id, fixed=True),
            source=spec.source,
            sink=spec.sink,
            source_valid=spec.source_valid,
        )
        if spec.uses_filtering and bug_id in GROUND_TRUTH:
            lc.calibrate(GROUND_TRUTH[bug_id])
        result = lc.analyze(SCENARIOS[bug_id])
        for location in spec.expected_locations:
            assert location not in result.localized, (bug_id, result.localized)
