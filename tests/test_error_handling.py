"""Failure-injection tests: every layer fails loudly and precisely."""

import pytest

from repro.hdl import ast, elaborate, parse
from repro.hdl.elaborate import ElaborationError
from repro.hdl.lexer import LexerError
from repro.hdl.parser import ParseError
from repro.sim import EvaluationError, Simulator, SimulatorError
from repro.sim.values import Evaluator, SymbolTable


class TestLexerFailures:
    def test_stray_character(self):
        with pytest.raises(LexerError) as info:
            parse("module m (input wire a); ` endmodule")
        assert "<input>:1:26" in str(info.value)
        assert info.value.code == "P0101"

    def test_line_number_in_error(self):
        with pytest.raises(LexerError) as info:
            parse("module m (\ninput wire a\n);\n`\nendmodule")
        assert "<input>:4:1" in str(info.value)

    def test_filename_in_error(self):
        with pytest.raises(LexerError) as info:
            parse("module m (input wire a); ` endmodule", filename="bad.v")
        assert str(info.value).startswith("bad.v:1:26:")


class TestParserFailures:
    @pytest.mark.parametrize(
        "text",
        [
            "module m (input wire a)",                       # missing ; and end
            "module m (input wire a); always q <= 1; endmodule",  # missing @
            "module m (input wire a); assign = 1; endmodule",
            "module m (wire a); endmodule",                  # missing direction
            "module m (input wire a); case (a) endmodule",   # unterminated case
            "module m (input wire a); reg [3:0 x; endmodule",
        ],
    )
    def test_malformed_modules(self, text):
        with pytest.raises(ParseError):
            parse(text)

    def test_error_reports_line_and_column(self):
        with pytest.raises(ParseError) as info:
            parse("module m (\n  input wire a\n);\n  assign = 1;\nendmodule")
        assert "<input>:4:" in str(info.value)
        assert info.value.diagnostics

    def test_recovery_collects_multiple_errors(self):
        text = (
            "module m (input wire clk);\n"
            "  reg [3:0] a;\n"
            "  assign = 1;\n"
            "  always @(posedge clk) begin\n"
            "    a <= ;\n"
            "    a <= 2;\n"
            "  end\n"
            "endmodule\n"
        )
        with pytest.raises(ParseError) as info:
            parse(text)
        codes = [d.code for d in info.value.diagnostics]
        assert len(codes) >= 2


class TestElaborationFailures:
    def test_non_constant_width(self):
        with pytest.raises(ElaborationError):
            elaborate(
                parse(
                    "module m (input wire [3:0] n);"
                    " reg [n:0] x; endmodule"
                )
            )

    def test_runaway_loop_guard(self):
        with pytest.raises(ElaborationError):
            elaborate(
                parse(
                    """
                    module m (input wire clk);
                        reg [7:0] x;
                        integer i;
                        always @(posedge clk)
                            for (i = 0; i < 100; i = i + 0) x <= i;
                    endmodule
                    """
                )
            )

    def test_instance_unknown_port(self):
        with pytest.raises(ElaborationError):
            elaborate(
                parse(
                    """
                    module child (input wire a);
                    endmodule
                    module top (input wire x);
                        child c0 (.nonexistent(x));
                    endmodule
                    """
                ),
                top="top",
            )

    def test_non_constant_instance_parameter(self):
        with pytest.raises(ElaborationError):
            elaborate(
                parse(
                    """
                    module top (input wire clk, input wire [3:0] n);
                        scfifo #(.LPM_WIDTH(n)) f (.clock(clk));
                    endmodule
                    """
                ),
                top="top",
            )


class TestEvaluationFailures:
    def test_undeclared_signal(self):
        module = ast.Module(name="empty")
        evaluator = Evaluator(SymbolTable(module))
        with pytest.raises(EvaluationError):
            evaluator.eval(ast.Identifier(name="ghost"), {})

    def test_memory_without_index(self):
        design = elaborate(
            parse(
                "module m (input wire clk, output reg [7:0] q);"
                " reg [7:0] mem [0:3];"
                " always @(posedge clk) q <= mem; endmodule"
            )
        )
        sim = Simulator(design)
        with pytest.raises(EvaluationError):
            sim.step()

    def test_whole_memory_assignment_rejected(self):
        design = elaborate(
            parse(
                "module m (input wire clk, input wire [7:0] d);"
                " reg [7:0] mem [0:3];"
                " always @(posedge clk) mem <= d; endmodule"
            )
        )
        sim = Simulator(design)
        with pytest.raises(SimulatorError):
            sim.step()


class TestToolInputValidation:
    def test_dependency_monitor_unknown_target(self, counter_design):
        from repro.core import DependencyMonitor

        with pytest.raises(KeyError):
            DependencyMonitor(counter_design, "ghost", depth=2)

    def test_losscheck_disconnected_path(self, counter_design):
        from repro.core import LossCheck

        with pytest.raises(ValueError):
            LossCheck(counter_design, source="enable", sink="rst")

    def test_signalcat_bad_event_expression(self, counter_design):
        from repro.core import Mode, SignalCat

        with pytest.raises(ParseError):
            SignalCat(
                counter_design,
                mode=Mode.ON_FPGA,
                start_event="((",
            )

    def test_statistics_monitor_bad_condition(self, counter_design):
        from repro.core import StatisticsMonitor

        with pytest.raises(ParseError):
            StatisticsMonitor(counter_design, {"bad": "a ||"})

    def test_simulator_rejects_wrong_type(self):
        with pytest.raises(TypeError):
            Simulator("not a design")
