"""Tests for the external monitors (shell/protocol checkers)."""

from repro.hdl import elaborate, parse
from repro.sim import Simulator
from repro.testbed.monitors import (
    AxiLiteWriteChecker,
    AxiStreamChecker,
    ShellAddressMonitor,
)


class _FakeSim:
    """Minimal signal source for driving checkers directly."""

    def __init__(self):
        self.values = {}
        self.cycle = 0

    def __getitem__(self, name):
        return self.values.get(name, 0)

    def set(self, **kwargs):
        self.values.update(kwargs)
        self.cycle += 1
        return self


class TestShellAddressMonitor:
    def test_in_range_ok(self):
        monitor = ShellAddressMonitor("req", "addr", 0x100, 0x200)
        sim = _FakeSim()
        monitor.check(sim.set(req=1, addr=0x150))
        assert not monitor.error

    def test_out_of_range_flagged(self):
        monitor = ShellAddressMonitor("req", "addr", 0x100, 0x200)
        sim = _FakeSim()
        monitor.check(sim.set(req=1, addr=0x250))
        assert monitor.error
        assert "translation fault" in monitor.violations[0].message

    def test_no_request_no_check(self):
        monitor = ShellAddressMonitor("req", "addr", 0x100, 0x200)
        sim = _FakeSim()
        monitor.check(sim.set(req=0, addr=0xFFFF))
        assert not monitor.error

    def test_boundaries(self):
        monitor = ShellAddressMonitor("req", "addr", 0x100, 0x200)
        sim = _FakeSim()
        monitor.check(sim.set(req=1, addr=0x100))   # low inclusive
        monitor.check(sim.set(req=1, addr=0x1FF))   # below high
        assert not monitor.error
        monitor.check(sim.set(req=1, addr=0x200))   # high exclusive
        assert monitor.error


class TestAxiLiteWriteChecker:
    def test_held_response_ok(self):
        checker = AxiLiteWriteChecker()
        sim = _FakeSim()
        checker.check(sim.set(bvalid=1, bready=0))
        checker.check(sim.set(bvalid=1, bready=1))
        checker.check(sim.set(bvalid=0, bready=1))
        assert not checker.error

    def test_dropped_response_flagged(self):
        checker = AxiLiteWriteChecker()
        sim = _FakeSim()
        checker.check(sim.set(bvalid=1, bready=0))
        checker.check(sim.set(bvalid=0, bready=0))
        assert checker.error

    def test_single_cycle_handshake_ok(self):
        checker = AxiLiteWriteChecker()
        sim = _FakeSim()
        checker.check(sim.set(bvalid=1, bready=1))
        checker.check(sim.set(bvalid=0, bready=0))
        assert not checker.error


class TestAxiStreamChecker:
    def test_valid_drop_flagged(self):
        checker = AxiStreamChecker()
        sim = _FakeSim()
        checker.check(sim.set(tvalid=1, tready=0, tdata=5))
        checker.check(sim.set(tvalid=0, tready=0, tdata=5))
        assert checker.error
        assert "TVALID deasserted" in checker.violations[0].message

    def test_data_change_while_stalled_flagged(self):
        checker = AxiStreamChecker()
        sim = _FakeSim()
        checker.check(sim.set(tvalid=1, tready=0, tdata=5))
        checker.check(sim.set(tvalid=1, tready=0, tdata=6))
        assert checker.error
        assert "TDATA changed" in checker.violations[0].message

    def test_stable_stall_then_beat_ok(self):
        checker = AxiStreamChecker()
        sim = _FakeSim()
        checker.check(sim.set(tvalid=1, tready=0, tdata=5))
        checker.check(sim.set(tvalid=1, tready=1, tdata=5))
        checker.check(sim.set(tvalid=0, tready=1, tdata=5))
        assert not checker.error


class TestCheckersAgainstDesigns:
    def test_fixed_axilite_passes_checker(self):
        from repro.testbed import run_scenario

        observation = run_scenario("S1", fixed=True)
        assert not observation.external

    def test_fixed_axis_master_passes_checker(self):
        from repro.testbed import run_scenario

        observation = run_scenario("S2", fixed=True)
        assert not observation.external
