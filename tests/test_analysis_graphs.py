"""Tests for dependency graphs, FSM detection, and propagation relations."""

import pytest

from repro.analysis import (
    build_dependency_graph,
    build_propagation_table,
    dependency_chain,
    detect_fsms,
    instantiate_condition,
)
from repro.hdl import elaborate, parse, parse_expression
from repro.hdl.codegen import generate_expression


def top_of(text, top=None):
    return elaborate(parse(text), top=top).top


class TestDependencyChain:
    PIPE = """
    module pipe (input wire clk, input wire [7:0] x, output reg [7:0] s3);
        reg [7:0] s1;
        reg [7:0] s2;
        always @(posedge clk) begin
            s1 <= x;
            s2 <= s1;
            s3 <= s2;
        end
    endmodule
    """

    def test_distances_count_cycles(self):
        chain = dependency_chain(top_of(self.PIPE), "s3", 5)
        assert chain.distances["s2"] == 1
        assert chain.distances["s1"] == 2
        assert chain.distances["x"] == 3

    def test_depth_cuts_off(self):
        chain = dependency_chain(top_of(self.PIPE), "s3", 1)
        assert "s2" in chain.distances
        assert "s1" not in chain.distances

    def test_combinational_hop_is_free(self):
        module = top_of(
            "module m (input wire clk, input wire [7:0] x, output reg [7:0] q);"
            " wire [7:0] w; assign w = x + 1;"
            " always @(posedge clk) q <= w; endmodule"
        )
        chain = dependency_chain(module, "q", 1)
        assert chain.distances["w"] == 1
        assert chain.distances["x"] == 1

    def test_control_dependency_included_and_excludable(self):
        text = (
            "module m (input wire clk, input wire en, input wire d, output reg q);"
            " always @(posedge clk) if (en) q <= d; endmodule"
        )
        with_control = dependency_chain(top_of(text), "q", 2)
        assert "en" in with_control.distances
        without = dependency_chain(top_of(text), "q", 2, include_control=False)
        assert "en" not in without.distances

    def test_unknown_target_rejected(self):
        with pytest.raises(KeyError):
            dependency_chain(top_of(self.PIPE), "nope", 2)

    def test_registers_ordered_nearest_first(self):
        chain = dependency_chain(top_of(self.PIPE), "s3", 5)
        assert chain.registers[0] == "s3"
        assert chain.registers.index("s2") < chain.registers.index("s1")

    def test_ip_flow_edges(self):
        module = top_of(
            """
            module m (input wire clk, input wire [7:0] d, input wire push,
                      input wire pop, output reg [7:0] out);
                wire [7:0] q;
                wire full;
                scfifo #(.LPM_WIDTH(8)) f (.clock(clk), .data(d), .wrreq(push),
                                           .rdreq(pop), .q(q), .full(full));
                always @(posedge clk) out <= q;
            endmodule
            """
        )
        chain = dependency_chain(module, "out", 3)
        assert "d" in chain.distances  # traced through the FIFO model

    def test_graph_edge_attributes(self):
        graph = build_dependency_graph(top_of(self.PIPE))
        edge = list(graph.get_edge_data("s1", "s2").values())[0]
        assert edge["kind"] == "data"
        assert edge["cycles"] == 1


class TestFSMDetection:
    def test_listing1_fsm(self, fsm_design):
        (fsm,) = detect_fsms(fsm_design.top)
        assert fsm.name == "state"
        assert fsm.states == {0, 1, 2}
        arcs = {(t.from_state, t.to_state) for t in fsm.transitions}
        assert arcs == {(0, 1), (1, 2), (2, 0)}

    def test_counter_not_detected(self, counter_design):
        assert detect_fsms(counter_design.top) == []

    def test_two_process_fsm_missed(self):
        # The documented false-negative pattern (§4.2 / §6.3).
        module = top_of(
            """
            module m (input wire clk, input wire go, output reg st);
                reg nxt;
                always @(*) begin
                    nxt = st;
                    case (st)
                        0: if (go) nxt = 1;
                        1: nxt = 0;
                    endcase
                end
                always @(posedge clk) st <= nxt;
            endmodule
            """
        )
        assert detect_fsms(module) == []

    def test_bit_selected_register_excluded(self):
        module = top_of(
            """
            module m (input wire clk, input wire go, output reg [1:0] st,
                      output wire b);
                assign b = st[0];
                always @(posedge clk)
                    case (st)
                        0: if (go) st <= 1;
                        1: st <= 0;
                    endcase
            endmodule
            """
        )
        assert detect_fsms(module) == []

    def test_if_style_fsm_detected(self):
        module = top_of(
            """
            module m (input wire clk, input wire go, output reg [1:0] st);
                always @(posedge clk) begin
                    if (st == 0 && go) st <= 2;
                    if (st == 2) st <= 0;
                end
            endmodule
            """
        )
        (fsm,) = detect_fsms(module)
        assert fsm.states == {0, 2}

    def test_reset_arc_has_no_from_state(self, fsm_design):
        module = top_of(
            """
            module m (input wire clk, input wire rst, input wire go,
                      output reg [1:0] st);
                always @(posedge clk) begin
                    if (rst) st <= 0;
                    else case (st)
                        0: if (go) st <= 1;
                        1: st <= 0;
                    endcase
                end
            endmodule
            """
        )
        (fsm,) = detect_fsms(module)
        reset_arcs = [t for t in fsm.transitions if t.from_state is None]
        assert len(reset_arcs) == 1

    def test_hold_assignment_allowed(self):
        module = top_of(
            """
            module m (input wire clk, input wire go, output reg st);
                always @(posedge clk)
                    case (st)
                        0: if (go) st <= 1; else st <= st;
                        1: st <= 0;
                    endcase
            endmodule
            """
        )
        assert len(detect_fsms(module)) == 1

    def test_flag_without_self_reference_excluded(self):
        module = top_of(
            "module m (input wire clk, input wire go, output reg done);"
            " always @(posedge clk) if (go) done <= 1; else done <= 0;"
            " endmodule"
        )
        assert detect_fsms(module) == []


class TestPropagation:
    def test_paper_running_example_table(self, lossy_design):
        """§4.5.1: the three relations of the running example."""
        table = build_propagation_table(lossy_design.top)
        rel = {
            (r.src, r.dst): generate_expression(r.condition)
            for r in table.relations
        }
        assert rel[("a", "out")] == "cond_a"
        assert rel[("b", "out")] == "(!(cond_a) && cond_b)"
        assert rel[("in", "b")] == "in_valid"

    def test_path_registers(self, lossy_design):
        table = build_propagation_table(lossy_design.top)
        assert table.path_registers("in", "out") == {"in", "b", "out"}

    def test_comb_signals_collapsed(self):
        module = top_of(
            "module m (input wire clk, input wire en, input wire [7:0] x,"
            " output reg [7:0] q);"
            " wire [7:0] w; assign w = x + 1;"
            " always @(posedge clk) if (en) q <= w; endmodule"
        )
        table = build_propagation_table(module)
        pairs = {(r.src, r.dst) for r in table.relations}
        assert ("x", "q") in pairs
        assert ("w", "q") not in pairs

    def test_identity_hold_flagged(self):
        module = top_of(
            "module m (input wire clk, input wire en, input wire [7:0] d,"
            " output reg [7:0] q);"
            " always @(posedge clk) if (en) q <= d; else q <= q; endmodule"
        )
        table = build_propagation_table(module)
        holds = [r for r in table.relations if r.identity_hold]
        assert len(holds) == 1
        assert holds[0].src == holds[0].dst == "q"

    def test_ip_relations_and_loss_rules(self):
        module = top_of(
            """
            module m (input wire clk, input wire [7:0] d, input wire push,
                      input wire pop, output wire [7:0] q);
                wire full;
                scfifo #(.LPM_WIDTH(8)) f (.clock(clk), .data(d), .wrreq(push),
                                           .rdreq(pop), .q(q), .full(full));
            endmodule
            """
        )
        table = build_propagation_table(module)
        pairs = {(r.src, r.dst) for r in table.relations}
        assert ("d", "q") in pairs
        (point,) = table.ip_loss_points
        assert point.port == "data"
        assert "d" in point.sources
        assert generate_expression(point.condition) == "(push && full)"

    def test_instantiate_condition(self):
        cond = instantiate_condition(
            "{wrreq} && !{full}",
            {"wrreq": parse_expression("go"), "full": parse_expression("f")},
        )
        assert generate_expression(cond) == "(go && !(f))"

    def test_unbound_placeholder_rejected(self):
        with pytest.raises(KeyError):
            instantiate_condition("{missing}", {})
