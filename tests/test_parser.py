"""Tests for the Verilog-subset parser."""

import pytest

from repro.hdl import ast, parse, parse_expression, parse_module, parse_statement
from repro.hdl.parser import ParseError


class TestExpressions:
    def test_precedence_add_mul(self):
        expr = parse_expression("a + b * c")
        assert isinstance(expr, ast.BinaryOp) and expr.op == "+"
        assert isinstance(expr.right, ast.BinaryOp) and expr.right.op == "*"

    def test_precedence_compare_logical(self):
        expr = parse_expression("a == b && c < d")
        assert expr.op == "&&"
        assert expr.left.op == "=="
        assert expr.right.op == "<"

    def test_precedence_bitwise_layers(self):
        expr = parse_expression("a | b ^ c & d")
        assert expr.op == "|"
        assert expr.right.op == "^"
        assert expr.right.right.op == "&"

    def test_left_associativity(self):
        expr = parse_expression("a - b - c")
        assert expr.op == "-"
        assert expr.left.op == "-"

    def test_ternary(self):
        expr = parse_expression("sel ? a : b")
        assert isinstance(expr, ast.Ternary)

    def test_nested_ternary_right_associative(self):
        expr = parse_expression("s1 ? a : s2 ? b : c")
        assert isinstance(expr.iffalse, ast.Ternary)

    def test_unary_reduction(self):
        expr = parse_expression("&bits")
        assert isinstance(expr, ast.UnaryOp) and expr.op == "&"

    def test_unary_plus_dropped(self):
        expr = parse_expression("+a")
        assert isinstance(expr, ast.Identifier)

    def test_index(self):
        expr = parse_expression("mem[3]")
        assert isinstance(expr, ast.Index)

    def test_part_select(self):
        expr = parse_expression("word[15:8]")
        assert isinstance(expr, ast.PartSelect)

    def test_indexed_part_select_up(self):
        expr = parse_expression("word[i +: 8]")
        assert isinstance(expr, ast.IndexedPartSelect)
        assert expr.ascending

    def test_indexed_part_select_down(self):
        expr = parse_expression("word[i -: 8]")
        assert not expr.ascending

    def test_chained_postfix(self):
        expr = parse_expression("mem[i][3]")
        assert isinstance(expr, ast.Index)
        assert isinstance(expr.var, ast.Index)

    def test_concat(self):
        expr = parse_expression("{a, b, c}")
        assert isinstance(expr, ast.Concat)
        assert len(expr.parts) == 3

    def test_replication(self):
        expr = parse_expression("{4{bit}}")
        assert isinstance(expr, ast.Repeat)

    def test_size_cast(self):
        expr = parse_expression("42'(x >> 6)")
        assert isinstance(expr, ast.SizeCast)
        assert expr.width == 42

    def test_sized_number_not_cast(self):
        expr = parse_expression("8'hFF")
        assert isinstance(expr, ast.Number)
        assert expr.width == 8

    def test_signed_call_is_identity(self):
        expr = parse_expression("$signed(a)")
        assert isinstance(expr, ast.Identifier)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("a + b extra")


class TestStatements:
    def test_nonblocking(self):
        stmt = parse_statement("q <= d;")
        assert isinstance(stmt, ast.NonblockingAssign)

    def test_blocking(self):
        stmt = parse_statement("q = d;")
        assert isinstance(stmt, ast.BlockingAssign)

    def test_if_else(self):
        stmt = parse_statement("if (c) a <= 1; else a <= 0;")
        assert isinstance(stmt, ast.If)
        assert stmt.else_stmt is not None

    def test_dangling_else_binds_inner(self):
        stmt = parse_statement("if (a) if (b) x <= 1; else x <= 2;")
        assert stmt.else_stmt is None
        assert stmt.then_stmt.else_stmt is not None

    def test_begin_end_block(self):
        stmt = parse_statement("begin a <= 1; b <= 2; end")
        assert isinstance(stmt, ast.Block)
        assert len(stmt.statements) == 2

    def test_labeled_block(self):
        stmt = parse_statement("begin : label a <= 1; end")
        assert isinstance(stmt, ast.Block)

    def test_case(self):
        stmt = parse_statement(
            "case (s) 0: a <= 1; 1, 2: a <= 2; default: a <= 0; endcase"
        )
        assert isinstance(stmt, ast.Case)
        assert len(stmt.items) == 3
        assert stmt.items[1].labels and len(stmt.items[1].labels) == 2
        assert stmt.items[2].labels == []

    def test_casez(self):
        stmt = parse_statement("casez (s) 0: a <= 1; endcase")
        assert stmt.casez

    def test_for_loop(self):
        stmt = parse_statement("for (i = 0; i < 4; i = i + 1) mem[i] <= 0;")
        assert isinstance(stmt, ast.For)

    def test_display(self):
        stmt = parse_statement('$display("x=%d", x);')
        assert isinstance(stmt, ast.Display)
        assert stmt.format == "x=%d"
        assert len(stmt.args) == 1

    def test_finish(self):
        stmt = parse_statement("$finish;")
        assert isinstance(stmt, ast.Finish)

    def test_concat_lvalue(self):
        stmt = parse_statement("{hi, lo} <= value;")
        assert isinstance(stmt.lhs, ast.Concat)

    def test_part_select_lvalue(self):
        stmt = parse_statement("data[7:0] <= b;")
        assert isinstance(stmt.lhs, ast.PartSelect)

    def test_empty_statement(self):
        stmt = parse_statement(";")
        assert isinstance(stmt, ast.Block)
        assert not stmt.statements

    def test_unsupported_system_task(self):
        with pytest.raises(ParseError):
            parse_statement("$random;")


class TestModules:
    def test_module_ports(self):
        module = parse_module(
            "module m (input wire clk, output reg [7:0] q); endmodule"
        )
        assert [p.name for p in module.ports] == ["clk", "q"]
        assert module.ports[1].kind is ast.NetKind.REG
        assert module.ports[1].bit_width == 8

    def test_parameters(self):
        module = parse_module(
            "module m #(parameter W = 8, parameter D = 4) (input wire c); endmodule"
        )
        assert [p.name for p in module.params] == ["W", "D"]

    def test_implicit_port_declarations(self):
        module = parse_module(
            "module m (input wire clk, output reg [3:0] q); endmodule"
        )
        assert module.find_declaration("q").bit_width == 4

    def test_localparam(self):
        module = parse_module(
            "module m (input wire c); localparam X = 3; endmodule"
        )
        decls = [i for i in module.items if isinstance(i, ast.ParameterDecl)]
        assert decls and decls[0].local

    def test_multi_name_declaration(self):
        module = parse_module(
            "module m (input wire c); reg [3:0] a, b, d; endmodule"
        )
        names = {x.name for x in module.declarations()}
        assert {"a", "b", "d"} <= names

    def test_memory_declaration(self):
        module = parse_module(
            "module m (input wire c); reg [7:0] mem [0:15]; endmodule"
        )
        decl = module.find_declaration("mem")
        assert decl.array_depth == 16
        assert decl.bit_width == 8

    def test_wire_with_initializer(self):
        module = parse_module(
            "module m (input wire [3:0] a); wire [3:0] w = a + 1; endmodule"
        )
        assigns = [i for i in module.items if isinstance(i, ast.ContinuousAssign)]
        assert len(assigns) == 1

    def test_instance_with_params(self):
        source = parse(
            """
            module top (input wire clk);
                scfifo #(.LPM_WIDTH(8)) f0 (.clock(clk), .data());
            endmodule
            """
        )
        inst = [i for i in source.modules[0].items if isinstance(i, ast.Instance)]
        assert inst[0].params[0].name == "LPM_WIDTH"
        assert inst[0].ports[1].expr is None

    def test_always_star(self):
        module = parse_module(
            "module m (input wire a, output reg q); always @(*) q = a; endmodule"
        )
        always = [i for i in module.items if isinstance(i, ast.Always)][0]
        assert always.is_combinational

    def test_always_posedge_or_negedge(self):
        module = parse_module(
            "module m (input wire clk, input wire rst, output reg q);"
            " always @(posedge clk or negedge rst) q <= 1; endmodule"
        )
        always = [i for i in module.items if isinstance(i, ast.Always)][0]
        assert [s.edge for s in always.sens] == [ast.Edge.POSEDGE, ast.Edge.NEGEDGE]

    def test_multiple_modules(self):
        source = parse(
            "module a (input wire x); endmodule module b (input wire y); endmodule"
        )
        assert [m.name for m in source.modules] == ["a", "b"]

    def test_parse_module_rejects_multiple(self):
        with pytest.raises(ParseError):
            parse_module("module a (input wire x); endmodule module b (input wire y); endmodule")

    def test_missing_semicolon_raises(self):
        with pytest.raises(ParseError):
            parse_module("module m (input wire c) endmodule")
