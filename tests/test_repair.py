"""Tests for repro.repair: templates, sites, validation, ranking, CLI."""

import json

import pytest

from repro.cli import main
from repro.hdl import ast_equal, parse
from repro.repair import (
    RepairConfig,
    RepairSite,
    TEMPLATE_NAMES,
    TEMPLATES,
    count_edits,
    enumerate_candidates,
    enumerate_sites,
    instantiate,
    render_repair_report,
    run_repair,
    unified_patch,
)
from repro.repair.validate import baseline_result, bug_source_text

# A compact design exercising every template's trigger shapes: literals,
# part selects, an array, a width, a constant continuous assign, &&
# conditions, case arms, and a reset branch.
_DESIGN = """
module patchme (
    input wire clk,
    input wire rst,
    input wire in_valid,
    input wire [7:0] in_data,
    input wire out_ready,
    output reg out_valid,
    output reg [7:0] out_data,
    output wire in_ready
);
    reg [3:0] count;
    reg pending;
    reg [7:0] buffer [0:3];
    assign in_ready = 1;
    always @(posedge clk) begin
        if (rst) begin
            count <= 0;
            pending <= 0;
            out_valid <= 0;
            out_data <= 0;
        end else begin
            case (pending)
                1'b0: begin
                    if (in_valid && in_ready) begin
                        out_data[7:4] <= in_data[7:4];
                        out_data[3:0] <= in_data[3:0];
                        pending <= 1;
                        count <= count + 1;
                    end
                end
                1'b1: begin
                    out_valid <= 1;
                    pending <= 0;
                end
            endcase
        end
    end
endmodule
"""

_TOP = "patchme"

_SITES = [
    RepairSite(signal="out_data", origin="test", rank=0),
    RepairSite(signal="pending", origin="test", rank=1),
]


def _all_candidates():
    return list(enumerate_candidates(_DESIGN, _TOP, _SITES))


class TestTemplatePurity:
    """Templates are pure transforms: parseable, interface-preserving,
    deterministic, and never the identity edit."""

    def test_registry_matches_names(self):
        assert list(TEMPLATES) == TEMPLATE_NAMES
        assert "replace_literals" in TEMPLATE_NAMES
        assert "add_guard" in TEMPLATE_NAMES

    def test_every_candidate_roundtrips_through_frontend(self):
        candidates = _all_candidates()
        assert len(candidates) > 50
        for candidate in candidates:
            reparsed = parse(candidate.text)
            from repro.hdl import generate_source

            assert ast_equal(reparsed, parse(generate_source(reparsed)))

    def test_every_candidate_preserves_module_interface(self):
        original = parse(_DESIGN).find_module(_TOP)
        expected = [
            (p.name, p.direction, p.bit_width) for p in original.ports
        ]
        for candidate in _all_candidates():
            module = parse(candidate.text).find_module(_TOP)
            got = [(p.name, p.direction, p.bit_width) for p in module.ports]
            assert got == expected, candidate.candidate_id

    def test_no_candidate_is_the_identity(self):
        for candidate in _all_candidates():
            assert candidate.text != _DESIGN

    def test_enumeration_is_deterministic(self):
        first = [(c.candidate_id, c.text) for c in _all_candidates()]
        second = [(c.candidate_id, c.text) for c in _all_candidates()]
        assert first == second

    def test_instantiate_by_id_matches_enumeration(self):
        candidates = _all_candidates()
        probe = candidates[len(candidates) // 2]
        rebuilt = instantiate(
            _DESIGN, _TOP, _SITES, probe.candidate_id
        )
        assert rebuilt.text == probe.text
        assert rebuilt.template == probe.template

    def test_unknown_candidate_id_raises(self):
        with pytest.raises(KeyError):
            instantiate(_DESIGN, _TOP, _SITES, "replace_literals:ghost:99")

    def test_noop_site_yields_no_candidates_for_inapplicable_template(self):
        # No ternaries in a design built only from ifs: invert_condition
        # applies, but swap_partselect_pair needs two part-select writes
        # to the same base with different ranges — absent here after we
        # restrict to a site that owns none.
        minimal = (
            "module tiny (input wire clk, output reg q);\n"
            "    always @(posedge clk) q <= 1;\n"
            "endmodule\n"
        )
        sites = [RepairSite(signal="q", origin="test", rank=0)]
        for name in ("swap_partselect_pair", "shift_partselect",
                     "widen_synchronizer"):
            got = list(enumerate_candidates(
                minimal, "tiny", sites, templates=(name,)
            ))
            assert got == [], name

    def test_site_rank_orders_the_plan(self):
        ranks = [c.site_rank for c in _all_candidates()
                 if c.template not in ("add_guard", "conditional_overwrite")]
        assert ranks == sorted(ranks)

    def test_count_edits_covers_enumeration(self):
        planned = count_edits(_DESIGN, _TOP, _SITES)
        assert planned >= len(_all_candidates())


class TestSites:
    def test_d13_sites_include_check_findings(self):
        sites = enumerate_sites("D13", use_faults=False)
        assert sites, "no sites at all"
        origins = {s.origin for s in sites}
        assert any(o.startswith("check:") for o in origins)
        assert "cone" in origins
        # Deterministic: same call, same list.
        again = enumerate_sites("D13", use_faults=False)
        assert [s.to_dict() for s in sites] == [s.to_dict() for s in again]

    def test_losscheck_bug_gets_rank_zero_sites(self):
        sites = enumerate_sites("D1", use_faults=False)
        loss = [s for s in sites if s.origin == "losscheck"]
        assert loss and all(s.rank == 0 for s in loss)
        assert any(s.signal == "symbols" for s in loss)

    def test_sites_are_deduplicated_by_best_rank(self):
        sites = enumerate_sites("D1", use_faults=False)
        keys = [(s.signal, s.line) for s in sites]
        assert len(keys) == len(set(keys))


class TestValidation:
    def test_baseline_reproduces_the_bug(self):
        baseline = baseline_result("D13")
        assert baseline.status == "symptomatic"
        assert baseline.symptoms == ("Incor.",)
        assert baseline.trace is not None

    def test_broken_candidate_is_classified_not_raised(self):
        from repro.repair.validate import validate_candidate

        baseline = baseline_result("D13")
        result = validate_candidate("D13", "module nonsense (", baseline)
        assert result.status == "parse-error"
        result = validate_candidate(
            "D13", "module other (input wire clk);\nendmodule\n", baseline
        )
        assert result.status == "elaborate-error"


@pytest.fixture(scope="module")
def d13_outcome():
    return run_repair(RepairConfig(
        bug_id="D13", budget=400, use_faults=False, stop_after=0,
    ))


class TestRepairEndToEnd:
    def test_d13_is_repaired_with_the_ground_truth_edit(self, d13_outcome):
        report = d13_outcome.report
        assert report["repaired"] is True
        best = report["best"]
        assert best["template"] == "assign_const"
        assert "count <= const 1" in best["description"]

    def test_report_shape(self, d13_outcome):
        report = d13_outcome.report
        assert report["schema"] == "repro.repair/v1"
        assert report["bug"] == "D13"
        assert report["baseline"]["symptoms"] == ["Incor."]
        counts = report["candidates"]
        assert counts["tried"] <= report["budget"]
        assert counts["planned"] >= counts["tried"]
        assert sum(counts["by_status"].values()) == counts["tried"]
        json.dumps(report)  # journal/report-serializable

    def test_report_is_byte_deterministic(self, d13_outcome):
        again = run_repair(RepairConfig(
            bug_id="D13", budget=400, use_faults=False, stop_after=0,
        ))
        assert render_repair_report(d13_outcome.report) == \
            render_repair_report(again.report)

    def test_patch_shows_only_the_semantic_edit(self, d13_outcome):
        best_id = d13_outcome.report["best"]["candidate"]
        assert best_id in d13_outcome.patches
        patch = unified_patch(
            "D13", best_id, d13_outcome.patches[best_id]
        )
        assert patch.startswith("--- a/")
        # Baseline is normalized through parse -> generate, so the
        # diff is the edit itself, not comment/formatting noise.
        changed = [
            line for line in patch.splitlines()
            if line.startswith(("+", "-"))
            and not line.startswith(("+++", "---"))
        ]
        assert 0 < len(changed) <= 4

    def test_journal_resume_skips_validated_candidates(self, tmp_path):
        journal = str(tmp_path / "repair.jsonl")
        config = RepairConfig(
            bug_id="D13", budget=40, use_faults=False,
            journal_path=journal, stop_after=0,
        )
        first = run_repair(config)
        lines = open(journal).read().count("\n")
        assert lines == first.report["candidates"]["tried"]
        # Resume: no new journal lines, identical report.
        second = run_repair(config)
        assert open(journal).read().count("\n") == lines
        assert render_repair_report(first.report) == \
            render_repair_report(second.report)


class TestRankingPins:
    """Waveform ranking is doing real work: the top-ranked candidate is
    strictly closer to the fixed reference than the median plausible
    candidate — full trace equivalence, or a strictly later first
    output divergence."""

    @pytest.mark.parametrize("bug_id", ["D1", "D4", "S1"])
    def test_top_candidate_beats_median_on_output_divergence(self, bug_id):
        outcome = run_repair(RepairConfig(bug_id=bug_id, use_faults=False))
        ranking = outcome.report["ranking"]
        assert len(ranking) >= 3, "need a candidate pool to rank"
        top = ranking[0]["metrics"]
        median = ranking[len(ranking) // 2]["metrics"]
        if top["equivalent"]:
            assert not median["equivalent"]
        else:
            top_cycle = top["output_divergence_cycle"]
            median_cycle = median["output_divergence_cycle"]
            assert median_cycle is not None
            assert top_cycle is None or top_cycle > median_cycle


class TestRepairCli:
    def test_unknown_bug_is_usage_error(self, capsys):
        assert main(["repair", "Z9"]) == 2

    def test_bad_budget_is_usage_error(self, capsys):
        assert main(["repair", "D13", "--budget", "0"]) == 2
        assert "--budget" in capsys.readouterr().err

    def test_unknown_template_is_usage_error(self, capsys):
        assert main(["repair", "D13", "--template", "magic"]) == 2
        assert "unknown template" in capsys.readouterr().err

    def test_repair_d13_exits_zero_and_reports(self, capsys, tmp_path):
        out_path = str(tmp_path / "repair.json")
        patches = str(tmp_path / "patches")
        code = main([
            "repair", "D13", "--no-faults", "--json",
            "-o", out_path, "--emit-patch", patches,
        ])
        assert code == 0
        report = json.loads(open(out_path).read())
        assert report["repaired"] is True
        import os

        assert any(
            name.endswith(".patch") for name in os.listdir(patches)
        )

    def test_no_repair_within_budget_exits_one(self, capsys):
        # One template that cannot fix D13, tiny budget.
        code = main([
            "repair", "D13", "--no-faults", "--budget", "5",
            "--template", "swap_blocking",
        ])
        assert code == 1
        assert "no repair found" in capsys.readouterr().out
