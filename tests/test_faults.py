"""Tests for repro.faults: models, injector, scoring, and campaigns."""

import json

import pytest

from repro.faults import (
    DATA_LOSS_KINDS,
    FIFO_DROP,
    GLITCH,
    SEU_REG,
    STUCK0,
    FaultCampaignConfig,
    FaultEvent,
    FaultSchedule,
    DetectionScorer,
    FaultInjector,
    InjectionError,
    case_seed,
    fault_targets,
    is_data_loss_fault,
    run_fault_campaign,
    sample_schedule,
    what_if,
    write_detection_report,
)
from repro.hdl import elaborate, parse
from repro.runtime import HAS_ALARM
from repro.sim import Simulator
from repro.testbed import load_design

FIFO_TOP = """
module top (input wire clk, input wire [7:0] d,
            input wire push, input wire pop,
            output wire [7:0] q, output wire empty);
    scfifo #(.LPM_WIDTH(8), .LPM_NUMWORDS(4)) f (
        .clock(clk), .data(d), .wrreq(push), .rdreq(pop),
        .q(q), .empty(empty)
    );
endmodule
"""

LOSS_BUGS = ("D1", "D2", "D3", "D4", "C2", "C4", "D11")


class TestFaultModels:
    def test_event_round_trip_and_describe(self):
        event = FaultEvent(cycle=7, kind=SEU_REG, target="count", bit=2)
        assert FaultEvent.from_dict(event.to_dict()) == event
        assert event.describe() == "seu_reg(count[2])@7"

    def test_schedule_round_trip(self):
        schedule = FaultSchedule(
            events=[FaultEvent(cycle=3, kind=STUCK0, target="busy")],
            label="x",
        )
        again = FaultSchedule.from_dict(schedule.to_dict())
        assert again.events == schedule.events
        assert again.label == "x"

    def test_fault_targets_discovers_surface(self):
        design = load_design("D2")
        targets = fault_targets(design.top)
        register_names = [name for name, _width in targets.registers]
        assert "rd_state" in register_names
        net_names = [name for name, _width in targets.nets]
        assert "clk" not in net_names  # inputs are not forced
        assert "out_fifo" in targets.fifos

    def test_sample_schedule_deterministic(self):
        module = load_design("D2").top
        first = sample_schedule(module, 42, events=3)
        second = sample_schedule(module, 42, events=3)
        assert first.events == second.events
        other = sample_schedule(module, 43, events=3)
        assert first.events != other.events

    def test_sample_schedule_respects_kinds(self):
        module = load_design("D2").top
        for seed in range(10):
            schedule = sample_schedule(
                module, seed, events=2, kinds=(FIFO_DROP,)
            )
            assert all(e.kind == FIFO_DROP for e in schedule)

    def test_is_data_loss_fault(self):
        loss = FaultSchedule(
            events=[FaultEvent(cycle=1, kind=FIFO_DROP, target="f")]
        )
        benign = FaultSchedule(
            events=[FaultEvent(cycle=1, kind=SEU_REG, target="r")]
        )
        assert is_data_loss_fault(loss)
        assert not is_data_loss_fault(benign)
        assert FIFO_DROP in DATA_LOSS_KINDS


class TestFaultInjector:
    def test_seu_flips_register_at_exact_cycle(self, counter_design):
        sim = Simulator(counter_design)
        schedule = [FaultEvent(cycle=3, kind=SEU_REG, target="count", bit=2)]
        injector = FaultInjector(sim, schedule)
        sim.step(3)
        assert sim["count"] == 0  # enable low: not yet injected
        sim.step()
        assert sim["count"] == 4  # bit 2 flipped at cycle 3
        assert len(injector.applied) == 1
        assert injector.applied[0].cycle == 3
        assert injector.done

    def test_stuck0_pins_register_until_release(self, counter_design):
        sim = Simulator(counter_design)
        sim["enable"] = 1
        FaultInjector(sim, [
            FaultEvent(cycle=2, kind=STUCK0, target="count", duration=3),
        ])
        sim.step(5)
        assert sim["count"] == 0  # held at zero through cycle 4
        sim.step(4)
        assert sim["count"] == 4  # released: counting resumed from 0

    def test_indefinite_stuck_lifted_by_detach(self, counter_design):
        sim = Simulator(counter_design)
        sim["enable"] = 1
        injector = FaultInjector(sim, [
            FaultEvent(cycle=0, kind=STUCK0, target="count"),
        ])
        sim.step(4)
        assert sim["count"] == 0
        injector.detach()
        assert "count" not in sim.forced
        sim.step(2)
        assert sim["count"] == 2

    def test_glitch_forces_for_one_cycle(self, counter_design):
        sim = Simulator(counter_design)
        injector = FaultInjector(sim, [
            FaultEvent(cycle=2, kind=GLITCH, target="count", bit=0),
        ])
        sim.step(3)
        assert sim["count"] == 1
        assert "count" in sim.forced
        sim.step()
        assert "count" not in sim.forced  # released after one cycle
        assert injector.applied[0].cycle == 2

    def test_fifo_drop_loses_one_entry(self):
        sim = Simulator(elaborate(parse(FIFO_TOP)))
        sim["push"] = 1
        for value in (10, 20, 30):
            sim["d"] = value
            sim.step()
        sim["push"] = 0
        FaultInjector(sim, [
            FaultEvent(cycle=sim.cycle, kind=FIFO_DROP, target="f"),
        ])
        sim.step()
        assert list(sim.ip_model("f").core.entries) == [20, 30]

    def test_unknown_target_raises_in_strict_mode(self, counter_design):
        sim = Simulator(counter_design)
        FaultInjector(sim, [
            FaultEvent(cycle=1, kind=SEU_REG, target="missing"),
        ])
        with pytest.raises(InjectionError):
            sim.step(2)

    def test_non_strict_mode_skips_bad_events(self, counter_design):
        sim = Simulator(counter_design)
        injector = FaultInjector(sim, [
            FaultEvent(cycle=1, kind=SEU_REG, target="missing"),
        ], strict=False)
        sim.step(3)
        assert injector.applied == []
        assert len(injector.skipped) == 1

    def test_what_if_rolls_back_to_golden_timeline(self, counter_design):
        sim = Simulator(counter_design)
        sim["enable"] = 1
        sim.step(5)
        outcome = what_if(
            sim,
            [FaultEvent(cycle=6, kind=STUCK0, target="count")],
            run=lambda s: (s.step(5), s["count"])[1],
        )
        assert outcome.value == 0  # faulted future saw the stuck counter
        assert outcome.cycles == 10
        assert len(outcome.applied) == 1
        # The golden timeline is untouched.
        assert sim.cycle == 5
        assert sim["count"] == 5
        assert sim.forced == {}
        sim.step(5)
        assert sim["count"] == 10


class TestDetectionScorer:
    def test_empty_schedule_has_no_effect(self):
        scorer = DetectionScorer("D2")
        score = scorer.score(FaultSchedule(events=[]))
        assert score.effect is False
        assert score.applied == 0
        assert all(
            outcome == "masked"
            for outcome in score.classifications().values()
        )

    def test_effectful_fault_is_scored(self):
        scorer = DetectionScorer("D2")
        # Pin the read-request line: the DMA engine visibly misbehaves.
        schedule = FaultSchedule(events=[
            FaultEvent(cycle=5, kind=STUCK0, target="rd_req"),
        ])
        score = scorer.score(schedule)
        assert score.effect is True
        outcomes = set(score.classifications().values())
        assert outcomes & {"detected", "missed", "false_silence"}

    def test_score_serializes_deterministically(self):
        scorer = DetectionScorer("D2")
        schedule = sample_schedule(scorer.module, 7)
        first = scorer.score(schedule).to_dict()
        second = scorer.score(schedule).to_dict()
        assert first == second
        json.dumps(first)  # journal-serializable


class TestFaultCampaign:
    def test_case_seed_is_order_independent(self):
        assert case_seed(0, "D1", 2) == case_seed(0, "D1", 2)
        assert case_seed(0, "D1", 2) != case_seed(0, "D2", 2)
        assert case_seed(0, "D1", 2) != case_seed(1, "D1", 2)

    def test_campaign_is_bit_deterministic(self, tmp_path):
        reports = []
        journals = []
        for run in ("one", "two"):
            config = FaultCampaignConfig(
                bugs=("D2", "C4"),
                faults_per_bug=3,
                output_dir=str(tmp_path / run),
            )
            report = run_fault_campaign(config, sleep=lambda s: None)
            reports.append(report.to_report())
            journals.append(
                open(config.resolved_journal_path(), "rb").read()
            )
        assert journals[0] == journals[1]
        assert reports[0] == reports[1]

    def test_interrupt_preserves_journal_and_resume_completes(
        self, tmp_path
    ):
        config = FaultCampaignConfig(
            bugs=("D2", "C4"),
            faults_per_bug=3,
            output_dir=str(tmp_path),
        )
        seen = []

        def interrupt_after_two(record):
            seen.append(record)
            if len(seen) == 2:
                raise KeyboardInterrupt()

        partial = run_fault_campaign(
            config, progress=interrupt_after_two, sleep=lambda s: None
        )
        assert partial.interrupted is True
        assert len(partial.records) == 2
        resumed = run_fault_campaign(config, sleep=lambda s: None)
        assert resumed.interrupted is False
        assert resumed.resumed == 2
        assert len(resumed.records) == 6
        # The resumed journal matches an uninterrupted run bit-for-bit.
        fresh_config = FaultCampaignConfig(
            bugs=("D2", "C4"),
            faults_per_bug=3,
            output_dir=str(tmp_path / "fresh"),
        )
        fresh = run_fault_campaign(fresh_config, sleep=lambda s: None)
        assert (
            open(config.resolved_journal_path(), "rb").read()
            == open(fresh_config.resolved_journal_path(), "rb").read()
        )
        assert resumed.to_report() == fresh.to_report()

    def test_fresh_run_discards_stale_journal(self, tmp_path):
        config = FaultCampaignConfig(
            bugs=("D2",), faults_per_bug=2, output_dir=str(tmp_path)
        )
        run_fault_campaign(config, sleep=lambda s: None)
        config.resume = False
        report = run_fault_campaign(config, sleep=lambda s: None)
        assert report.resumed == 0
        journal_lines = open(config.resolved_journal_path()).readlines()
        assert len(journal_lines) == 2  # not appended after stale records

    def test_unknown_bug_recorded_as_crash(self, tmp_path):
        config = FaultCampaignConfig(
            bugs=("NOPE",), faults_per_bug=1, output_dir=str(tmp_path)
        )
        report = run_fault_campaign(config, sleep=lambda s: None)
        assert report.taxonomy_counts()["crash"] == 1
        assert report.records[0]["status"] == "crash"
        assert "KeyError" in report.records[0]["error"]

    def test_losscheck_catches_data_loss_on_three_designs(self, tmp_path):
        """Acceptance: LossCheck flags injected data-loss faults on >= 3
        testbed designs with the default seed and sampling parameters."""
        config = FaultCampaignConfig(
            bugs=LOSS_BUGS, output_dir=str(tmp_path)
        )
        report = run_fault_campaign(config, sleep=lambda s: None)
        loss_designs = report.losscheck_loss_designs()
        assert len(loss_designs) >= 3
        detection = report.to_report()
        assert detection["schema"] == "repro.faults/v1"
        assert detection["losscheck_loss_designs"] == loss_designs

    def test_write_detection_report(self, tmp_path):
        config = FaultCampaignConfig(
            bugs=("D2",), faults_per_bug=2, output_dir=str(tmp_path)
        )
        report = run_fault_campaign(config, sleep=lambda s: None)
        path = str(tmp_path / "detection.json")
        write_detection_report(report, path)
        loaded = json.load(open(path))
        assert loaded["schema"] == "repro.faults/v1"
        assert loaded["cases"] == 2
        assert set(loaded["tools"]) == {
            "signalcat", "fsm", "stat", "dep", "losscheck",
        }


class TestHarnessWatchdog:
    def test_default_off_runs_normally(self):
        from repro.testbed import run_scenario

        observation = run_scenario("D9")
        assert observation is not None

    @pytest.mark.skipif(not HAS_ALARM, reason="platform lacks SIGALRM")
    def test_hung_scenario_aborts_with_diagnostic(self, monkeypatch):
        from repro.testbed import ScenarioHang, run_scenario
        from repro.testbed.scenarios import SCENARIOS

        def hang_forever(sim):
            sim.step(5)
            while True:
                pass

        monkeypatch.setitem(SCENARIOS, "D2", hang_forever)
        with pytest.raises(ScenarioHang) as excinfo:
            run_scenario("D2", watchdog=0.2)
        message = str(excinfo.value)
        assert "watchdog at cycle 5" in message
        assert "rd_state" in message  # names the detected FSM states
