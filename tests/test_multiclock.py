"""Tests for multi-clock simulation and the dual-clock FIFO in a design."""

from repro.hdl import elaborate, parse
from repro.sim import Simulator

DUAL = """
module dual_domain (
    input wire wr_clk,
    input wire rd_clk,
    input wire [7:0] din,
    input wire push,
    input wire pop,
    output wire [7:0] dout,
    output wire empty,
    output wire full,
    output reg [7:0] rd_count
);
    dcfifo #(.LPM_WIDTH(8), .LPM_NUMWORDS(4)) xing (
        .wrclk(wr_clk),
        .rdclk(rd_clk),
        .data(din),
        .wrreq(push),
        .rdreq(pop),
        .q(dout),
        .rdempty(empty),
        .wrfull(full)
    );

    always @(posedge rd_clk) begin
        if (pop) rd_count <= rd_count + 1;
    end
endmodule
"""


def dual():
    return Simulator(elaborate(parse(DUAL), top="dual_domain"))


class TestDualClockDesign:
    def test_write_domain_only(self):
        sim = dual()
        sim["din"] = 0xAB
        sim["push"] = 1
        sim.step(clock="wr_clk")
        sim["push"] = 0
        sim.settle()
        assert sim["empty"] == 0
        # The read-domain register never ticked.
        assert sim["rd_count"] == 0

    def test_cross_domain_transfer(self):
        sim = dual()
        for value in (1, 2, 3):
            sim["din"] = value
            sim["push"] = 1
            sim.step(clock="wr_clk")
        sim["push"] = 0
        received = []
        sim["pop"] = 1
        for _ in range(3):
            sim.step(clock="rd_clk")
            received.append(sim["dout"])
        assert received == [1, 2, 3]
        assert sim["rd_count"] == 3

    def test_read_clock_does_not_advance_write_logic(self):
        sim = dual()
        sim["din"] = 9
        sim["push"] = 1
        # Stepping the READ clock must not perform the write.
        sim.step(clock="rd_clk")
        sim.settle()
        assert sim["empty"] == 1

    def test_full_flag_in_write_domain(self):
        sim = dual()
        sim["push"] = 1
        for value in range(5):
            sim["din"] = value
            sim.step(clock="wr_clk")
        sim.settle()
        assert sim["full"] == 1
        assert sim.ip_model("xing").core.dropped_writes == 1

    def test_separate_cycle_counters_share_global_count(self):
        sim = dual()
        sim.step(clock="wr_clk", cycles=2)
        sim.step(clock="rd_clk", cycles=3)
        assert sim.cycle == 5  # one global cycle count across domains
