"""Tests for repro.flow: solver, def-use, domains, and L04xx checkers."""

import json
import os

import pytest

from repro.diag.check import build_check_report, check_text, render_check_report
from repro.flow import (
    analyze_flow,
    build_def_use,
    build_signal_graph,
    infer_domains,
    payload_identifiers,
    payload_slice,
    reachable,
    reaching_definitions,
    solve,
)
from repro.hdl import elaborate, parse
from repro.hdl.parser import parse_expression
from repro.sim.simulator import CombinationalLoopError, Simulator
from repro.testbed import BUG_IDS, load_design

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "flow")


def fixture_design(name, top=None):
    with open(os.path.join(FIXTURES, name + ".v")) as handle:
        text = handle.read()
    return elaborate(parse(text), top=top or name)


def flow_of(text, top):
    return analyze_flow(elaborate(parse(text), top=top), filename=top)


def codes_of(report):
    return [d.code for d in report.diagnostics]


# ---------------------------------------------------------------------------
# Fixpoint solver
# ---------------------------------------------------------------------------


class TestSolver:
    def test_transitive_closure_fixpoint(self):
        deps = {"c": {"b"}, "b": {"a"}}
        seeds = {"a": frozenset(["x"])}

        def transfer(node, values):
            fact = set(seeds.get(node, ()))
            for src in deps.get(node, ()):
                fact.update(values.get(src, ()))
            return frozenset(fact)

        result = solve({"a", "b", "c"}, deps, transfer)
        assert result.converged
        assert result.values["c"] == frozenset(["x"])

    def test_cyclic_dependencies_converge(self):
        deps = {"a": {"b"}, "b": {"a"}}

        def transfer(node, values):
            fact = {node}
            for src in deps.get(node, ()):
                fact.update(values.get(src, ()))
            return frozenset(fact)

        result = solve({"a", "b"}, deps, transfer)
        assert result.converged
        assert result.values["a"] == frozenset(["a", "b"])

    def test_iteration_cap_reports_divergence(self):
        # A non-monotone transfer that never stabilizes must hit the cap
        # and report converged=False instead of hanging.
        flip = {}

        def transfer(node, values):
            flip[node] = not flip.get(node, False)
            return frozenset(["t"]) if flip[node] else frozenset()

        result = solve({"a"}, {"a": {"a"}}, transfer, max_iterations=16)
        assert not result.converged

    def test_determinism(self):
        deps = {"c": {"a", "b"}, "b": {"a"}}

        def transfer(node, values):
            fact = {node}
            for src in deps.get(node, ()):
                fact.update(values.get(src, ()))
            return frozenset(fact)

        first = solve({"a", "b", "c"}, deps, transfer)
        second = solve({"c", "b", "a"}, deps, transfer)
        assert first.values == second.values
        assert first.iterations == second.iterations

    def test_reachable(self):
        edges = {"a": {"b"}, "b": {"c"}, "x": {"y"}}
        assert reachable(edges, "a") == ["a", "b", "c"]
        assert reachable(edges, "c") == ["c"]


# ---------------------------------------------------------------------------
# Def-use chains and payload classification
# ---------------------------------------------------------------------------


DEFUSE = """
module defuse (
    input wire clk,
    input wire en,
    input wire [3:0] idx,
    input wire [7:0] din,
    output reg [7:0] dout
);
    reg [7:0] mem [0:15];
    always @(posedge clk) begin
        if (en) mem[idx] <= din;
        dout <= mem[0];
    end
endmodule
"""


class TestDefUse:
    def test_use_kinds(self):
        design = elaborate(parse(DEFUSE), top="defuse")
        chains = build_def_use(design.top if hasattr(design, "top") else design)
        assert {u.kind for u in chains.uses_of("din")} == {"data"}
        assert {u.kind for u in chains.uses_of("en")} == {"control"}
        assert {u.kind for u in chains.uses_of("idx")} == {"index"}
        assert [r.target for r in chains.defs_of("dout")] == ["dout"]
        assert "mem" in chains.signals()

    def test_payload_identifiers(self):
        expr = parse_expression("(sel == 2'd1) ? (a + b) : (c > t ? d : e)")
        names = payload_identifiers(expr)
        # Selects and comparison operands are verdicts, not payload.
        assert set(names) == {"a", "b", "d", "e"}
        assert "sel" not in names and "t" not in names and "c" not in names

    def test_reaching_definitions(self):
        text = """
module reach (input wire clk, input wire [7:0] din, output reg [7:0] a,
              output reg [7:0] b);
    always @(posedge clk) begin
        a <= din;
        b <= a + 1;
    end
endmodule
"""
        design = elaborate(parse(text), top="reach")
        module = design.top if hasattr(design, "top") else design
        reaching = reaching_definitions(module)
        # b's value can carry a's definition (one cycle later).
        assert any(label.startswith("a:") for label in reaching["b"])

    def test_payload_slice_excludes_verdict_registers(self):
        design = fixture_design("routed_pipeline")
        module = design.top if hasattr(design, "top") else design
        regs = payload_slice(module, "in_data", "out_q")
        assert "stage_a" in regs and "stage_b" in regs
        assert "route_sel" not in regs and "threshold" not in regs


# ---------------------------------------------------------------------------
# Clock-domain inference
# ---------------------------------------------------------------------------


class TestClockDomains:
    def test_registers_pin_their_domain(self):
        design = fixture_design("sync_2ff")
        module = design.top if hasattr(design, "top") else design
        domains = infer_domains(module)
        assert domains.converged
        assert domains.clocks == ["clk_a", "clk_b"]
        assert domains.of("flag_a") == frozenset(["clk_a"])
        # The synchronizer stages re-time into clk_b.
        assert domains.of("sync_0") == frozenset(["clk_b"])
        assert domains.of("dout") == frozenset(["clk_b"])

    def test_input_ports_have_no_domain(self):
        design = fixture_design("sync_2ff")
        module = design.top if hasattr(design, "top") else design
        domains = infer_domains(module)
        assert domains.of("din") == frozenset()

    def test_ip_port_clocks(self, multiclock_design=None):
        text = """
module dualip (
    input wire wr_clk,
    input wire rd_clk,
    input wire [7:0] din,
    input wire push,
    input wire pop,
    output wire [7:0] dout,
    output wire empty,
    output wire full
);
    reg [7:0] q_reg;
    dcfifo #(.LPM_WIDTH(8), .LPM_NUMWORDS(4)) xing (
        .wrclk(wr_clk), .rdclk(rd_clk), .data(din), .wrreq(push),
        .rdreq(pop), .q(dout), .rdempty(empty), .wrfull(full)
    );
    always @(posedge rd_clk) q_reg <= dout;
endmodule
"""
        design = elaborate(parse(text), top="dualip")
        module = design.top if hasattr(design, "top") else design
        domains = infer_domains(module)
        # The FIFO re-times its q/rdempty outputs into the read clock
        # and wrfull into the write clock.
        assert domains.of("dout") == frozenset(["rd_clk"])
        assert domains.of("empty") == frozenset(["rd_clk"])
        assert domains.of("full") == frozenset(["wr_clk"])
        # Capturing dout in rd_clk is therefore NOT a crossing.
        report = analyze_flow(design, filename="dualip")
        assert not [d for d in report.diagnostics if d.code in ("L0402", "L0403")]


# ---------------------------------------------------------------------------
# L0401: static combinational loops, in agreement with the simulator
# ---------------------------------------------------------------------------


class TestCombLoop:
    def test_static_report_before_simulation(self):
        design = fixture_design("comb_loop")
        report = analyze_flow(design, filename="comb_loop")
        errors = [d for d in report.diagnostics if d.code == "L0401"]
        assert len(errors) == 1
        assert errors[0].severity.value == "error"
        assert report.loops == [["a", "b"]]

    def test_agrees_with_simulator_signal_set(self):
        """The satellite fix: L0401 names the simulator's unstable set."""
        design = fixture_design("comb_loop")
        report = analyze_flow(design, filename="comb_loop")
        with pytest.raises(CombinationalLoopError) as excinfo:
            Simulator(design).run(2)
        message = str(excinfo.value)
        runtime = sorted(
            name.strip()
            for name in message.split("still changing:")[1].split(",")
            if name.strip() and name.strip() != "<memory writes>"
        )
        assert report.loops == [runtime]

    def test_settling_designs_stay_quiet(self):
        text = """
module nolod (input wire clk, input wire a, output reg q);
    wire x;
    wire y;
    assign x = a & y;
    assign y = ~a;
    always @(posedge clk) q <= x;
endmodule
"""
        report = flow_of(text, "nolod")
        assert "L0401" not in codes_of(report)


# ---------------------------------------------------------------------------
# L0402/L0403: clock-domain crossings
# ---------------------------------------------------------------------------


class TestCDC:
    def test_clean_synchronizer(self):
        report = analyze_flow(fixture_design("sync_2ff"), filename="sync_2ff")
        assert report.diagnostics == []

    def test_gray_coded_pointer_accepted(self):
        report = analyze_flow(
            fixture_design("gray_crossing"), filename="gray_crossing"
        )
        assert report.diagnostics == []

    def test_direct_crossing_flagged_both_ways(self):
        report = analyze_flow(
            fixture_design("direct_crossing"), filename="direct_crossing"
        )
        codes = codes_of(report)
        assert "L0402" in codes, "logic fed by another domain"
        assert "L0403" in codes, "multi-bit capture without gray/handshake"
        messages = " ".join(d.message for d in report.diagnostics)
        assert "flag_a" in messages and "data_a" in messages


# ---------------------------------------------------------------------------
# L0404/L0405: races
# ---------------------------------------------------------------------------


class TestRaces:
    def test_write_write_race(self):
        text = """
module wwrace(input wire clk, input wire a, input wire b, output reg r);
  always @(posedge clk) if (a) r <= 1;
  always @(posedge clk) if (b) r <= 0;
endmodule
"""
        report = flow_of(text, "wwrace")
        assert "L0404" in codes_of(report)

    def test_provably_disjoint_conditions_accepted(self):
        text = """
module disjoint(input wire clk, input wire sel, output reg r);
  always @(posedge clk) if (sel) r <= 1;
  always @(posedge clk) if (!sel) r <= 0;
endmodule
"""
        report = flow_of(text, "disjoint")
        assert "L0404" not in codes_of(report)

    def test_mixed_blocking_nonblocking_drivers(self):
        text = """
module mixed(input wire clk, input wire a, input wire b, output reg r,
             output reg q);
  always @(posedge clk) begin
    r = a;
    q <= r & b;
  end
  always @(posedge clk) if (b) r <= 0;
endmodule
"""
        report = flow_of(text, "mixed")
        assert "L0405" in codes_of(report)


# ---------------------------------------------------------------------------
# L0406: read-before-reset
# ---------------------------------------------------------------------------


class TestReadBeforeReset:
    POSITIVE = """
module rbr(input wire clk, input wire rst, input wire en, input wire d,
           output reg q);
  reg mode;
  always @(posedge clk) begin
    if (rst) q <= 0;
    else if (mode) q <= d;
  end
  always @(posedge clk) if (en) mode <= d;
endmodule
"""

    def test_unreset_steering_register_flagged(self):
        report = flow_of(self.POSITIVE, "rbr")
        findings = [d for d in report.diagnostics if d.code == "L0406"]
        assert findings and "mode" in findings[0].message

    def test_reset_register_accepted(self):
        text = self.POSITIVE.replace(
            "if (en) mode <= d;", "if (rst) mode <= 0; else if (en) mode <= d;"
        )
        report = flow_of(text, "rbr")
        assert "L0406" not in codes_of(report)

    def test_data_only_registers_accepted(self):
        # A conventional unreset datapath register (reads in data
        # positions only) is idiomatic, not a defect.
        text = """
module pipe(input wire clk, input wire rst, input wire [7:0] d,
            output reg [7:0] q);
  reg [7:0] stage;
  always @(posedge clk) begin
    if (rst) q <= 0;
    else q <= stage;
  end
  always @(posedge clk) stage <= d;
endmodule
"""
        report = flow_of(text, "pipe")
        assert "L0406" not in codes_of(report)


# ---------------------------------------------------------------------------
# L0407: unreachable FSM states
# ---------------------------------------------------------------------------


class TestFSMReachability:
    def test_unreachable_state_flagged(self):
        text = """
module fsm(input wire clk, input wire rst, input wire go, output reg out);
  localparam S0 = 0;
  localparam S1 = 1;
  localparam S3 = 3;
  reg [1:0] state;
  always @(posedge clk) begin
    if (rst) state <= S0;
    else case (state)
      S0: if (go) state <= S1;
      S1: state <= S0;
      S3: state <= S0;
    endcase
  end
  always @(posedge clk) out <= (state == S1);
endmodule
"""
        report = flow_of(text, "fsm")
        findings = [d for d in report.diagnostics if d.code == "L0407"]
        assert findings and "state 3" in findings[0].message

    def test_fully_reachable_fsm_accepted(self):
        text = """
module okfsm(input wire clk, input wire rst, input wire go, output reg out);
  localparam S0 = 0;
  localparam S1 = 1;
  reg state;
  always @(posedge clk) begin
    if (rst) state <= S0;
    else case (state)
      S0: if (go) state <= S1;
      S1: state <= S0;
    endcase
  end
  always @(posedge clk) out <= (state == S1);
endmodule
"""
        report = flow_of(text, "okfsm")
        assert "L0407" not in codes_of(report)


# ---------------------------------------------------------------------------
# Testbed snapshot: precision over the 20 documented bugs
# ---------------------------------------------------------------------------


class TestTestbedSnapshot:
    def test_no_error_severity_false_positives(self):
        """The precision gate: error-severity flow findings would break
        `repro check` on known-good-to-simulate designs."""
        for bug_id in BUG_IDS:
            report = analyze_flow(load_design(bug_id), filename=bug_id)
            assert report.converged, bug_id
            errors = [
                d for d in report.diagnostics if d.severity.value == "error"
            ]
            assert not errors, (bug_id, [d.message for d in errors])

    def test_communication_bugs_flagged(self):
        """At least one of C1-C4 trips the CDC/communication rules."""
        flagged = set()
        for bug_id in ("C1", "C2", "C3", "C4"):
            report = analyze_flow(load_design(bug_id), filename=bug_id)
            if any(d.code in ("L0402", "L0403") for d in report.diagnostics):
                flagged.add(bug_id)
        assert flagged, "no communication bug flagged by the CDC rules"

    def test_c1_circular_handshake(self):
        report = analyze_flow(load_design("C1"), filename="C1")
        findings = [d for d in report.diagnostics if d.code == "L0402"]
        assert findings and "circular handshake" in findings[0].message
        fixed = analyze_flow(load_design("C1", fixed=True), filename="C1")
        assert "L0402" not in codes_of(fixed)

    def test_c3_valid_data_skew(self):
        report = analyze_flow(load_design("C3"), filename="C3")
        skew = [
            d
            for d in report.diagnostics
            if d.code == "L0402" and "out of sync" in d.message
        ]
        assert skew and "final_response" in skew[0].message
        fixed = analyze_flow(load_design("C3", fixed=True), filename="C3")
        assert not [
            d
            for d in fixed.diagnostics
            if d.code == "L0402" and "out of sync" in d.message
        ]

    def test_c2_unreachable_fsm_state(self):
        report = analyze_flow(load_design("C2"), filename="C2")
        assert "L0407" in codes_of(report)


# ---------------------------------------------------------------------------
# `repro check` integration
# ---------------------------------------------------------------------------


class TestCheckIntegration:
    def test_flow_rules_in_report(self):
        with open(os.path.join(FIXTURES, "direct_crossing.v")) as handle:
            text = handle.read()
        result = check_text(text, filename="direct_crossing.v")
        codes = {d.code for d in result.sink.diagnostics}
        assert "L0402" in codes and "L0403" in codes
        flow_modules = [m for m in result.modules if "flow" in m.tools]
        assert flow_modules

    def test_select_flow_rules(self):
        with open(os.path.join(FIXTURES, "direct_crossing.v")) as handle:
            text = handle.read()
        result = check_text(text, filename="x.v", select=("L04",))
        assert result.sink.diagnostics
        assert all(
            d.code.startswith("L04") for d in result.sink.diagnostics
        )

    def test_strict_fails_on_flow_warnings(self):
        with open(os.path.join(FIXTURES, "direct_crossing.v")) as handle:
            text = handle.read()
        assert check_text(text, filename="x.v").exit_code == 0
        assert check_text(text, filename="x.v", strict=True).exit_code == 1

    def test_comb_loop_is_error_exit(self):
        with open(os.path.join(FIXTURES, "comb_loop.v")) as handle:
            text = handle.read()
        result = check_text(text, filename="comb_loop.v")
        assert result.exit_code == 1
        assert "L0401" in {d.code for d in result.sink.diagnostics}

    def test_json_report_byte_deterministic_with_flow(self):
        with open(os.path.join(FIXTURES, "direct_crossing.v")) as handle:
            text = handle.read()

        def render():
            result = check_text(text, filename="direct_crossing.v")
            return render_check_report(build_check_report(result))

        first, second = render(), render()
        assert first == second
        parsed = json.loads(first)
        codes = {
            d["code"]
            for report in parsed["reports"]
            for d in report["diagnostics"]
        }
        assert "L0402" in codes


class TestFlowOracle:
    """The fuzz oracle wrapping the engine (termination + determinism)."""

    def test_passes_on_clean_fixture(self):
        from repro.fuzz.oracles import flow_oracle

        with open(os.path.join(FIXTURES, "sync_2ff.v")) as handle:
            outcome = flow_oracle(handle.read())
        assert outcome.status == "pass", outcome.detail

    def test_passes_with_findings(self):
        # A design full of L04xx findings still passes: the oracle
        # judges well-formedness, not cleanliness.
        from repro.fuzz.oracles import flow_oracle

        with open(os.path.join(FIXTURES, "direct_crossing.v")) as handle:
            outcome = flow_oracle(handle.read())
        assert outcome.status == "pass", outcome.detail

    def test_inapplicable_on_unparsable_input(self):
        from repro.fuzz.oracles import flow_oracle

        outcome = flow_oracle("module busted ( ;")
        assert outcome.status == "inapplicable"

    def test_generated_designs_terminate(self):
        from repro.fuzz.generator import generate_design
        from repro.fuzz.oracles import flow_oracle

        for seed in (3, 17, 41):
            design = generate_design(seed)
            outcome = flow_oracle(design.text, top=design.top, seed=seed)
            assert outcome.status == "pass", (seed, outcome.detail)

    def test_registered_in_campaign(self):
        from repro.fuzz.oracles import ORACLE_NAMES, ORACLES

        assert "flow" in ORACLE_NAMES and "flow" in ORACLES
