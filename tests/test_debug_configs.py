"""Tests for the per-bug debugging configurations (§6.3/§6.4 use case)."""

import pytest

from repro.hdl import ast
from repro.testbed import BUG_IDS, SPECS
from repro.testbed.debug_configs import (
    CONFIGS,
    DebugConfig,
    instrument_for_debugging,
)


class TestConfigurationCoverage:
    def test_every_bug_configured(self):
        assert set(CONFIGS) == set(BUG_IDS)

    def test_stat_events_everywhere(self):
        """Statistics Monitor is part of every debugging session."""
        for bug_id in BUG_IDS:
            assert CONFIGS[bug_id].stat_events

    def test_dep_targets_are_real_signals(self):
        from repro.testbed import load_design

        for bug_id in BUG_IDS:
            config = CONFIGS[bug_id]
            if config.dep_target is None:
                continue
            design = load_design(bug_id)
            assert design.top.find_declaration(config.dep_target) is not None, bug_id


class TestComposedInstrumentation:
    def test_structure(self):
        instr = instrument_for_debugging("D2", buffer_depth=512)
        instances = [
            i for i in instr.module.items if isinstance(i, ast.Instance)
        ]
        names = {i.module_name for i in instances}
        assert "signal_recorder" in names
        assert "scfifo" in names  # the design's own IP survives
        assert instr.generated_lines > 0
        assert instr.recorder_width > 0

    def test_all_tools_attached(self):
        instr = instrument_for_debugging("D3", buffer_depth=512)
        assert instr.fsm_monitor.fsms  # at least the dispatcher FSM
        assert instr.statistics_monitor.events
        assert instr.dependency_monitor is not None

    def test_dep_monitor_optional(self):
        instr = instrument_for_debugging("D1", buffer_depth=512)
        assert instr.dependency_monitor is None

    def test_buffer_depth_forwarded(self):
        instr = instrument_for_debugging("D8", buffer_depth=333)
        recorder = [
            i
            for i in instr.module.items
            if isinstance(i, ast.Instance) and i.module_name == "signal_recorder"
        ][0]
        params = {p.name: p.value.value for p in recorder.params}
        assert params["DEPTH"] == 333

    def test_fixed_variant_supported(self):
        instr = instrument_for_debugging("D8", buffer_depth=64, fixed=True)
        assert instr.module is not None


class TestRecorderWidths:
    """§6.4: the Optimus configurations sample wide words (and thus hit
    the recording IP's slow bin); the SHA512 configurations stay narrow."""

    def test_optimus_configs_are_wide(self):
        for bug_id in ("D3", "C2"):
            instr = instrument_for_debugging(bug_id, buffer_depth=1024)
            assert instr.recorder_width > 96, bug_id

    def test_sha512_configs_are_narrow(self):
        for bug_id in ("D5", "D10"):
            instr = instrument_for_debugging(bug_id, buffer_depth=1024)
            assert instr.recorder_width <= 96, bug_id


class TestDebugConfigDataclass:
    def test_defaults(self):
        config = DebugConfig()
        assert config.stat_events == {}
        assert config.dep_target is None
        assert config.dep_depth == 3
