// Fixture: one syntax error plus lint-visible defects in the module
// that parses — recovery must salvage `fsm` and lint must flag it.
module syntax_bad (
  input wire x,
  output wire y
);
  assign y = x &&;            // error: missing operand (P0203)
endmodule

module fsm (
  input wire clk,
  input wire rst,
  output reg [1:0] state
);
  reg [7:0] wide;
  reg unused_reg;             // lint: never read (L0302)
  always @(posedge clk) begin
    if (rst)
      state = 0;              // lint: blocking in edge-triggered (L0307)
    else
      case (state)
        2'b00: state <= 2'b01;
        2'b01: state <= 2'b10;
        2'b10: state <= wide; // lint: truncation (L0305)
      endcase                 // lint: no default (L0306)
  end
endmodule
