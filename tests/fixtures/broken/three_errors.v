// Fixture: three distinct syntax errors in one file; `repro check`
// must report all of them in a single run (panic-mode recovery).
module broken (
  input wire clk,
  input wire rst,
  output reg [3:0] count
);
  reg [3:0] next;
  assign = next;              // error 1: missing lvalue (P0203)
  always @(posedge clk) begin
    if (rst)
      count <= 0;
    else
      count <= ;              // error 2: missing rhs (P0203)
    next <= count + 1
  end                         // error 3: missing ';' (P0201)
endmodule
