// Fixture: lexical garbage plus structural damage; the lexer must
// report every bad character and the parser must still recover.
module garbage (
  input wire clk,
  output reg q
);
  reg ` x;                    // error: bad character (P0101)
  always @(posedge clk)
    q <= 1.5;                 // error: real literal (P0102)
endmodule

module truncated (
  input wire a,
  output wire b
);
  assign b = a;
