// A payload path with a provably-constant register riding along.
//
// `dbg_tag` is a debug tap that was wired off (`& 8'h00`) but left
// instantiated: it sits on the in_data -> out_q payload slice (its
// value feeds the sum), yet abstract interpretation proves it constant
// zero in every reachable state. The payload-slice prune alone keeps
// it; the absint constant cut drops it from LossCheck's monitored set.
module constant_tap (
    input wire clk,
    input wire rst,
    input wire in_valid,
    input wire [7:0] in_data,
    output reg [7:0] out_q
);
    reg [7:0] stage;
    reg [7:0] dbg_tag;

    always @(posedge clk) begin
        if (rst) begin
            stage <= 0;
            dbg_tag <= 0;
            out_q <= 0;
        end else begin
            if (in_valid) stage <= in_data;
            dbg_tag <= (in_data >> 4) & 8'h00;
            out_q <= stage + dbg_tag;
        end
    end
endmodule
