// Gray-coded pointer crossing (CDC negative fixture).
//
// The write pointer crosses from wr_clk to rd_clk as a gray code, so
// at most one bit changes per write and the 2-FF capture can never
// tear a multi-bit value. The multi-bit CDC rule (L0403) must accept
// this idiom.
module gray_crossing (
    input wire wr_clk,
    input wire rd_clk,
    input wire wr_en,
    output wire [3:0] rd_gray
);
    reg [3:0] wr_ptr;
    reg [3:0] wr_ptr_gray;
    reg [3:0] gray_sync_0;
    reg [3:0] gray_sync_1;

    always @(posedge wr_clk) begin
        if (wr_en) begin
            wr_ptr <= wr_ptr + 4'd1;
            wr_ptr_gray <= (wr_ptr + 4'd1) ^ ((wr_ptr + 4'd1) >> 1);
        end
    end

    always @(posedge rd_clk) begin
        gray_sync_0 <= wr_ptr_gray;
        gray_sync_1 <= gray_sync_0;
    end

    assign rd_gray = gray_sync_1;
endmodule
