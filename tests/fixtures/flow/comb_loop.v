// True combinational oscillator (L0401 / simulator agreement fixture).
//
// `a = ~b` with `b = a` admits no consistent assignment, so the settle
// loop can never converge: the simulator raises CombinationalLoopError
// naming {a, b}. The static checker must report the same signal set
// from the SCC of the combinational adjacency graph -- before any
// simulation runs. The clocked consumer keeps the loop live through
// elaboration.
module comb_loop (
    input wire clk,
    input wire in_bit,
    output reg out_q
);
    wire a;
    wire b;
    assign a = ~b;
    assign b = a;
    always @(posedge clk) out_q <= a ^ in_bit;
endmodule
