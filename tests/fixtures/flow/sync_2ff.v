// Clean two-flop synchronizer (CDC negative fixture).
//
// flag_a is registered in the clk_a domain and crosses into clk_b
// through a classic 2-FF synchronizer: a width-1 identity capture is
// the first synchronizer stage, so the flow CDC checker must stay
// quiet on this design.
module sync_2ff (
    input wire clk_a,
    input wire clk_b,
    input wire rst_b,
    input wire din,
    output reg dout
);
    reg flag_a;
    reg sync_0;
    reg sync_1;

    always @(posedge clk_a) flag_a <= din;

    always @(posedge clk_b) begin
        if (rst_b) begin
            sync_0 <= 0;
            sync_1 <= 0;
            dout <= 0;
        end else begin
            sync_0 <= flag_a;
            sync_1 <= sync_0;
            dout <= sync_1;
        end
    end
endmodule
