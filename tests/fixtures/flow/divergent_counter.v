// Widening stress: without widening, the interval on `count` climbs
// one step per fixpoint iteration ([0,0], [0,1], ... toward 65535) and
// the solver's cap would trip long before convergence. Widening at the
// sequential back-edge jumps the growing bound to the domain extreme
// after two visits, so the analysis converges in a handful of passes —
// and still proves the guard impossible: 17'h10000 does not fit in
// count's 16 bits, so `hit` can never be set (L0503; the L0501
// dead-branch finding is suppressed as explained by the L0503).
module divergent_counter (
    input wire clk,
    input wire rst,
    input wire en,
    output reg hit
);
    reg [15:0] count;

    always @(posedge clk) begin
        if (rst) begin
            count <= 0;
            hit <= 0;
        end else if (en) begin
            count <= count + 1;
            if (count == 17'h10000) hit <= 1;
        end
    end
endmodule
