// In-band configured routing pipeline (LossCheck prune fixture).
//
// The first beat of every frame is a header: its low bits select the
// transform applied to the following data beats and its high bits set
// a threshold used by the conditional transform. Because the header is
// carried on the data bus, the select and threshold registers are
// data-tainted -- they sit on the Source->Sink propagation path even
// though every read of them is a verdict (ternary select, comparison).
// LossCheck's default mode therefore monitors them; prune=True drops
// them from the monitored set because no payload bit of in_data can
// reach out_q through them.
module routed_pipeline (
    input wire clk,
    input wire rst,
    input wire in_valid,
    input wire [7:0] in_data,
    input wire out_ready,
    output reg [7:0] out_q,
    output reg out_valid
);
    reg hdr_seen;
    reg [1:0] route_sel;   // header[1:0]: transform select (verdict reads only)
    reg [3:0] threshold;   // header[7:4]: compare bound (verdict reads only)
    reg [7:0] stage_a;
    reg stage_vld;
    reg [7:0] stage_b;
    reg emit_pending;

    // Header capture: the select/threshold registers are written from
    // the data bus (payload-typed writes), which is what puts them on
    // the propagation path.
    always @(posedge clk) begin
        if (rst) begin
            hdr_seen <= 0;
            route_sel <= 0;
            threshold <= 0;
        end else if (in_valid && !hdr_seen) begin
            route_sel <= in_data[1:0];
            threshold <= in_data[7:4];
            hdr_seen <= 1;
        end
    end

    // Data staging: payload beats after the header.
    always @(posedge clk) begin
        if (rst) begin
            stage_vld <= 0;
        end else begin
            if (in_valid && hdr_seen) stage_a <= in_data;
            stage_vld <= in_valid && hdr_seen;
        end
    end

    // Transform: route_sel and threshold are read only inside the
    // ternary conditions -- verdict positions, not payload positions.
    always @(posedge clk) begin
        if (rst) begin
            emit_pending <= 0;
        end else if (stage_vld) begin
            stage_b <= (route_sel == 2'd1) ? (stage_a << 1)
                     : (route_sel == 2'd2) ? (stage_a ^ 8'hff)
                     : (stage_a > {4'h0, threshold}) ? (stage_a - 8'd1)
                     : stage_a;
            emit_pending <= 1;
        end else if (out_ready) begin
            emit_pending <= 0;
        end
    end

    // Output stage: stage_b is only handed off while the consumer is
    // ready; a beat that arrives while out_ready is low is overwritten
    // (the genuine loss point the bracketing should keep monitored).
    always @(posedge clk) begin
        if (rst) begin
            out_valid <= 0;
        end else begin
            out_valid <= emit_pending && out_ready;
            if (emit_pending && out_ready) out_q <= stage_b;
        end
    end
endmodule
