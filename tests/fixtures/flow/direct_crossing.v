// Unsynchronized clock-domain crossings (CDC positive fixture).
//
// Two distinct defects the flow CDC checker must flag:
//   * flag_a (clk_a domain) feeds combinational logic in the clk_b
//     block directly -- no synchronizer stage -> L0402;
//   * data_a (8 bits, clk_a domain) is captured whole in the clk_b
//     domain without gray coding or a handshake; independent bit
//     settling can tear the value -> L0403.
module direct_crossing (
    input wire clk_a,
    input wire clk_b,
    input wire [7:0] din,
    input wire din_en,
    output reg [7:0] dout,
    output reg flag_q
);
    reg [7:0] data_a;
    reg flag_a;

    always @(posedge clk_a) begin
        if (din_en) data_a <= din;
        flag_a <= din_en;
    end

    always @(posedge clk_b) begin
        dout <= data_a;
        flag_q <= flag_a & ~flag_q;
    end
endmodule
