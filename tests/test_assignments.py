"""Tests for assignment extraction and path constraints."""

from repro.analysis import analyze_module, expression_identifiers
from repro.hdl import parse_expression, generate_expression, elaborate, parse


def view_of(text, top=None):
    return analyze_module(elaborate(parse(text), top=top).top)


class TestPathConstraints:
    def test_unconditional(self):
        view = view_of(
            "module m (input wire clk, input wire d, output reg q);"
            " always @(posedge clk) q <= d; endmodule"
        )
        (record,) = view.assignments_to("q")
        assert record.condition is None

    def test_if_condition(self):
        view = view_of(
            "module m (input wire clk, input wire en, input wire d, output reg q);"
            " always @(posedge clk) if (en) q <= d; endmodule"
        )
        (record,) = view.assignments_to("q")
        assert generate_expression(record.condition) == "en"

    def test_else_negates(self):
        view = view_of(
            "module m (input wire clk, input wire en, output reg q);"
            " always @(posedge clk) if (en) q <= 1; else q <= 0; endmodule"
        )
        records = view.assignments_to("q")
        assert generate_expression(records[1].condition) == "!(en)"

    def test_nested_conditions_conjoin(self):
        view = view_of(
            "module m (input wire clk, input wire a, input wire b, output reg q);"
            " always @(posedge clk) if (a) if (b) q <= 1; endmodule"
        )
        (record,) = view.assignments_to("q")
        assert generate_expression(record.condition) == "(a && b)"

    def test_case_arm_condition(self):
        view = view_of(
            "module m (input wire clk, input wire [1:0] s, output reg q);"
            " always @(posedge clk) case (s) 1: q <= 1; endcase endmodule"
        )
        (record,) = view.assignments_to("q")
        assert generate_expression(record.condition) == "(s == 1)"

    def test_case_default_excludes_labels(self):
        view = view_of(
            "module m (input wire clk, input wire [1:0] s, output reg q);"
            " always @(posedge clk) case (s) 1: q <= 1; default: q <= 0;"
            " endcase endmodule"
        )
        records = view.assignments_to("q")
        default = records[1]
        assert "!(" in generate_expression(default.condition)

    def test_case_priority_excludes_earlier_labels(self):
        # Later arms implicitly exclude earlier matching labels.
        view = view_of(
            "module m (input wire clk, input wire [1:0] s, output reg q);"
            " always @(posedge clk) case (s) 0: q <= 0; 1: q <= 1;"
            " endcase endmodule"
        )
        second = view.assignments_to("q")[1]
        text = generate_expression(second.condition)
        assert "(s == 1)" in text and "!(" in text

    def test_sequential_flag_and_clock(self):
        view = view_of(
            "module m (input wire clk, input wire d, output reg q, output wire w);"
            " always @(posedge clk) q <= d; assign w = d; endmodule"
        )
        seq = view.assignments_to("q")[0]
        comb = view.assignments_to("w")[0]
        assert seq.sequential and seq.clock == "clk"
        assert not comb.sequential and comb.clock is None


class TestSources:
    def test_data_sources(self):
        view = view_of(
            "module m (input wire clk, input wire [3:0] a, input wire [3:0] b,"
            " input wire en, output reg [3:0] q);"
            " always @(posedge clk) if (en) q <= a + b; endmodule"
        )
        (record,) = view.assignments_to("q")
        assert set(record.data_sources) == {"a", "b"}
        assert record.control_sources == ["en"]

    def test_lhs_index_counts_as_data_source(self):
        view = view_of(
            "module m (input wire clk, input wire [2:0] i, input wire d);"
            " reg [7:0] w; always @(posedge clk) w[i] <= d; endmodule"
        )
        (record,) = view.assignments_to("w")
        assert "i" in record.data_sources

    def test_concat_lvalue_two_targets(self):
        view = view_of(
            "module m (input wire clk, input wire [7:0] v);"
            " reg [3:0] a; reg [3:0] b;"
            " always @(posedge clk) {a, b} <= v; endmodule"
        )
        assert view.assignments_to("a") and view.assignments_to("b")

    def test_assignments_reading(self):
        view = view_of(
            "module m (input wire clk, input wire x, output reg q, output reg r);"
            " always @(posedge clk) begin q <= x; if (x) r <= 1; end endmodule"
        )
        readers = {a.target for a in view.assignments_reading("x")}
        assert readers == {"q", "r"}


class TestDisplays:
    def test_display_condition_and_index(self):
        view = view_of(
            'module m (input wire clk, input wire go, input wire [3:0] x);'
            ' always @(posedge clk) begin'
            ' if (go) $display("a %d", x);'
            ' $display("b");'
            ' end endmodule'
        )
        assert len(view.displays) == 2
        assert generate_expression(view.displays[0].condition) == "go"
        assert view.displays[1].condition is None
        assert [d.index for d in view.displays] == [0, 1]
        assert view.displays[0].argument_names == ["x"]


class TestExpressionIdentifiers:
    def test_order_and_duplicates(self):
        names = expression_identifiers(parse_expression("a + b[a] + a"))
        assert names == ["a", "b", "a", "a"]
