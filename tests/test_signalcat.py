"""Tests for SignalCat (§4.1): unified simulation/on-FPGA logging."""

import pytest

from repro.core import Mode, SignalCat
from repro.hdl import ast, elaborate, parse

PKTCOUNT = """
module pktcount (
    input wire clk,
    input wire pkt_valid,
    input wire [7:0] pkt,
    output reg [15:0] count
);
    always @(posedge clk) begin
        if (pkt_valid) begin
            count <= count + 1;
            $display("packet %h arrived, total %d", pkt, count);
        end
    end
endmodule
"""

TWO_STATEMENTS = """
module two (
    input wire clk,
    input wire a,
    input wire b,
    input wire [3:0] x
);
    always @(posedge clk) begin
        if (a) $display("A fired x=%d", x);
        if (b) $display("B fired");
    end
endmodule
"""


def pktcount_design():
    return elaborate(parse(PKTCOUNT), top="pktcount")


def drive_packets(sim, values=(0xAA, 0xBB, 0xCC)):
    for value in values:
        sim["pkt"] = value
        sim["pkt_valid"] = 1
        sim.step()
        sim["pkt_valid"] = 0
        sim.step()


class TestSimulationMode:
    def test_log_from_native_displays(self):
        sc = SignalCat(pktcount_design(), mode=Mode.SIMULATION)
        log = sc.run(drive_packets)
        assert [e.text for e in log] == [
            "packet aa arrived, total 0",
            "packet bb arrived, total 1",
            "packet cc arrived, total 2",
        ]

    def test_statement_index_resolved(self):
        sc = SignalCat(pktcount_design(), mode=Mode.SIMULATION)
        log = sc.run(drive_packets)
        assert all(e.statement_index == 0 for e in log)

    def test_no_instrumentation_in_sim_mode(self):
        sc = SignalCat(pktcount_design(), mode=Mode.SIMULATION)
        assert sc.generated_line_count() == 0


class TestOnFpgaMode:
    def test_logs_identical_across_modes(self):
        """The paper's core claim: one interface, both contexts."""
        sim_log = SignalCat(pktcount_design(), mode=Mode.SIMULATION).run(
            drive_packets
        )
        fpga_log = SignalCat(
            pktcount_design(), mode=Mode.ON_FPGA, buffer_depth=64
        ).run(drive_packets)
        assert [(e.cycle, e.text) for e in sim_log] == [
            (e.cycle, e.text) for e in fpga_log
        ]

    def test_displays_removed_from_design(self):
        sc = SignalCat(pktcount_design(), mode=Mode.ON_FPGA)
        displays = [
            n
            for item in sc.module.items
            if isinstance(item, ast.Always)
            for n in item.body.walk()
            if isinstance(n, ast.Display)
        ]
        assert displays == []

    def test_recorder_instantiated(self):
        sc = SignalCat(pktcount_design(), mode=Mode.ON_FPGA, buffer_depth=128)
        instances = [
            i for i in sc.module.items if isinstance(i, ast.Instance)
        ]
        assert instances[0].module_name == "signal_recorder"
        params = {p.name: p.value.value for p in instances[0].params}
        assert params["DEPTH"] == 128
        # 1 flag bit + 8-bit pkt + 16-bit count.
        assert params["WIDTH"] == 25
        assert sc.word_width == 25

    def test_multiple_statements_flags(self):
        design = elaborate(parse(TWO_STATEMENTS), top="two")
        sc = SignalCat(design, mode=Mode.ON_FPGA, buffer_depth=32)

        def drive(sim):
            sim["x"] = 7
            sim["a"] = 1
            sim.step()
            sim["a"] = 0
            sim["b"] = 1
            sim.step()
            sim["a"] = 1  # both in the same cycle
            sim.step()

        log = sc.run(drive)
        texts = [e.text for e in log]
        assert texts == [
            "A fired x=7",
            "B fired",
            "A fired x=7",
            "B fired",
        ]
        assert [e.statement_index for e in log] == [0, 1, 0, 1]

    def test_circular_buffer_drops_oldest(self):
        sc = SignalCat(pktcount_design(), mode=Mode.ON_FPGA, buffer_depth=2)
        log = sc.run(drive_packets)
        assert [e.text for e in log] == [
            "packet bb arrived, total 1",
            "packet cc arrived, total 2",
        ]

    def test_generated_lines_counted(self):
        sc = SignalCat(pktcount_design(), mode=Mode.ON_FPGA)
        assert sc.generated_line_count() > 5
        assert "signal_recorder" in sc.generated_verilog()

    def test_no_displays_no_recorder(self):
        design = elaborate(
            parse(
                "module quiet (input wire clk, output reg q);"
                " always @(posedge clk) q <= ~q; endmodule"
            )
        )
        sc = SignalCat(design, mode=Mode.ON_FPGA)
        assert not [i for i in sc.module.items if isinstance(i, ast.Instance)]
        assert sc.run(lambda sim: sim.step(3)) == []


class TestStartStopEvents:
    def test_start_event_gates_recording(self):
        sc = SignalCat(
            pktcount_design(),
            mode=Mode.ON_FPGA,
            buffer_depth=64,
            start_event="count >= 1",
        )
        log = sc.run(drive_packets)
        # The first packet (count still 0) is not recorded.
        assert [e.text for e in log] == [
            "packet bb arrived, total 1",
            "packet cc arrived, total 2",
        ]

    def test_stop_event_ends_recording(self):
        sc = SignalCat(
            pktcount_design(),
            mode=Mode.ON_FPGA,
            buffer_depth=64,
            start_event="1",
            stop_event="count >= 2",
        )
        log = sc.run(drive_packets)
        assert [e.text for e in log] == [
            "packet aa arrived, total 0",
            "packet bb arrived, total 1",
        ]

    def test_format_log(self):
        sc = SignalCat(pktcount_design(), mode=Mode.SIMULATION)
        log = sc.run(drive_packets)
        text = sc.format_log(log)
        assert "packet aa arrived" in text
        assert text.count("\n") == 2
