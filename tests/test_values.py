"""Tests for two-state value semantics and width rules."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl import ast, elaborate, parse, parse_expression
from repro.sim.values import (
    Evaluator,
    SymbolTable,
    mask,
    read_array,
    self_width,
    write_array,
)


def make_env(widths, arrays=None):
    """Build a SymbolTable + Evaluator from {name: width} declarations."""
    items = []
    for name, width in widths.items():
        items.append(
            ast.Declaration(
                kind=ast.NetKind.REG,
                name=name,
                width=ast.Width(
                    msb=ast.Number(value=width - 1), lsb=ast.Number(value=0)
                ),
            )
        )
    for name, (width, depth) in (arrays or {}).items():
        items.append(
            ast.Declaration(
                kind=ast.NetKind.REG,
                name=name,
                width=ast.Width(
                    msb=ast.Number(value=width - 1), lsb=ast.Number(value=0)
                ),
                array=ast.Width(
                    msb=ast.Number(value=0), lsb=ast.Number(value=depth - 1)
                ),
            )
        )
    module = ast.Module(name="env", items=items)
    symbols = SymbolTable(module)
    return symbols, Evaluator(symbols)


class TestSelfWidth:
    def test_identifier(self):
        symbols, _ = make_env({"a": 8})
        assert self_width(parse_expression("a"), symbols) == 8

    def test_unsized_number_is_32(self):
        symbols, _ = make_env({})
        assert self_width(parse_expression("7"), symbols) == 32

    def test_sized_number(self):
        symbols, _ = make_env({})
        assert self_width(parse_expression("4'd7"), symbols) == 4

    def test_bit_select_is_one(self):
        symbols, _ = make_env({"a": 8, "i": 3})
        assert self_width(parse_expression("a[i]"), symbols) == 1

    def test_array_element_width(self):
        symbols, _ = make_env({"i": 4}, arrays={"m": (8, 16)})
        assert self_width(parse_expression("m[i]"), symbols) == 8

    def test_part_select(self):
        symbols, _ = make_env({"a": 16})
        assert self_width(parse_expression("a[11:4]"), symbols) == 8

    def test_concat_sums(self):
        symbols, _ = make_env({"a": 8, "b": 4})
        assert self_width(parse_expression("{a, b}"), symbols) == 12

    def test_replication(self):
        symbols, _ = make_env({"a": 3})
        assert self_width(parse_expression("{4{a}}"), symbols) == 12

    def test_comparison_is_one_bit(self):
        symbols, _ = make_env({"a": 8, "b": 8})
        assert self_width(parse_expression("a == b"), symbols) == 1

    def test_arith_takes_max(self):
        symbols, _ = make_env({"a": 8, "b": 12})
        assert self_width(parse_expression("a + b"), symbols) == 12

    def test_shift_takes_left(self):
        symbols, _ = make_env({"a": 8, "b": 12})
        assert self_width(parse_expression("a << b"), symbols) == 8

    def test_size_cast(self):
        symbols, _ = make_env({"a": 64})
        assert self_width(parse_expression("42'(a)"), symbols) == 42


class TestEvaluation:
    def test_truncation_bug_semantics(self):
        """The paper's section 3.2.2 example: cast-before-shift loses bits."""
        symbols, ev = make_env({"right": 64})
        state = {"right": 0x0000FC00000000C0}
        buggy = ev.eval(parse_expression("42'(right) >> 6"), state, 42)
        fixed = ev.eval(parse_expression("42'(right >> 6)"), state, 42)
        assert fixed == (state["right"] >> 6) & mask(42)
        assert buggy != fixed

    def test_unsigned_wraparound_compare(self):
        """a - 1 > 0 with a == 0 wraps like hardware, not like Python."""
        symbols, ev = make_env({"a": 8})
        assert ev.eval(parse_expression("a - 1 > 0"), {"a": 0}) == 1

    def test_addition_carry_kept_for_wider_context(self):
        symbols, ev = make_env({"a": 8, "b": 8})
        state = {"a": 255, "b": 1}
        assert ev.eval(parse_expression("a + b"), state, ctx_width=9) == 256

    def test_addition_carry_lost_at_self_width(self):
        symbols, ev = make_env({"a": 8, "b": 8})
        state = {"a": 255, "b": 1}
        assert ev.eval(parse_expression("a + b"), state, ctx_width=8) == 0

    def test_division_by_zero_is_zero(self):
        symbols, ev = make_env({"a": 8, "b": 8})
        assert ev.eval(parse_expression("a / b"), {"a": 5, "b": 0}) == 0
        assert ev.eval(parse_expression("a % b"), {"a": 5, "b": 0}) == 0

    def test_reduction_operators(self):
        symbols, ev = make_env({"a": 4})
        assert ev.eval(parse_expression("&a"), {"a": 0xF}) == 1
        assert ev.eval(parse_expression("&a"), {"a": 0xE}) == 0
        assert ev.eval(parse_expression("|a"), {"a": 0}) == 0
        assert ev.eval(parse_expression("^a"), {"a": 0b0111}) == 1
        assert ev.eval(parse_expression("~^a"), {"a": 0b0111}) == 0

    def test_concat_order(self):
        symbols, ev = make_env({"hi": 8, "lo": 8})
        value = ev.eval(parse_expression("{hi, lo}"), {"hi": 0xAB, "lo": 0xCD})
        assert value == 0xABCD

    def test_indexed_part_select(self):
        symbols, ev = make_env({"w": 16, "i": 4})
        state = {"w": 0xABCD, "i": 4}
        assert ev.eval(parse_expression("w[i +: 4]"), state) == 0xC
        state["i"] = 7
        assert ev.eval(parse_expression("w[i -: 4]"), state) == 0xC

    def test_ternary_selects(self):
        symbols, ev = make_env({"s": 1, "a": 8, "b": 8})
        state = {"s": 1, "a": 3, "b": 9}
        assert ev.eval(parse_expression("s ? a : b"), state) == 3
        state["s"] = 0
        assert ev.eval(parse_expression("s ? a : b"), state) == 9

    def test_logical_short_circuit_semantics(self):
        symbols, ev = make_env({"a": 8, "b": 8})
        assert ev.eval(parse_expression("a && b"), {"a": 2, "b": 4}) == 1
        assert ev.eval(parse_expression("a || b"), {"a": 0, "b": 0}) == 0


class TestArraySemantics:
    """The paper's section 3.2.1 buffer-overflow hardware semantics."""

    def test_power_of_two_wraps(self):
        values = [0] * 8
        assert write_array(values, 9, 8, 42)
        assert values[1] == 42
        assert read_array(values, 9, 8) == 42

    def test_non_power_of_two_drops(self):
        values = [0] * 10
        assert not write_array(values, 12, 10, 42)
        assert values == [0] * 10
        assert read_array(values, 12, 10) == 0

    def test_in_range(self):
        values = [0] * 10
        assert write_array(values, 9, 10, 7)
        assert read_array(values, 9, 10) == 7


@st.composite
def _operand_pair(draw):
    width = draw(st.integers(min_value=1, max_value=32))
    a = draw(st.integers(min_value=0, max_value=mask(width)))
    b = draw(st.integers(min_value=0, max_value=mask(width)))
    return width, a, b


class TestPropertyBased:
    """Hypothesis: evaluator agrees with masked Python arithmetic."""

    @given(_operand_pair())
    @settings(max_examples=200)
    def test_add_matches_python(self, triple):
        width, a, b = triple
        symbols, ev = make_env({"a": width, "b": width})
        value = ev.eval(parse_expression("a + b"), {"a": a, "b": b})
        assert value == (a + b) & mask(width)

    @given(_operand_pair())
    @settings(max_examples=200)
    def test_sub_matches_python(self, triple):
        width, a, b = triple
        symbols, ev = make_env({"a": width, "b": width})
        value = ev.eval(parse_expression("a - b"), {"a": a, "b": b})
        assert value == (a - b) & mask(width)

    @given(_operand_pair())
    @settings(max_examples=200)
    def test_bitwise_matches_python(self, triple):
        width, a, b = triple
        symbols, ev = make_env({"a": width, "b": width})
        state = {"a": a, "b": b}
        assert ev.eval(parse_expression("a & b"), state) == a & b
        assert ev.eval(parse_expression("a | b"), state) == a | b
        assert ev.eval(parse_expression("a ^ b"), state) == a ^ b

    @given(_operand_pair())
    @settings(max_examples=200)
    def test_compare_matches_python(self, triple):
        width, a, b = triple
        symbols, ev = make_env({"a": width, "b": width})
        state = {"a": a, "b": b}
        assert ev.eval(parse_expression("a < b"), state) == int(a < b)
        assert ev.eval(parse_expression("a == b"), state) == int(a == b)

    @given(_operand_pair(), st.integers(min_value=0, max_value=40))
    @settings(max_examples=200)
    def test_shift_matches_python(self, triple, shift):
        width, a, _ = triple
        symbols, ev = make_env({"a": width, "s": 6})
        state = {"a": a, "s": shift}
        assert ev.eval(parse_expression("a >> s"), state) == a >> shift
        assert (
            ev.eval(parse_expression("a << s"), state)
            == (a << shift) & mask(width)
        )

    @given(
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=0, max_value=(1 << 64) - 1),
    )
    @settings(max_examples=200)
    def test_size_cast_masks(self, cast_width, width, raw):
        symbols, ev = make_env({"a": width})
        a = raw & mask(width)
        expr = parse_expression("%d'(a)" % cast_width)
        assert ev.eval(expr, {"a": a}) == a & mask(cast_width)

    @given(
        st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=20),
        st.integers(min_value=0, max_value=63),
    )
    @settings(max_examples=200)
    def test_array_write_read_consistent(self, initial, index):
        depth = len(initial)
        values = list(initial)
        landed = write_array(values, index, depth, 0xAB)
        if landed:
            assert read_array(values, index, depth) == 0xAB
        else:
            assert values == initial
            assert depth & (depth - 1) != 0
