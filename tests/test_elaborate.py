"""Tests for design elaboration (parameters, loops, flattening)."""

import pytest

from repro.hdl import ast, elaborate, parse
from repro.hdl.elaborate import ElaborationError


class TestParameters:
    def test_defaults_resolved(self):
        design = elaborate(
            parse(
                "module m #(parameter W = 8) (input wire clk, output reg [W-1:0] q);"
                " endmodule"
            )
        )
        assert design.top.find_declaration("q").bit_width == 8

    def test_override(self):
        design = elaborate(
            parse(
                "module m #(parameter W = 8) (input wire clk, output reg [W-1:0] q);"
                " endmodule"
            ),
            params={"W": 16},
        )
        assert design.top.find_declaration("q").bit_width == 16

    def test_localparam_depends_on_parameter(self):
        design = elaborate(
            parse(
                "module m #(parameter W = 4) (input wire c);"
                " localparam MAX = (1 << W) - 1;"
                " reg [W-1:0] x;"
                " always @(posedge c) x <= MAX;"
                " endmodule"
            )
        )
        always = [i for i in design.top.items if isinstance(i, ast.Always)][0]
        assert always.body.rhs.value == 15

    def test_unknown_override_rejected(self):
        with pytest.raises(ElaborationError):
            elaborate(
                parse("module m (input wire c); endmodule"), params={"W": 1}
            )

    def test_parameter_declarations_dropped(self):
        design = elaborate(
            parse(
                "module m #(parameter W = 8) (input wire c);"
                " localparam X = 2; endmodule"
            )
        )
        assert not [
            i for i in design.top.items if isinstance(i, ast.ParameterDecl)
        ]


class TestForUnrolling:
    def test_static_loop_unrolled(self):
        design = elaborate(
            parse(
                """
                module m (input wire clk, input wire rst);
                    reg [7:0] mem [0:3];
                    integer i;
                    always @(posedge clk)
                        if (rst)
                            for (i = 0; i < 4; i = i + 1)
                                mem[i] <= i * 2;
                endmodule
                """
            )
        )
        always = [i for i in design.top.items if isinstance(i, ast.Always)][0]
        assigns = [
            n for n in always.body.walk()
            if isinstance(n, ast.NonblockingAssign)
        ]
        assert len(assigns) == 4
        assert [a.rhs.value for a in assigns] == [0, 2, 4, 6]

    def test_zero_iteration_loop(self):
        design = elaborate(
            parse(
                """
                module m (input wire clk);
                    reg [7:0] mem [0:3];
                    integer i;
                    always @(posedge clk)
                        for (i = 0; i < 0; i = i + 1) mem[i] <= 0;
                endmodule
                """
            )
        )
        always = [i for i in design.top.items if isinstance(i, ast.Always)][0]
        assigns = [
            n for n in always.body.walk()
            if isinstance(n, ast.NonblockingAssign)
        ]
        assert not assigns

    def test_non_static_bound_rejected(self):
        with pytest.raises(ElaborationError):
            elaborate(
                parse(
                    """
                    module m (input wire clk, input wire [3:0] n);
                        reg [7:0] mem [0:3];
                        integer i;
                        always @(posedge clk)
                            for (i = 0; i < n; i = i + 1) mem[i] <= 0;
                    endmodule
                    """
                )
            )


class TestFlattening:
    HIER = """
    module child #(parameter INC = 1) (
        input wire clk,
        input wire [7:0] a,
        output reg [7:0] y
    );
        always @(posedge clk) y <= a + INC;
    endmodule

    module top (
        input wire clk,
        input wire [7:0] x,
        output wire [7:0] out
    );
        wire [7:0] mid;
        child #(.INC(3)) c0 (.clk(clk), .a(x), .y(mid));
        child c1 (.clk(clk), .a(mid), .y(out));
    endmodule
    """

    def test_two_instances_inlined(self):
        design = elaborate(parse(self.HIER), top="top")
        always = [i for i in design.top.items if isinstance(i, ast.Always)]
        assert len(always) == 2

    def test_parameter_override_per_instance(self):
        design = elaborate(parse(self.HIER), top="top")
        increments = sorted(
            node.right.value
            for item in design.top.items
            if isinstance(item, ast.Always)
            for node in item.body.walk()
            if isinstance(node, ast.BinaryOp) and node.op == "+"
        )
        assert increments == [1, 3]

    def test_identifier_connections_are_aliased(self):
        design = elaborate(parse(self.HIER), top="top")
        names = {d.name for d in design.top.declarations()}
        # Port connections were plain identifiers: no c0.a / c0.y signals.
        assert "c0.a" not in names
        assert "mid" in names

    def test_clock_stays_a_clock(self):
        design = elaborate(parse(self.HIER), top="top")
        for item in design.top.items:
            if isinstance(item, ast.Always):
                assert item.sens[0].signal == "clk"

    def test_expression_connection_generates_assign(self):
        source = parse(
            """
            module child (input wire [7:0] a, output wire [7:0] y);
                assign y = a;
            endmodule
            module top (input wire [7:0] x, output wire [7:0] out);
                child c0 (.a(x + 1), .y(out));
            endmodule
            """
        )
        design = elaborate(source, top="top")
        names = {d.name for d in design.top.declarations()}
        assert "c0.a" in names

    def test_unknown_module_rejected(self):
        with pytest.raises(ElaborationError):
            elaborate(
                parse(
                    "module top (input wire c); missing m0 (.x(c)); endmodule"
                ),
                top="top",
            )

    def test_blackbox_instances_kept(self):
        design = elaborate(
            parse(
                """
                module top (input wire clk, input wire [7:0] d);
                    wire [7:0] q;
                    wire e;
                    scfifo #(.LPM_WIDTH(8)) f0 (
                        .clock(clk), .data(d), .q(q), .empty(e)
                    );
                endmodule
                """
            ),
            top="top",
        )
        assert len(design.blackboxes) == 1
        assert design.blackboxes[0].module_name == "scfifo"

    def test_nested_hierarchy_prefixes(self):
        source = parse(
            """
            module leaf (input wire clk, output reg [3:0] v);
                reg [3:0] internal;
                always @(posedge clk) begin
                    internal <= internal;
                    v <= internal;
                end
            endmodule
            module mid (input wire clk, output wire [3:0] v);
                leaf l0 (.clk(clk), .v(v));
            endmodule
            module top (input wire clk, output wire [3:0] v);
                mid m0 (.clk(clk), .v(v));
            endmodule
            """
        )
        design = elaborate(source, top="top")
        names = {d.name for d in design.top.declarations()}
        assert "m0.l0.internal" in names

    def test_output_port_must_be_lvalue(self):
        with pytest.raises(ElaborationError):
            elaborate(
                parse(
                    """
                    module child (output wire y);
                        assign y = 1;
                    endmodule
                    module top (input wire a, input wire b);
                        child c0 (.y(a + b));
                    endmodule
                    """
                ),
                top="top",
            )
