"""Tests for the blackbox IP behavioral models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl import elaborate, parse
from repro.sim import Simulator
from repro.sim.ip import AltSyncRam, DualClockFifo, SignalRecorder, SingleClockFifo


class TestSingleClockFifoModel:
    def test_push_pop_order(self):
        fifo = SingleClockFifo({"LPM_WIDTH": 8, "LPM_NUMWORDS": 4})
        for value in (1, 2, 3):
            fifo.clock_edge({"wrreq": 1, "data": value}, {"clock"})
        out = []
        for _ in range(3):
            fifo.clock_edge({"rdreq": 1}, {"clock"})
            out.append(fifo.outputs({})["q"])
        assert out == [1, 2, 3]

    def test_full_drops_writes(self):
        fifo = SingleClockFifo({"LPM_WIDTH": 8, "LPM_NUMWORDS": 2})
        for value in (1, 2, 3):
            fifo.clock_edge({"wrreq": 1, "data": value}, {"clock"})
        assert fifo.outputs({})["full"] == 1
        assert fifo.core.dropped_writes == 1

    def test_empty_flag(self):
        fifo = SingleClockFifo({"LPM_NUMWORDS": 4})
        assert fifo.outputs({})["empty"] == 1
        fifo.clock_edge({"wrreq": 1, "data": 9}, {"clock"})
        assert fifo.outputs({})["empty"] == 0

    def test_usedw_counts(self):
        fifo = SingleClockFifo({"LPM_NUMWORDS": 8})
        for i in range(3):
            fifo.clock_edge({"wrreq": 1, "data": i}, {"clock"})
        assert fifo.outputs({})["usedw"] == 3

    def test_sclr_clears(self):
        fifo = SingleClockFifo({"LPM_NUMWORDS": 8})
        fifo.clock_edge({"wrreq": 1, "data": 5}, {"clock"})
        fifo.clock_edge({"sclr": 1}, {"clock"})
        assert fifo.outputs({})["empty"] == 1

    def test_data_masked_to_width(self):
        fifo = SingleClockFifo({"LPM_WIDTH": 4})
        fifo.clock_edge({"wrreq": 1, "data": 0xFF}, {"clock"})
        fifo.clock_edge({"rdreq": 1}, {"clock"})
        assert fifo.outputs({})["q"] == 0xF

    @given(st.lists(st.tuples(st.booleans(), st.booleans(),
                              st.integers(min_value=0, max_value=255)),
                    max_size=60))
    @settings(max_examples=100)
    def test_model_matches_reference_queue(self, ops):
        """Property: the model behaves as a bounded FIFO queue."""
        fifo = SingleClockFifo({"LPM_WIDTH": 8, "LPM_NUMWORDS": 4})
        reference = []
        popped_model, popped_ref = [], []
        for push, pop, value in ops:
            inputs = {"wrreq": int(push), "rdreq": int(pop), "data": value}
            will_pop = pop and bool(reference)
            if will_pop:
                popped_ref.append(reference[0])
            fifo.clock_edge(inputs, {"clock"})
            if will_pop:
                popped_model.append(fifo.outputs({})["q"])
                reference.pop(0)
            if push and len(reference) < 4:
                reference.append(value)
            elif push:
                pass  # dropped, like the hardware
        assert popped_model == popped_ref
        assert fifo.outputs({})["usedw"] == len(reference)


class TestDualClockFifo:
    def test_separate_clock_domains(self):
        fifo = DualClockFifo({"LPM_WIDTH": 8, "LPM_NUMWORDS": 4})
        fifo.clock_edge({"wrreq": 1, "data": 7, "rdreq": 0}, {"wrclk"})
        assert fifo.outputs({})["rdempty"] == 0
        # A read-clock edge with rdreq pops.
        fifo.clock_edge({"wrreq": 1, "data": 8, "rdreq": 1}, {"rdclk"})
        assert fifo.outputs({})["q"] == 7
        # The wrreq was ignored on the read edge.
        assert fifo.outputs({})["rdempty"] == 1

    def test_both_edges_fired(self):
        fifo = DualClockFifo({})
        fifo.clock_edge({"wrreq": 1, "data": 3, "rdreq": 0}, {"wrclk", "rdclk"})
        assert fifo.outputs({})["rdusedw"] == 1


class TestAltSyncRam:
    def test_synchronous_read(self):
        ram = AltSyncRam({"WIDTH_A": 8, "NUMWORDS_A": 16})
        ram.clock_edge({"address_a": 3, "data_a": 0x5A, "wren_a": 1}, {"clock0"})
        ram.clock_edge({"address_a": 3, "wren_a": 0}, {"clock0"})
        assert ram.outputs({})["q_a"] == 0x5A

    def test_read_before_write_on_collision(self):
        ram = AltSyncRam({"WIDTH_A": 8, "NUMWORDS_A": 16})
        ram.clock_edge({"address_a": 2, "data_a": 1, "wren_a": 1}, {"clock0"})
        ram.clock_edge({"address_a": 2, "data_a": 9, "wren_a": 1}, {"clock0"})
        # q shows the OLD value at the collision edge.
        assert ram.outputs({})["q_a"] == 1

    def test_dual_port(self):
        ram = AltSyncRam({"WIDTH_A": 16, "NUMWORDS_A": 8})
        ram.clock_edge(
            {"address_a": 1, "data_a": 0xAAAA, "wren_a": 1, "address_b": 0},
            {"clock0"},
        )
        ram.clock_edge({"address_a": 0, "address_b": 1}, {"clock0"})
        assert ram.outputs({})["q_b"] == 0xAAAA

    def test_out_of_range_wraps_power_of_two(self):
        ram = AltSyncRam({"WIDTH_A": 8, "NUMWORDS_A": 8})
        ram.clock_edge({"address_a": 9, "data_a": 7, "wren_a": 1}, {"clock0"})
        assert ram.mem[1] == 7


class TestSignalRecorder:
    def test_samples_when_enabled(self):
        rec = SignalRecorder({"WIDTH": 8, "DEPTH": 4})
        for cycle, (enable, data) in enumerate([(1, 10), (0, 11), (1, 12)]):
            rec.clock_edge({"enable": enable, "data": data}, {"clock"})
        assert list(rec.samples) == [(0, 10), (2, 12)]

    def test_circular_buffer_keeps_newest(self):
        rec = SignalRecorder({"WIDTH": 8, "DEPTH": 2})
        for i in range(5):
            rec.clock_edge({"enable": 1, "data": i}, {"clock"})
        assert [d for _, d in rec.samples] == [3, 4]
        assert rec.overwrote
        assert rec.total_samples == 5

    def test_count_output(self):
        rec = SignalRecorder({"WIDTH": 8, "DEPTH": 4})
        assert rec.outputs({})["count"] == 0
        rec.clock_edge({"enable": 1, "data": 1}, {"clock"})
        assert rec.outputs({})["count"] == 1


class TestIPInSimulation:
    def test_fifo_in_design(self):
        sim = Simulator(
            elaborate(
                parse(
                    """
                    module top (input wire clk, input wire [7:0] d,
                                input wire push, input wire pop,
                                output wire [7:0] q, output wire empty);
                        scfifo #(.LPM_WIDTH(8), .LPM_NUMWORDS(4)) f (
                            .clock(clk), .data(d), .wrreq(push), .rdreq(pop),
                            .q(q), .empty(empty)
                        );
                    endmodule
                    """
                )
            )
        )
        sim["d"] = 42
        sim["push"] = 1
        sim.step()
        sim["push"] = 0
        sim["pop"] = 1
        sim.step()
        sim.settle()
        assert sim["q"] == 42

    def test_unknown_blackbox_rejected(self):
        from repro.sim import SimulatorError

        design = elaborate(
            parse(
                "module t (input wire clk); mystery_ip m (.clock(clk)); endmodule"
            ),
            blackboxes={"mystery_ip"},
        )
        with pytest.raises(SimulatorError):
            Simulator(design)

    def test_ip_model_accessor(self):
        sim = Simulator(
            elaborate(
                parse(
                    "module t (input wire clk, input wire e, input wire [3:0] d);"
                    " signal_recorder #(.WIDTH(4), .DEPTH(8)) rec ("
                    " .clock(clk), .enable(e), .data(d));"
                    " endmodule"
                )
            )
        )
        sim["e"] = 1
        sim["d"] = 9
        sim.step()
        assert list(sim.ip_model("rec").samples) == [(0, 9)]
