"""Tests for the fault-tolerant job server (repro.serve).

Covers the robustness pieces in isolation (cache, quota, breaker,
watchdog, chaos monkey, store), the worker pool against real
subprocess workers, the HTTP API end to end against an in-process
server, and the chaos acceptance scenario from the issue: a 50-job
campaign under worker SIGKILLs, injected hangs, corrupted cache
entries, and a truncated journal, killed halfway and resumed, must
complete every job exactly once with a final report byte-identical to
an uninterrupted run's.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro import obs
from repro.serve import (
    ArtifactCache,
    ChaosConfig,
    ChaosMonkey,
    CircuitBreaker,
    DeadlineWatchdog,
    Job,
    JobError,
    JobStore,
    LeaseTable,
    ReproServer,
    ServeClient,
    ServeClientError,
    ServeConfig,
    TokenBucketQuota,
    WorkerPool,
    job_cache_key,
    payload_digest,
)
from repro.serve.client import RETRYABLE_ERRORS
from repro.serve.jobs import CRASHED, DONE, QUARANTINED, TIMEOUT

TINY = """
module tiny(input wire clk, input wire rst, output reg [3:0] q);
    always @(posedge clk) begin
        if (rst) q <= 0;
        else q <= q + 1;
    end
endmodule
"""

TINY_LATCH = TINY.replace("else q <= q + 1;", "")


def check_params(source=TINY, **extra):
    params = {"source": source, "filename": "tiny.v"}
    params.update(extra)
    return params


class FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# ---------------------------------------------------------------------------
# Cache keys
# ---------------------------------------------------------------------------


class TestJobCacheKey:
    def test_stable_across_calls(self):
        params = check_params()
        assert job_cache_key("check", params) == job_cache_key(
            "check", dict(params)
        )

    def test_source_text_changes_key(self):
        assert job_cache_key("check", check_params()) != job_cache_key(
            "check", check_params(source=TINY_LATCH)
        )

    def test_semantic_params_change_key(self):
        assert job_cache_key("check", check_params()) != job_cache_key(
            "check", check_params(strict=True)
        )

    def test_chaos_knobs_excluded(self):
        noisy = check_params(
            _chaos_hang={"seconds": 5, "attempts": 1},
            _chaos_exit={"attempts": 1},
        )
        assert job_cache_key("check", noisy) == job_cache_key(
            "check", check_params()
        )

    def test_testbed_bug_resolves_to_design_text(self):
        key = job_cache_key("profile", {"bug": "D2"})
        assert key == job_cache_key("profile", {"bug": "D2"})
        assert key != job_cache_key("profile", {"bug": "D3"})

    def test_unknown_kind_raises(self):
        with pytest.raises(JobError):
            job_cache_key("transmogrify", {})


# ---------------------------------------------------------------------------
# Artifact cache
# ---------------------------------------------------------------------------


class TestArtifactCache:
    def test_roundtrip_and_stats(self, tmp_path):
        cache = ArtifactCache(str(tmp_path / "cache"))
        assert cache.get("k1") is None
        cache.put("k1", {"answer": 42})
        assert cache.get("k1") == {"answer": 42}
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["entries"] == 1
        assert stats["hit_rate"] == 0.5

    def test_persists_across_instances(self, tmp_path):
        directory = str(tmp_path / "cache")
        ArtifactCache(directory).put("k1", ["a", "b"])
        assert ArtifactCache(directory).get("k1") == ["a", "b"]

    def test_corrupt_entry_is_miss_then_recomputable(self, tmp_path):
        cache = ArtifactCache(str(tmp_path / "cache"))
        cache.put("k1", {"answer": 42})
        cache.corrupt_entry("k1")
        assert cache.get("k1") is None  # verified read rejects it
        assert cache.corrupt == 1
        assert "k1" not in cache  # damaged entry deleted
        cache.put("k1", {"answer": 42})  # recompute path
        assert cache.get("k1") == {"answer": 42}

    def test_garbage_file_is_miss_not_crash(self, tmp_path):
        cache = ArtifactCache(str(tmp_path / "cache"))
        with open(os.path.join(cache.directory, "k9.json"), "w") as handle:
            handle.write("{not json at all")
        assert cache.get("k9") is None
        assert cache.corrupt == 1

    def test_lru_eviction_under_size_pressure(self, tmp_path):
        cache = ArtifactCache(str(tmp_path / "cache"), max_bytes=600)
        filler = "x" * 150
        cache.put("old", {"data": filler})
        time.sleep(0.02)
        cache.put("mid", {"data": filler})
        time.sleep(0.02)
        cache.get("old")  # bump recency: "mid" is now the LRU entry
        time.sleep(0.02)
        cache.put("new", {"data": filler})
        assert cache.total_bytes() <= 600
        assert cache.evictions >= 1
        assert "new" in cache  # the fresh insert always survives
        assert "old" in cache  # recently used survives
        assert "mid" not in cache  # LRU entry paid the price

    def test_eviction_order_survives_identical_mtimes(self, tmp_path):
        """The regression the explicit access index exists for: on a
        fast filesystem consecutive accesses land in the same mtime
        granule, so mtime-ranked eviction was tie-dependent. Recency
        must come from the access counter, never the filesystem."""
        cache = ArtifactCache(str(tmp_path / "cache"), max_bytes=600)
        filler = "x" * 150
        cache.put("old", {"data": filler})
        cache.put("mid", {"data": filler})
        cache.get("old")  # bump recency: "mid" is now the LRU entry
        stamp = time.time()  # collapse every mtime to one instant
        for name in os.listdir(cache.directory):
            os.utime(os.path.join(cache.directory, name), (stamp, stamp))
        cache.put("new", {"data": filler})
        assert "old" in cache
        assert "mid" not in cache

    def test_access_order_survives_restart(self, tmp_path):
        directory = str(tmp_path / "cache")
        warm = ArtifactCache(directory, max_bytes=600)
        filler = "x" * 150
        warm.put("old", {"data": filler})
        warm.put("mid", {"data": filler})
        warm.get("old")
        # A crash-restart: a fresh instance must inherit the warmth.
        cache = ArtifactCache(directory, max_bytes=600)
        cache.put("new", {"data": filler})
        assert "old" in cache
        assert "mid" not in cache

    def test_corrupt_index_degrades_to_cold_start(self, tmp_path):
        directory = str(tmp_path / "cache")
        cache = ArtifactCache(directory)
        cache.put("k1", {"answer": 42})
        with open(os.path.join(directory, "lru-index"), "w") as handle:
            handle.write("{torn mid-write")
        fresh = ArtifactCache(directory)
        assert fresh.get("k1") == {"answer": 42}  # entries unaffected
        fresh.put("k2", {"answer": 43})  # and the index rebuilds
        assert fresh.get("k2") == {"answer": 43}


# ---------------------------------------------------------------------------
# Quotas
# ---------------------------------------------------------------------------


class TestTokenBucketQuota:
    def test_burst_then_deny_with_retry_after(self):
        clock = FakeClock()
        quota = TokenBucketQuota(rate=1.0, burst=2.0, clock=clock)
        assert quota.admit("alice") == (True, 0.0)
        assert quota.admit("alice") == (True, 0.0)
        allowed, retry_after = quota.admit("alice")
        assert not allowed
        assert retry_after == pytest.approx(1.0, abs=0.01)
        assert quota.denied == 1

    def test_refill_restores_admission(self):
        clock = FakeClock()
        quota = TokenBucketQuota(rate=2.0, burst=1.0, clock=clock)
        assert quota.admit("alice")[0]
        assert not quota.admit("alice")[0]
        clock.advance(0.6)  # 1.2 tokens accrue
        assert quota.admit("alice")[0]

    def test_clients_are_independent(self):
        clock = FakeClock()
        quota = TokenBucketQuota(rate=1.0, burst=1.0, clock=clock)
        assert quota.admit("alice")[0]
        assert not quota.admit("alice")[0]
        assert quota.admit("bob")[0]

    def test_zero_rate_disables(self):
        quota = TokenBucketQuota(rate=0.0, burst=0.0)
        for _ in range(100):
            assert quota.admit("anyone") == (True, 0.0)


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=3, cooldown=30.0, clock=clock)
        for _ in range(2):
            breaker.record_failure("repair")
        assert breaker.allow("repair")
        assert breaker.state("repair") == "closed"
        breaker.record_failure("repair")
        assert breaker.state("repair") == "open"
        assert not breaker.allow("repair")
        assert breaker.allow("check")  # other kinds unaffected

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(threshold=2, cooldown=30.0)
        breaker.record_failure("fuzz")
        breaker.record_success("fuzz")
        breaker.record_failure("fuzz")
        assert breaker.state("fuzz") == "closed"

    def test_half_open_admits_single_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=10.0, clock=clock)
        breaker.record_failure("repair")
        assert not breaker.allow("repair")
        clock.advance(10.1)
        assert breaker.state("repair") == "half-open"
        assert breaker.allow("repair")  # the probe
        assert not breaker.allow("repair")  # only one at a time

    def test_probe_success_closes_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=10.0, clock=clock)
        breaker.record_failure("repair")
        clock.advance(10.1)
        assert breaker.allow("repair")
        breaker.record_failure("repair")  # probe failed
        assert breaker.state("repair") == "open"
        clock.advance(10.1)
        assert breaker.allow("repair")
        breaker.record_success("repair")  # probe succeeded
        assert breaker.state("repair") == "closed"
        assert breaker.allow("repair")

    def test_zero_threshold_disables(self):
        breaker = CircuitBreaker(threshold=0)
        for _ in range(50):
            breaker.record_failure("check")
        assert breaker.allow("check")
        assert breaker.state("check") == "closed"

    def test_concurrent_half_open_probes_admit_exactly_one(self):
        """The half-open race: many submissions hit a cooled-down
        breaker at once; exactly one may probe, the rest stay blocked
        until the probe's verdict is in."""
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=10.0, clock=clock)
        breaker.record_failure("repair")
        clock.advance(10.1)
        admitted = []
        barrier = threading.Barrier(8)

        def probe():
            barrier.wait()
            if breaker.allow("repair"):
                admitted.append(threading.current_thread().name)

        threads = [threading.Thread(target=probe) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(admitted) == 1

    def test_transition_counters_track_the_state_machine(self):
        obs.reset()
        try:
            with obs.observed():
                clock = FakeClock()
                breaker = CircuitBreaker(threshold=1, cooldown=10.0,
                                         clock=clock)
                breaker.record_failure("repair")  # closed -> open
                assert obs.counter("serve.breaker.opened").value == 1
                clock.advance(10.1)
                assert breaker.allow("repair")  # open -> half-open probe
                assert obs.counter("serve.breaker.half_open").value == 1
                breaker.record_failure("repair")  # probe fails: reopen
                assert obs.counter("serve.breaker.reopened").value == 1
                assert obs.counter("serve.breaker.opened").value == 2
                clock.advance(10.1)
                assert breaker.allow("repair")
                breaker.record_success("repair")  # probe passes: close
                assert obs.counter("serve.breaker.closed").value == 1
        finally:
            obs.reset()
            obs.enabled = False


# ---------------------------------------------------------------------------
# Deadline watchdog
# ---------------------------------------------------------------------------


class TestDeadlineWatchdog:
    def test_fires_after_deadline(self):
        watchdog = DeadlineWatchdog()
        fired = []
        try:
            watchdog.arm("t1", 0.05, lambda token, reason: fired.append(
                (token, reason)))
            deadline = time.monotonic() + 2.0
            while not fired and time.monotonic() < deadline:
                time.sleep(0.01)
            assert fired == [("t1", "timeout")]
            assert watchdog.fired_reason("t1") == "timeout"
            assert watchdog.fired_reason("t1") is None  # cleared on read
        finally:
            watchdog.close()

    def test_disarm_cancels_all_reasons(self):
        watchdog = DeadlineWatchdog()
        fired = []
        try:
            callback = lambda token, reason: fired.append(reason)  # noqa: E731
            watchdog.arm("t1", 0.2, callback, "timeout")
            watchdog.arm("t1", 0.2, callback, "chaos")
            assert watchdog.pending() == 2
            watchdog.disarm("t1")
            assert watchdog.pending() == 0
            time.sleep(0.3)
            assert fired == []
            assert watchdog.fired_reason("t1") is None
        finally:
            watchdog.close()

    def test_soonest_reason_wins(self):
        watchdog = DeadlineWatchdog()
        fired = []
        try:
            callback = lambda token, reason: fired.append(reason)  # noqa: E731
            watchdog.arm("t1", 5.0, callback, "timeout")
            watchdog.arm("t1", 0.05, callback, "chaos")
            deadline = time.monotonic() + 2.0
            while not fired and time.monotonic() < deadline:
                time.sleep(0.01)
            assert fired == ["chaos"]
            assert watchdog.fired_reason("t1") == "chaos"
        finally:
            watchdog.close()

    def test_callback_exception_does_not_kill_thread(self):
        watchdog = DeadlineWatchdog()
        fired = []
        try:
            def explode(token, reason):
                raise RuntimeError("boom")

            watchdog.arm("bad", 0.01, explode)
            watchdog.arm("good", 0.05,
                         lambda token, reason: fired.append(token))
            deadline = time.monotonic() + 2.0
            while not fired and time.monotonic() < deadline:
                time.sleep(0.01)
            assert fired == ["good"]
        finally:
            watchdog.close()

    def test_arm_after_close_raises(self):
        watchdog = DeadlineWatchdog()
        watchdog.close()
        with pytest.raises(RuntimeError):
            watchdog.arm("t1", 1.0, lambda token, reason: None)


# ---------------------------------------------------------------------------
# Chaos monkey
# ---------------------------------------------------------------------------


class TestChaosMonkey:
    def test_inactive_never_kills(self):
        monkey = ChaosMonkey(ChaosConfig(kill_prob=0.0))
        assert monkey.kill_after("j000001", 1) is None

    def test_decisions_are_deterministic(self):
        config = ChaosConfig(seed=7, kill_prob=0.5, kill_delay=0.1)
        first = [ChaosMonkey(config).kill_after("j%06d" % n, 1)
                 for n in range(1, 30)]
        second = [ChaosMonkey(config).kill_after("j%06d" % n, 1)
                  for n in range(1, 30)]
        assert first == second
        assert any(delay is not None for delay in first)
        assert any(delay is None for delay in first)

    def test_decisions_vary_by_attempt_and_seed(self):
        config = ChaosConfig(seed=7, kill_prob=0.5)
        monkey = ChaosMonkey(config)
        by_attempt = {
            (n, attempt): monkey.kill_after("j%06d" % n, attempt) is not None
            for n in range(1, 30) for attempt in (1, 2)
        }
        assert len(set(by_attempt.values())) == 2  # both outcomes occur
        other = ChaosMonkey(ChaosConfig(seed=8, kill_prob=0.5))
        assert any(
            (monkey.kill_after("j%06d" % n, 1) is None)
            != (other.kill_after("j%06d" % n, 1) is None)
            for n in range(1, 30)
        )


# ---------------------------------------------------------------------------
# Job store
# ---------------------------------------------------------------------------


class TestJobStore:
    def test_resume_returns_only_incomplete_jobs(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        store = JobStore(journal_path=path)
        done_job = store.create("check", check_params(), "anon", "key1")
        done_job.status = DONE
        done_job.result = {"schema": "x"}
        store.record_done(done_job)
        store.create("fuzz", {"seed": 3}, "anon", "key2")
        store.close()

        fresh = JobStore(journal_path=path)
        incomplete = fresh.resume()
        assert [job.id for job in incomplete] == ["j000002"]
        assert incomplete[0].attempts == 0
        restored = fresh.get("j000001")
        assert restored.status == DONE
        assert restored.result == {"schema": "x"}
        # Sequence continues after the highest replayed id.
        assert fresh.create("check", {}, "anon", "k").id == "j000003"
        fresh.close()

    def test_resume_survives_truncated_journal(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        store = JobStore(journal_path=path)
        store.create("fuzz", {"seed": 1}, "anon", "key1")
        store.close()
        with open(path, "a") as handle:
            handle.write('{"event": "done", "id": "j0000')  # torn write
        fresh = JobStore(journal_path=path)
        assert [job.id for job in fresh.resume()] == ["j000001"]
        fresh.close()

    def test_final_report_excludes_runtime_variant_fields(self, tmp_path):
        store = JobStore(journal_path=None)
        job = store.create("check", check_params(), "anon", "key1")
        job.status = DONE
        job.result = {"answer": 42}
        job.attempts = 3
        job.cached = True
        report = store.final_report()
        assert report["schema"] == "repro.serve/v1"
        (entry,) = report["jobs"]
        assert entry["result_sha256"] == payload_digest({"answer": 42})
        assert "attempts" not in entry
        assert "cached" not in entry
        assert report["counts"] == {"done": 1}

    def test_write_final_report_is_deterministic(self, tmp_path):
        store = JobStore(journal_path=None)
        job = store.create("fuzz", {"seed": 1}, "anon", "key1")
        job.status = DONE
        job.result = {"cases": 3}
        first = str(tmp_path / "a.json")
        second = str(tmp_path / "b.json")
        store.write_final_report(first)
        store.write_final_report(second)
        assert open(first, "rb").read() == open(second, "rb").read()

    def test_resume_applies_first_done_and_counts_duplicates(
        self, tmp_path
    ):
        """The crash-window double-``done``: finalized, journaled,
        killed before the in-memory flag landed, then finalized again
        after resume. The first record must win, the duplicate must be
        visible on the duplicate counter, and the replayed epoch must
        reseed both fencing and the first-application registry."""
        path = str(tmp_path / "journal.jsonl")
        store = JobStore(journal_path=path)
        job = store.create("check", check_params(), "anon", "key1")
        job.status = DONE
        job.result = {"winner": "first"}
        job.lease_epoch = 2
        store.record_done(job)
        job.result = {"winner": "second"}
        store.record_done(job)  # the duplicate the crash window writes
        store.close()

        obs.reset()
        try:
            with obs.observed():
                fresh = JobStore(journal_path=path)
                leases = LeaseTable()
                assert fresh.resume(leases=leases) == []
                duplicates = obs.counter(
                    "runtime.journal.duplicate"
                ).value
        finally:
            obs.reset()
            obs.enabled = False
        assert duplicates == 1
        restored = fresh.get("j000001")
        assert restored.status == DONE
        assert restored.result == {"winner": "first"}
        assert restored.lease_epoch == 2
        # Fencing state survives the restart: the journaled epoch can
        # never be re-issued, and its result can never re-apply.
        assert leases.current("j000001") == 2
        assert not fresh.mark_applied("j000001", 2)
        fresh.close()


# ---------------------------------------------------------------------------
# Worker pool (real subprocess workers)
# ---------------------------------------------------------------------------


def make_job(job_id, kind="check", params=None):
    return Job(id=job_id, kind=kind,
               params=params if params is not None else check_params())


class TestWorkerPool:
    def test_executes_job_to_done(self):
        pool = WorkerPool(workers=1, watchdog_seconds=30.0, retries=0)
        try:
            job = make_job("j000001")
            pool.submit(job)
            assert pool.drain(timeout=60.0)
            assert job.status == DONE
            assert job.result["schema"] == "repro.diag/v1"
            assert job.attempts == 1
        finally:
            pool.close()

    def test_deterministic_failure_is_final_without_retry(self):
        pool = WorkerPool(workers=1, watchdog_seconds=30.0, retries=3)
        try:
            job = make_job("j000001", kind="profile",
                           params={"bug": "no-such-bug"})
            pool.submit(job)
            assert pool.drain(timeout=60.0)
            assert job.status == "failed"
            assert job.attempts == 1  # KeyError is not transient
        finally:
            pool.close()

    def test_hung_job_killed_by_watchdog_then_retry_succeeds(self):
        pool = WorkerPool(workers=1, watchdog_seconds=0.5, retries=2,
                          backoff=0.05, jitter=0.0)
        try:
            job = make_job("j000001", params=check_params(
                _chaos_hang={"seconds": 30, "attempts": 1}))
            pool.submit(job)
            assert pool.drain(timeout=60.0)
            assert job.status == DONE  # hang was transient
            assert job.attempts == 2
            stats = pool.stats_snapshot()
            assert stats["watchdog_kills"] == 1
            assert stats["retries"] == 1
            assert stats["worker_restarts"] == 1
        finally:
            pool.close()

    def test_permanent_hang_times_out_after_retries(self):
        pool = WorkerPool(workers=1, watchdog_seconds=0.3, retries=1,
                          backoff=0.05, jitter=0.0)
        try:
            job = make_job("j000001", params=check_params(
                _chaos_hang={"seconds": 30, "attempts": 99}))
            pool.submit(job)
            assert pool.drain(timeout=60.0)
            assert job.status == TIMEOUT
            assert job.error == "watchdog kill after 0.3s"
            assert job.attempts == 2  # initial + 1 retry
        finally:
            pool.close()

    def test_worker_crash_requeued_then_succeeds(self):
        pool = WorkerPool(workers=1, watchdog_seconds=30.0, retries=2,
                          backoff=0.05, jitter=0.0)
        try:
            job = make_job("j000001", params=check_params(
                _chaos_exit={"attempts": 1}))
            pool.submit(job)
            assert pool.drain(timeout=60.0)
            assert job.status == DONE
            assert job.attempts == 2
        finally:
            pool.close()

    def test_persistent_crash_finalizes_crashed(self):
        pool = WorkerPool(workers=1, watchdog_seconds=30.0, retries=1,
                          backoff=0.05, jitter=0.0)
        try:
            job = make_job("j000001", params=check_params(
                _chaos_exit={"attempts": 99}))
            pool.submit(job)
            assert pool.drain(timeout=60.0)
            assert job.status == CRASHED
            assert job.error == "worker died"
        finally:
            pool.close()

    def test_breaker_quarantines_sick_kind(self):
        breaker = CircuitBreaker(threshold=1, cooldown=300.0)
        pool = WorkerPool(workers=1, watchdog_seconds=30.0, retries=0,
                          backoff=0.05, breaker=breaker)
        try:
            crasher = make_job("j000001", params=check_params(
                _chaos_exit={"attempts": 99}))
            pool.submit(crasher)
            assert pool.drain(timeout=60.0)
            assert crasher.status == CRASHED
            quarantined = make_job("j000002")
            pool.submit(quarantined)
            assert pool.drain(timeout=10.0)
            assert quarantined.status == QUARANTINED
            assert "circuit breaker" in quarantined.error
            assert quarantined.attempts == 0  # never reached a worker
        finally:
            pool.close()


# ---------------------------------------------------------------------------
# HTTP server end to end (in-process)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="class")
def live_server(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("serve")
    config = ServeConfig(
        port=0,
        workers=2,
        watchdog=30.0,
        retries=1,
        backoff=0.05,
        cache_dir=str(tmp / "cache"),
        journal_path=str(tmp / "journal.jsonl"),
        report_path=str(tmp / "report.json"),
        quota_rate=500.0,
        quota_burst=500.0,
    )
    server = ReproServer(config).start_background()
    client = ServeClient("http://127.0.0.1:%d" % server.port,
                         client_id="tests")
    yield server, client
    server.shutdown()


class TestServerEndToEnd:
    def test_health_and_info(self, live_server):
        _, client = live_server
        assert client.health() == {"status": "ok"}
        info = client.info()
        assert info["schema"] == "repro.serve/v1"
        assert "check" in info["kinds"]

    def test_submit_wait_then_cached_resubmit(self, live_server):
        server, client = live_server
        params = check_params()
        first = client.run("check", params, timeout=60.0)
        assert first["status"] == "done"
        assert not first["cached"]
        assert first["result"]["schema"] == "repro.diag/v1"
        second = client.run("check", params, timeout=60.0)
        assert second["status"] == "done"
        assert second["cached"]
        assert second["result"] == first["result"]
        assert server.cache.hits >= 1

    def test_cache_corruption_degrades_to_recompute(self, live_server):
        server, client = live_server
        params = check_params(source=TINY_LATCH)
        first = client.run("check", params, timeout=60.0)
        assert first["status"] == "done"
        server.cache.corrupt_entry(first["cache_key"])
        again = client.run("check", params, timeout=60.0)
        assert again["status"] == "done"
        assert not again["cached"]  # verified read refused the entry
        assert again["result"] == first["result"]
        assert server.cache.corrupt >= 1

    def test_unknown_kind_is_400(self, live_server):
        _, client = live_server
        with pytest.raises(ServeClientError) as excinfo:
            client.submit("transmogrify", {})
        assert excinfo.value.status == 400

    def test_bad_params_is_400(self, live_server):
        _, client = live_server
        with pytest.raises(ServeClientError) as excinfo:
            client.submit("profile", {"bug": "no-such-bug"})
        assert excinfo.value.status == 400

    def test_unknown_job_is_404(self, live_server):
        _, client = live_server
        with pytest.raises(ServeClientError) as excinfo:
            client.job("j999999")
        assert excinfo.value.status == 404

    def test_unknown_route_is_404(self, live_server):
        _, client = live_server
        with pytest.raises(ServeClientError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404

    def test_quota_denial_is_structured_429(self, live_server):
        server, client = live_server
        server.quota.rate = 0.001
        server.quota.burst = 1.0
        try:
            greedy = ServeClient("http://127.0.0.1:%d" % server.port,
                                 client_id="greedy")
            greedy.submit("fuzz", {"cases": 1, "seed": 1})
            with pytest.raises(ServeClientError) as excinfo:
                greedy.submit("fuzz", {"cases": 1, "seed": 2})
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after > 0
        finally:
            server.quota.rate = 500.0
            server.quota.burst = 500.0

    def test_metrics_document(self, live_server):
        _, client = live_server
        client.run("fuzz", {"cases": 2, "seed": 5}, timeout=60.0)
        metrics = client.metrics()
        assert metrics["schema"] == "repro.serve-metrics/v1"
        assert metrics["jobs"]["done"] >= 1
        assert metrics["cache"]["hits"] >= 1
        assert metrics["pool"]["executions"] >= 1
        assert metrics["latency_ms"]["count"] >= 1
        assert metrics["latency_ms"]["p99"] >= metrics["latency_ms"]["p50"]
        names = {entry["name"] for entry in metrics["obs"]}
        assert "serve.jobs.done" in names

    def test_jobs_listing(self, live_server):
        _, client = live_server
        listed = client.jobs()
        assert listed
        assert all("result" not in summary for summary in listed)


# ---------------------------------------------------------------------------
# Client reconnects (flapping fake server)
# ---------------------------------------------------------------------------


class FlappingServer:
    """A TCP listener that resets the first *flaps* requests mid-poll,
    then answers like a healthy serve instance."""

    def __init__(self, flaps, body=b'{"status": "ok"}'):
        self.flaps = flaps
        self.body = body
        self.accepted = 0
        self.sock = socket.socket()
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(16)
        self.port = self.sock.getsockname()[1]
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self):
        while True:
            try:
                conn, _ = self.sock.accept()
            except OSError:
                return
            self.accepted += 1
            try:
                conn.recv(65536)
                if self.accepted <= self.flaps:
                    # Connection reset with the request in flight.
                    conn.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                                    b"\x01\x00\x00\x00\x00\x00\x00\x00")
                    conn.close()
                    continue
                conn.sendall(
                    b"HTTP/1.1 200 OK\r\nContent-Length: %d\r\n\r\n"
                    % len(self.body) + self.body
                )
                conn.close()
            except OSError:
                pass

    def close(self):
        try:
            self.sock.close()
        except OSError:
            pass


class TestClientReconnect:
    def test_get_reconnects_with_backoff_through_flaps(self):
        server = FlappingServer(flaps=2)
        try:
            client = ServeClient("http://127.0.0.1:%d" % server.port,
                                 max_retries=3, retry_backoff=0.01)
            assert client.health() == {"status": "ok"}
            assert client.reconnects == 2
        finally:
            server.close()

    def test_retry_budget_exhausted_reraises(self):
        server = FlappingServer(flaps=99)
        try:
            client = ServeClient("http://127.0.0.1:%d" % server.port,
                                 max_retries=2, retry_backoff=0.01)
            with pytest.raises(RETRYABLE_ERRORS):
                client.health()
            assert client.reconnects == 2  # budget fully spent
        finally:
            server.close()

    def test_default_client_fails_fast(self):
        server = FlappingServer(flaps=99)
        try:
            client = ServeClient("http://127.0.0.1:%d" % server.port)
            with pytest.raises(RETRYABLE_ERRORS):
                client.health()
            assert client.reconnects == 0
        finally:
            server.close()

    def test_post_never_retries(self):
        """A retried POST /jobs could enqueue the campaign twice; only
        idempotent GETs get the reconnect budget."""
        server = FlappingServer(flaps=99)
        try:
            client = ServeClient("http://127.0.0.1:%d" % server.port,
                                 max_retries=5, retry_backoff=0.01)
            with pytest.raises(RETRYABLE_ERRORS):
                client.submit("check", {})
            assert client.reconnects == 0
            assert server.accepted == 1  # one attempt, no replays
        finally:
            server.close()


# ---------------------------------------------------------------------------
# Chaos acceptance: kill workers, hang jobs, corrupt the cache, truncate
# the journal, SIGKILL the server halfway — and still converge.
# ---------------------------------------------------------------------------


def serve_command(tmp, name, resume=False, report="report.json"):
    argv = [
        sys.executable, "-u", "-m", "repro", "serve",
        "--port", "0",
        "--workers", "3",
        # Generous enough that a legitimate fuzz job beats it even on a
        # loaded single-core box (the 30s injected hangs still trip it),
        # tight enough that the test doesn't crawl.
        "--watchdog", "2.5",
        "--retries", "5",
        "--backoff", "0.02",
        "--jitter", "0",
        "--quota-rate", "0",
        "--breaker-threshold", "0",
        "--cache-dir", os.path.join(tmp, name, "cache"),
        "--journal", os.path.join(tmp, name, "journal.jsonl"),
        "--report", os.path.join(tmp, name, report),
        "--chaos-seed", "42",
        "--chaos-kill-prob", "0.25",
        "--chaos-kill-delay", "0.02",
    ]
    if resume:
        argv.append("--resume")
    return argv


def boot_server(argv):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    proc = subprocess.Popen(argv, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True, env=env)
    port = None
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        if line.startswith("serving on http://"):
            port = int(line.split(":")[2].split(" ")[0])
            break
    assert port is not None, "server never announced its port"
    return proc, port


def chaos_campaign():
    """50 mixed jobs: checks, fuzz runs, injected hangs, injected crashes."""
    jobs = []
    for index in range(36):
        source = TINY.replace("[3:0]", "[%d:0]" % (2 + index % 9))
        jobs.append(("check", check_params(source=source)))
    for seed in range(6):
        jobs.append(("fuzz", {"cases": 2, "seed": seed, "cycles": 16}))
    for index in range(4):  # duplicates: exercise the cache under chaos
        source = TINY.replace("[3:0]", "[%d:0]" % (2 + index))
        jobs.append(("check", check_params(source=source)))
    for index in range(2):  # hangs the watchdog must kill
        jobs.append(("check", check_params(
            source=TINY.replace("tiny", "hang%d" % index),
            _chaos_hang={"seconds": 30, "attempts": 1})))
    for index in range(2):  # hard crashes the pool must requeue
        jobs.append(("check", check_params(
            source=TINY.replace("tiny", "crash%d" % index),
            _chaos_exit={"attempts": 1})))
    assert len(jobs) == 50
    return jobs


def submit_all(client, jobs):
    ids = []
    for kind, params in jobs:
        summary = client.submit(kind, params)
        ids.append(summary["id"])
    return ids


def await_all_terminal(client, count, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        listed = client.jobs()
        terminal = [job for job in listed
                    if job["status"] in ("done", "failed", "timeout",
                                         "crashed", "quarantined")]
        if len(listed) >= count and len(terminal) == len(listed):
            return listed
        time.sleep(0.1)
    raise AssertionError("campaign did not converge in %.0fs" % timeout)


def graceful_stop(proc, timeout=60.0):
    proc.send_signal(signal.SIGTERM)
    out = proc.stdout.read()
    proc.wait(timeout=timeout)
    return out


class TestChaosAcceptance:
    def test_campaign_survives_chaos_and_resume_is_byte_identical(
        self, tmp_path
    ):
        tmp = str(tmp_path)
        jobs = chaos_campaign()

        # -- Run A: chaos throughout, but the server itself survives. ----
        proc_a, port_a = boot_server(serve_command(tmp, "a"))
        try:
            client_a = ServeClient("http://127.0.0.1:%d" % port_a,
                                   client_id="chaos")
            ids_a = submit_all(client_a, jobs)
            assert len(set(ids_a)) == 50  # every submission distinct
            listed = await_all_terminal(client_a, 50)
            assert len(listed) == 50
            statuses_a = {job["id"]: job["status"] for job in listed}
            # Chaos kills and hangs were transient: everything landed.
            assert set(statuses_a.values()) == {"done"}
            out = graceful_stop(proc_a)
            assert proc_a.returncode == 0, out
            assert "drained cleanly" in out
        finally:
            if proc_a.poll() is None:
                proc_a.kill()
        report_a = os.path.join(tmp, "a", "report.json")
        assert os.path.exists(report_a)

        # -- Run B: same campaign, but SIGKILL the server mid-flight. ----
        proc_b, port_b = boot_server(serve_command(tmp, "b"))
        try:
            client_b = ServeClient("http://127.0.0.1:%d" % port_b,
                                   client_id="chaos")
            submit_all(client_b, jobs)  # all 50 journaled as submitted
            time.sleep(1.0)  # some done, some in flight, some queued
            proc_b.kill()  # SIGKILL: no drain, no report
            proc_b.wait(timeout=30.0)
        finally:
            if proc_b.poll() is None:
                proc_b.kill()
        assert not os.path.exists(os.path.join(tmp, "b", "report.json"))

        # Data-at-rest chaos while the server is down: corrupt one cache
        # entry and tear the journal's final line.
        cache_dir = os.path.join(tmp, "b", "cache")
        entries = sorted(os.listdir(cache_dir))
        if entries:
            victim = os.path.join(cache_dir, entries[0])
            with open(victim, "w") as handle:
                json.dump({"digest": "0" * 64, "payload": {"bad": 1}},
                          handle)
        journal = os.path.join(tmp, "b", "journal.jsonl")
        with open(journal, "a") as handle:
            handle.write('{"event": "done", "id": "j0')  # torn write

        # -- Run B, act two: --resume finishes the campaign. -------------
        proc_r, port_r = boot_server(serve_command(tmp, "b", resume=True))
        try:
            client_r = ServeClient("http://127.0.0.1:%d" % port_r,
                                   client_id="chaos")
            listed = await_all_terminal(client_r, 50)
            assert len(listed) == 50  # exactly once: no dupes, no losses
            assert len({job["id"] for job in listed}) == 50
            assert {job["status"] for job in listed} == {"done"}
            out = graceful_stop(proc_r)
            assert proc_r.returncode == 0, out
        finally:
            if proc_r.poll() is None:
                proc_r.kill()

        # -- The payoff: byte-identical final reports. --------------------
        report_b = os.path.join(tmp, "b", "report.json")
        bytes_a = open(report_a, "rb").read()
        bytes_b = open(report_b, "rb").read()
        assert bytes_a == bytes_b
        report = json.loads(bytes_a)
        assert report["counts"] == {"done": 50}
        assert len(report["jobs"]) == 50
