"""Tests for PipelineStatistics (§4.4's per-component localization) and
the LossCheck report rendering."""

import pytest

from repro.core import LossCheck, PipelineStatistics, StageDivergence
from repro.hdl import elaborate, parse
from repro.testbed import SPECS, load_design
from repro.testbed.scenarios import SCENARIOS

LEAKY_PIPE = """
module leaky (
    input wire clk,
    input wire rst,
    input wire in_valid,
    input wire [7:0] in_data,
    output reg s1_valid,
    output reg [7:0] s1_data,
    output reg s2_valid,
    output reg [7:0] s2_data
);
    always @(posedge clk) begin
        if (rst) begin
            s1_valid <= 0;
            s2_valid <= 0;
        end else begin
            s1_valid <= in_valid;
            s1_data <= in_data;
            // BUG: stage 2 only forwards even values.
            s2_valid <= s1_valid && (s1_data[0] == 0);
            s2_data <= s1_data;
        end
    end
endmodule
"""


def leaky():
    return elaborate(parse(LEAKY_PIPE), top="leaky")


def drive(sim, values):
    sim["rst"] = 1
    sim.step()
    sim["rst"] = 0
    for value in values:
        sim["in_data"] = value
        sim["in_valid"] = 1
        sim.step()
    sim["in_valid"] = 0
    sim.step(3)


class TestPipelineStatistics:
    STAGES = [
        ("input", "in_valid"),
        ("stage1", "s1_valid"),
        ("stage2", "s2_valid"),
    ]

    def test_divergence_localized_to_leaky_stage(self):
        pipe = PipelineStatistics(leaky(), self.STAGES)
        sim = pipe.simulator()
        drive(sim, [2, 3, 4, 5])
        divergence = pipe.first_divergence(sim)
        assert divergence is not None
        assert divergence.upstream == "stage1"
        assert divergence.downstream == "stage2"
        assert divergence.missing == 2  # the two odd values

    def test_balanced_pipeline_reports_none(self):
        pipe = PipelineStatistics(leaky(), self.STAGES)
        sim = pipe.simulator()
        drive(sim, [2, 4, 6])
        assert pipe.first_divergence(sim) is None

    def test_slack_absorbs_in_flight_events(self):
        pipe = PipelineStatistics(leaky(), self.STAGES, slack=1)
        sim = pipe.simulator()
        drive(sim, [2, 3, 4])  # one odd value: within slack
        assert pipe.first_divergence(sim) is None

    def test_report_text(self):
        pipe = PipelineStatistics(leaky(), self.STAGES)
        sim = pipe.simulator()
        drive(sim, [1, 2])
        text = pipe.report(sim)
        assert "input" in text and "stage2" in text
        assert "missing" in text

    def test_requires_two_stages(self):
        with pytest.raises(ValueError):
            PipelineStatistics(leaky(), [("only", "in_valid")])

    def test_stage_divergence_str(self):
        divergence = StageDivergence("a", "b", 10, 7)
        assert "3 missing" in str(divergence)

    def test_on_grayscale_bug(self):
        """§4.4 in anger: localize D2's loss to the FIFO boundary."""
        pipe = PipelineStatistics(
            load_design("D2"),
            [
                ("pixels_read", "rd_rsp_valid"),
                ("pixels_transformed", "gray_valid"),
                ("pixels_written", "wr_req"),
            ],
        )
        sim = pipe.simulator()
        SCENARIOS["D2"](sim)
        divergence = pipe.first_divergence(sim)
        assert divergence is not None
        # All pixels reach the transform; they vanish before the writer
        # (the FIFO between the two drops the overflow).
        assert divergence.upstream == "pixels_transformed"
        assert divergence.downstream == "pixels_written"
        assert divergence.missing >= 1


class TestLossCheckReport:
    def test_report_lists_localizations(self):
        spec = SPECS["C2"].losscheck
        lc = LossCheck(
            load_design("C2"),
            source=spec.source,
            sink=spec.sink,
            source_valid=spec.source_valid,
        )
        result = lc.analyze(SCENARIOS["C2"])
        text = result.report()
        assert "potential data loss at b_buf" in text
        assert "first at cycle" in text
        assert result.first_warning_cycle("b_buf") is not None

    def test_report_mentions_suppressions(self):
        from repro.testbed import GROUND_TRUTH

        spec = SPECS["D11"].losscheck
        lc = LossCheck(
            load_design("D11"),
            source=spec.source,
            sink=spec.sink,
            source_valid=spec.source_valid,
        )
        lc.calibrate(GROUND_TRUTH["D11"])
        result = lc.analyze(SCENARIOS["D11"])
        assert "suppressed word_stage" in result.report()

    def test_clean_report(self, lossy_design):
        lc = LossCheck(
            lossy_design, source="in", sink="out", source_valid="in_valid"
        )
        result = lc.analyze(lambda sim: sim.step(5))
        assert result.report() == "no potential data loss observed"
        assert result.first_warning_cycle("b") is None
