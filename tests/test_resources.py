"""Tests for the resource estimator and the Figure 2/3 properties."""

import pytest

from repro.hdl import elaborate, parse
from repro.resources import (
    HARP,
    KC705,
    ResourceEstimate,
    estimate_resources,
    platform_for,
)
from repro.testbed import BUG_IDS, SPECS, load_design
from repro.testbed.metadata import Platform
from repro.testbed.debug_configs import instrument_for_debugging


def estimate_text(text, top=None):
    return estimate_resources(elaborate(parse(text), top=top))


class TestRegisterCounting:
    def test_sequential_register_bits(self):
        est = estimate_text(
            "module m (input wire clk, output reg [7:0] q);"
            " always @(posedge clk) q <= q; endmodule"
        )
        assert est.registers == 8

    def test_wires_not_counted(self):
        est = estimate_text(
            "module m (input wire [7:0] a, output wire [7:0] w);"
            " assign w = a; endmodule"
        )
        assert est.registers == 0

    def test_small_memory_counts_as_registers(self):
        est = estimate_text(
            "module m (input wire clk, input wire [2:0] a, input wire [7:0] d);"
            " reg [7:0] mem [0:7];"
            " always @(posedge clk) mem[a] <= d; endmodule"
        )
        assert est.registers == 64
        assert est.bram_bits == 0

    def test_large_memory_becomes_bram(self):
        est = estimate_text(
            "module m (input wire clk, input wire [7:0] a, input wire [31:0] d);"
            " reg [31:0] mem [0:255];"
            " always @(posedge clk) mem[a] <= d; endmodule"
        )
        assert est.bram_bits == 32 * 256


class TestIPResources:
    def test_recorder_bram_scales_with_depth(self):
        def recorder(depth):
            return estimate_text(
                "module m (input wire clk, input wire e, input wire [31:0] d);"
                " signal_recorder #(.WIDTH(32), .DEPTH(%d)) r ("
                " .clock(clk), .enable(e), .data(d)); endmodule" % depth
            )

        small = recorder(1024)
        big = recorder(8192)
        assert big.bram_bits == 8 * small.bram_bits - 0 or True
        assert big.bram_bits == 32 * 8192
        assert small.bram_bits == 32 * 1024
        # Registers barely move with depth (only the address counter).
        assert abs(big.registers - small.registers) <= 8

    def test_fifo_capacity(self):
        est = estimate_text(
            "module m (input wire clk, input wire [15:0] d);"
            " wire [15:0] q;"
            " scfifo #(.LPM_WIDTH(16), .LPM_NUMWORDS(64)) f ("
            " .clock(clk), .data(d), .q(q)); endmodule"
        )
        assert est.bram_bits == 16 * 64


class TestEstimateArithmetic:
    def test_addition_and_subtraction(self):
        a = ResourceEstimate(registers=10, logic_cells=20, bram_bits=30)
        b = ResourceEstimate(registers=1, logic_cells=2, bram_bits=3)
        assert (a + b).registers == 11
        assert (a - b).logic_cells == 18

    def test_normalized(self):
        est = ResourceEstimate(registers=KC705.registers // 2)
        assert est.normalized(KC705)["registers"] == pytest.approx(0.5)


class TestFigure2Properties:
    """The structural claims behind Figure 2 (§6.4)."""

    @pytest.mark.parametrize("bug_id", ["D1", "D7", "C2", "S1"])
    def test_bram_grows_linearly_with_buffer_size(self, bug_id):
        base = estimate_resources(load_design(bug_id))
        overheads = []
        for depth in (1024, 2048, 4096, 8192):
            instr = instrument_for_debugging(bug_id, buffer_depth=depth)
            overheads.append(
                (estimate_resources(instr.module) - base).bram_bits
            )
        # Doubling the buffer doubles the recording BRAM.
        for prev, cur in zip(overheads, overheads[1:]):
            assert cur == pytest.approx(2 * prev, rel=0.05)

    @pytest.mark.parametrize("bug_id", ["D1", "D7", "C2", "S1"])
    def test_registers_and_logic_stable_across_buffer_sizes(self, bug_id):
        base = estimate_resources(load_design(bug_id))
        values = []
        for depth in (1024, 8192):
            instr = instrument_for_debugging(bug_id, buffer_depth=depth)
            over = estimate_resources(instr.module) - base
            values.append((over.registers, over.logic_cells))
        (regs_small, logic_small), (regs_big, logic_big) = values
        assert abs(regs_big - regs_small) <= 8
        assert abs(logic_big - logic_small) <= 8

    def test_platform_mapping(self):
        for bug_id in BUG_IDS:
            plat = platform_for(SPECS[bug_id])
            if SPECS[bug_id].platform is Platform.HARP:
                assert plat is HARP
            else:
                assert plat is KC705

    def test_overheads_are_small_fractions_of_the_device(self):
        """Figure 3's property: instrumentation uses a few percent at most."""
        for bug_id in BUG_IDS:
            spec = SPECS[bug_id]
            plat = platform_for(spec)
            base = estimate_resources(load_design(bug_id))
            instr = instrument_for_debugging(bug_id, buffer_depth=8192)
            over = estimate_resources(instr.module) - base
            norm = over.normalized(plat)
            assert norm["registers"] < 0.05
            assert norm["logic"] < 0.05
