"""Tests for the 20-bug testbed (Table 2, §6.1): push-button
reproduction, fix verification, and metadata invariants."""

import pytest

from repro.testbed import (
    BUG_IDS,
    GROUND_TRUTH,
    SPECS,
    BugClass,
    Platform,
    Symptom,
    Tool,
    load_design,
    reproduce,
    run_scenario,
    verify_fix,
)
from repro.sim import Simulator


@pytest.mark.parametrize("bug_id", BUG_IDS)
class TestPushButtonReproduction:
    def test_bug_reproduces(self, bug_id):
        result = reproduce(bug_id)
        assert result.reproduced
        assert SPECS[bug_id].symptoms <= result.observation.symptoms

    def test_fix_is_clean(self, bug_id):
        result = verify_fix(bug_id)
        assert result.clean


@pytest.mark.parametrize("bug_id", sorted(GROUND_TRUTH))
class TestGroundTruthTests:
    def test_shipped_test_passes_on_buggy_design(self, bug_id):
        """§4.5.3: the ground-truth test escaped the bug in testing, so
        it must run without tripping the failure on the buggy design."""
        sim = Simulator(load_design(bug_id, fixed=False))
        GROUND_TRUTH[bug_id](sim)  # must not raise


class TestTable2Invariants:
    def test_twenty_bugs(self):
        assert len(BUG_IDS) == 20

    def test_id_prefixes_match_classes(self):
        for bug_id in BUG_IDS:
            spec = SPECS[bug_id]
            prefix = bug_id[0]
            expected = {
                "D": BugClass.DATA_MIS_ACCESS,
                "C": BugClass.COMMUNICATION,
                "S": BugClass.SEMANTIC,
            }[prefix]
            assert spec.bug_class is expected

    def test_class_counts(self):
        prefixes = [bug_id[0] for bug_id in BUG_IDS]
        assert prefixes.count("D") == 13
        assert prefixes.count("C") == 4
        assert prefixes.count("S") == 3

    def test_signalcat_helps_every_bug(self):
        """§6.3: 'SignalCat is useful for debugging every bug'."""
        for bug_id in BUG_IDS:
            assert Tool.SIGNALCAT in SPECS[bug_id].helpful_tools

    def test_each_monitor_helps_at_least_four_bugs(self):
        """§6.3: 'Each of the 3 monitors assists with at least four bugs'."""
        for tool in (
            Tool.FSM_MONITOR,
            Tool.STATISTICS_MONITOR,
            Tool.DEPENDENCY_MONITOR,
        ):
            helped = [
                b for b in BUG_IDS if tool in SPECS[b].helpful_tools
            ]
            assert len(helped) >= 4, tool

    def test_losscheck_bugs(self):
        """LossCheck is listed for exactly the six localizable loss bugs."""
        helped = {b for b in BUG_IDS if Tool.LOSSCHECK in SPECS[b].helpful_tools}
        assert helped == {"D1", "D2", "D3", "D4", "C2", "C4"}

    def test_seven_loss_bugs(self):
        """§6.3: 7 bugs exhibit data loss."""
        loss = {b for b in BUG_IDS if Symptom.LOSS in SPECS[b].symptoms}
        assert loss == {"D1", "D2", "D3", "D4", "D11", "C2", "C4"}

    def test_platform_grouping(self):
        """Figure 2: six HARP designs on Intel, the rest on KC705."""
        harp = [b for b in BUG_IDS if SPECS[b].platform is Platform.HARP]
        assert harp == ["D1", "D2", "D3", "D5", "D10", "C2"]

    def test_target_frequencies(self):
        """§6.4: Optimus and SHA512 target 400 MHz, the rest 200 MHz."""
        for bug_id in BUG_IDS:
            spec = SPECS[bug_id]
            if spec.application in ("Optimus", "SHA512"):
                assert spec.target_mhz == 400
            else:
                assert spec.target_mhz == 200

    def test_every_bug_has_fix_metadata(self):
        for bug_id in BUG_IDS:
            spec = SPECS[bug_id]
            assert spec.root_cause
            assert spec.fix
            assert spec.top != spec.fixed_top

    def test_loss_specs_on_loss_bugs_only(self):
        for bug_id in BUG_IDS:
            spec = SPECS[bug_id]
            if spec.losscheck is not None:
                assert Symptom.LOSS in spec.symptoms


class TestScenarioSymmetry:
    def test_same_stimulus_applied_to_both_variants(self):
        """run_scenario works against either design variant."""
        buggy = run_scenario("D8", fixed=False)
        fixed = run_scenario("D8", fixed=True)
        assert buggy.incorrect and not fixed.incorrect

    def test_case_study_fsm_states(self):
        """§6.3 case study: read FSM in RD_FINISH, write FSM in WR_DATA."""
        observation = run_scenario("D2", fixed=False)
        assert observation.details["rd_state"] == 2  # RD_FINISH
        assert observation.details["wr_state"] == 1  # WR_DATA
