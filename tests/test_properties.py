"""Cross-cutting property-based tests (hypothesis).

* parser/codegen round-trips over randomly generated expression ASTs;
* the simulator against a Python golden model of a datapath;
* LossCheck against an oracle implementing §4.5.2's Equations 1 and 2
  directly, over random stimulus streams.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LossCheck
from repro.hdl import ast, elaborate, parse, parse_expression
from repro.hdl.codegen import generate_expression
from repro.sim import Simulator, mask

# ---------------------------------------------------------------------------
# Random expression ASTs round-trip through codegen + parser.
# ---------------------------------------------------------------------------

_identifiers = st.sampled_from(["a", "b", "c", "sig", "x0"])
_numbers = st.integers(min_value=0, max_value=1 << 16).map(
    lambda v: ast.Number(value=v)
)
_binops = st.sampled_from(["+", "-", "&", "|", "^", "<<", ">>", "==", "<", "&&"])
_unops = st.sampled_from(["~", "!", "-", "&", "|", "^"])


def _expressions():
    leaves = st.one_of(_numbers, _identifiers.map(lambda n: ast.Identifier(name=n)))

    def extend(children):
        return st.one_of(
            st.tuples(_binops, children, children).map(
                lambda t: ast.BinaryOp(op=t[0], left=t[1], right=t[2])
            ),
            st.tuples(_unops, children).map(
                lambda t: ast.UnaryOp(op=t[0], operand=t[1])
            ),
            st.tuples(children, children, children).map(
                lambda t: ast.Ternary(cond=t[0], iftrue=t[1], iffalse=t[2])
            ),
            st.lists(children, min_size=2, max_size=4).map(
                lambda parts: ast.Concat(parts=parts)
            ),
            st.tuples(st.integers(min_value=1, max_value=64), children).map(
                lambda t: ast.SizeCast(width=t[0], expr=t[1])
            ),
        )

    return st.recursive(leaves, extend, max_leaves=12)


class TestExpressionRoundtrip:
    @given(_expressions())
    @settings(max_examples=300)
    def test_codegen_parses_back_to_same_ast(self, expr):
        text = generate_expression(expr)
        assert parse_expression(text) == expr


# ---------------------------------------------------------------------------
# Simulator vs a Python golden model of a small datapath.
# ---------------------------------------------------------------------------

_DATAPATH = """
module datapath (
    input wire clk,
    input wire rst,
    input wire en,
    input wire [7:0] d,
    output reg [7:0] acc,
    output reg [7:0] last,
    output reg [15:0] total
);
    always @(posedge clk) begin
        if (rst) begin
            acc <= 0;
            total <= 0;
        end else if (en) begin
            acc <= (acc ^ d) + 1;
            last <= d;
            total <= total + d;
        end
    end
endmodule
"""


class TestSimulatorGoldenModel:
    @given(
        st.lists(
            st.tuples(
                st.booleans(), st.booleans(),
                st.integers(min_value=0, max_value=255),
            ),
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_python_model(self, stimulus):
        sim = Simulator(elaborate(parse(_DATAPATH), top="datapath"))
        acc = last = total = 0
        for rst, en, d in stimulus:
            sim["rst"] = int(rst)
            sim["en"] = int(en)
            sim["d"] = d
            sim.step()
            if rst:
                acc, total = 0, 0
            elif en:
                acc = ((acc ^ d) + 1) & 0xFF
                last = d
                total = (total + d) & 0xFFFF
        assert sim["acc"] == acc
        assert sim["last"] == last
        assert sim["total"] == total


# ---------------------------------------------------------------------------
# LossCheck vs a direct implementation of Equations 1 and 2.
# ---------------------------------------------------------------------------

_LOSSY = """
module lossy (
    input wire clk,
    input wire in_valid,
    input wire [7:0] in,
    input wire cond_a,
    input wire cond_b,
    input wire [7:0] a,
    output reg [7:0] out
);
    reg [7:0] b;
    always @(posedge clk) begin
        if (cond_a) out <= a;
        else if (cond_b) out <= b;
        if (in_valid) b <= in;
    end
endmodule
"""


def _oracle_warning_cycles(stimulus):
    """Equations 1 and 2 computed directly for register b.

    A_k = in_valid; V_k = in_valid; P_k = !cond_a && cond_b.
    N_k = V_{k-1} | (N_{k-1} & ~P_{k-1}); Loss_k = A_k & ~P_k & N_k.
    The instrumentation reports Loss_k at cycle k+1 (registered shadows).
    """
    warnings = []
    n = 0
    prev_v = prev_p = 0
    for cycle, (in_valid, cond_a, cond_b, _value) in enumerate(stimulus):
        a_k = int(in_valid)
        v_k = int(in_valid)
        p_k = int((not cond_a) and cond_b)
        n = prev_v | (n & (1 - prev_p))  # N_k from cycle k-1 statuses
        if a_k and not p_k and n:
            warnings.append(cycle + 1)
        prev_v, prev_p = v_k, p_k
    return warnings


class TestLossCheckOracle:
    @given(
        st.lists(
            st.tuples(
                st.booleans(), st.booleans(), st.booleans(),
                st.integers(min_value=0, max_value=255),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_equation_oracle(self, stimulus):
        lc = LossCheck(
            elaborate(parse(_LOSSY), top="lossy"),
            source="in",
            sink="out",
            source_valid="in_valid",
        )

        def drive(sim):
            for in_valid, cond_a, cond_b, value in stimulus:
                sim["in_valid"] = int(in_valid)
                sim["cond_a"] = int(cond_a)
                sim["cond_b"] = int(cond_b)
                sim["in"] = value
                sim.step()
            sim["in_valid"] = 0
            sim.step()

        result = lc.analyze(drive)
        observed = [w.cycle for w in result.warnings if w.location == "b"]
        expected = [c for c in _oracle_warning_cycles(stimulus)]
        assert observed == expected


# ---------------------------------------------------------------------------
# Random statement trees round-trip through codegen + parser.
# ---------------------------------------------------------------------------

from repro.hdl.codegen import generate_statement
from repro.hdl import parse_statement

_small_exprs = st.one_of(
    st.sampled_from(["a", "b", "c"]).map(lambda n: ast.Identifier(name=n)),
    st.integers(min_value=0, max_value=255).map(lambda v: ast.Number(value=v)),
    st.tuples(
        st.sampled_from(["+", "&", "=="]),
        st.sampled_from(["a", "b"]).map(lambda n: ast.Identifier(name=n)),
        st.integers(min_value=0, max_value=15).map(lambda v: ast.Number(value=v)),
    ).map(lambda t: ast.BinaryOp(op=t[0], left=t[1], right=t[2])),
)

_assigns = st.tuples(
    st.sampled_from(["q", "r", "s"]).map(lambda n: ast.Identifier(name=n)),
    _small_exprs,
    st.booleans(),
).map(
    lambda t: ast.BlockingAssign(lhs=t[0], rhs=t[1])
    if t[2]
    else ast.NonblockingAssign(lhs=t[0], rhs=t[1])
)


def _statements():
    def extend(children):
        return st.one_of(
            st.lists(children, min_size=1, max_size=3).map(
                lambda stmts: ast.Block(statements=stmts)
            ),
            st.tuples(_small_exprs, children, st.none() | children).map(
                lambda t: ast.If(cond=t[0], then_stmt=t[1], else_stmt=t[2])
            ),
            st.tuples(
                _small_exprs,
                st.lists(
                    st.tuples(
                        st.integers(min_value=0, max_value=7), children
                    ),
                    min_size=1,
                    max_size=3,
                ),
            ).map(
                lambda t: ast.Case(
                    subject=t[0],
                    items=[
                        ast.CaseItem(labels=[ast.Number(value=v)], stmt=s)
                        for v, s in t[1]
                    ],
                )
            ),
        )

    return st.recursive(_assigns, extend, max_leaves=8)


def _normalize(stmt):
    """Collapse singleton begin/end blocks (codegen inserts them to avoid
    the dangling-else hazard) so comparisons are structural-modulo-braces."""
    if isinstance(stmt, ast.Block):
        inner = [_normalize(s) for s in stmt.statements]
        if len(inner) == 1:
            return inner[0]
        return ast.Block(statements=inner)
    if isinstance(stmt, ast.If):
        return ast.If(
            cond=stmt.cond,
            then_stmt=_normalize(stmt.then_stmt),
            else_stmt=(
                _normalize(stmt.else_stmt) if stmt.else_stmt is not None else None
            ),
        )
    if isinstance(stmt, ast.Case):
        return ast.Case(
            subject=stmt.subject,
            items=[
                ast.CaseItem(labels=item.labels, stmt=_normalize(item.stmt))
                for item in stmt.items
            ],
            casez=stmt.casez,
        )
    return stmt


class TestStatementRoundtrip:
    @given(_statements())
    @settings(max_examples=200)
    def test_codegen_parses_back_to_equivalent_ast(self, stmt):
        text = "\n".join(generate_statement(stmt))
        assert _normalize(parse_statement(text)) == _normalize(stmt)
