"""Tests for the TCP worker fabric, lease fencing, and campaign sharding.

Covers the frame protocol and handshake in isolation, the lease table's
epoch fencing, deterministic shard planning and byte-identical merging
for all three campaign kinds, the FabricPool against both real
(in-thread) workers and scripted sockets that misbehave on purpose —
stale epochs, duplicated frames, vanished connections — and the
distributed chaos acceptance scenario from the issue: a sharded 50-case
campaign under seeded connection drops, heartbeat stalls, duplicated
and delayed result frames, plus a worker SIGKILLed mid-run, must
complete every case exactly once with a final report byte-identical to
an unsharded, chaos-free run's.
"""

import io
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro import obs
from repro.serve import (
    FabricPool,
    FrameError,
    Job,
    JobError,
    LeaseTable,
    PROTO_VERSION,
    ReproServer,
    ServeClient,
    ServeConfig,
    encode_frame,
    merge_shards,
    plan_shards,
    shard_count,
)
from repro.serve.fabric import read_frame_blocking
from repro.serve.jobs import DONE, canonical_json, execute_job
from repro.serve.worker import main_tcp

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)


# ---------------------------------------------------------------------------
# Frame protocol
# ---------------------------------------------------------------------------


class TestFrames:
    def roundtrip(self, obj):
        return read_frame_blocking(io.BytesIO(encode_frame(obj)))

    def test_roundtrip(self):
        frame = {"type": "job", "id": "j000001", "params": {"cases": 3}}
        assert self.roundtrip(frame) == frame

    def test_unicode_roundtrip(self):
        frame = {"type": "result", "error": "défaut → bug"}
        assert self.roundtrip(frame) == frame

    def test_two_frames_back_to_back(self):
        stream = io.BytesIO(
            encode_frame({"n": 1}) + encode_frame({"n": 2})
        )
        assert read_frame_blocking(stream) == {"n": 1}
        assert read_frame_blocking(stream) == {"n": 2}
        assert read_frame_blocking(stream) is None  # clean EOF

    def test_torn_prefix_is_eof(self):
        assert read_frame_blocking(io.BytesIO(b"0000")) is None

    def test_torn_body_is_eof(self):
        whole = encode_frame({"type": "result"})
        assert read_frame_blocking(io.BytesIO(whole[:-4])) is None

    def test_garbage_prefix_raises(self):
        with pytest.raises(FrameError):
            read_frame_blocking(io.BytesIO(b"not hex!" + b"{}"))

    def test_non_object_body_raises(self):
        body = b'"just a string"\n'
        stream = io.BytesIO(b"%08x" % len(body) + body)
        with pytest.raises(FrameError):
            read_frame_blocking(stream)

    def test_oversized_frame_refused_at_encode(self):
        with pytest.raises(FrameError):
            encode_frame({"blob": "x" * (17 * 1024 * 1024)})


# ---------------------------------------------------------------------------
# Lease table
# ---------------------------------------------------------------------------


class TestLeaseTable:
    def test_epochs_are_monotonic_per_job(self):
        leases = LeaseTable()
        assert leases.grant("j1").epoch == 1
        assert leases.grant("j1").epoch == 2
        assert leases.grant("j2").epoch == 1  # independent sequence

    def test_grant_fences_previous_epoch(self):
        leases = LeaseTable()
        old = leases.grant("j1")
        new = leases.grant("j1")
        assert not leases.is_current("j1", old.epoch)
        assert leases.is_current("j1", new.epoch)

    def test_revoke_fences_without_granting(self):
        leases = LeaseTable()
        lease = leases.grant("j1")
        leases.revoke("j1")
        assert not leases.is_current("j1", lease.epoch)
        assert leases.grant("j1").epoch == lease.epoch + 2

    def test_observe_fast_forwards_for_resume(self):
        leases = LeaseTable()
        leases.observe("j1", 7)
        assert leases.grant("j1").epoch == 8
        leases.observe("j1", 3)  # never rewinds
        assert leases.current("j1") == 8

    def test_forget_bounds_memory(self):
        leases = LeaseTable()
        leases.grant("j1")
        leases.forget("j1")
        assert leases.snapshot()["active_jobs"] == 0


# ---------------------------------------------------------------------------
# Shard planning
# ---------------------------------------------------------------------------


class TestShardPlanning:
    def test_shard_count_validates(self):
        assert shard_count({}) == 1
        assert shard_count({"_shards": 4}) == 4
        with pytest.raises(JobError):
            shard_count({"_shards": 0})
        with pytest.raises(JobError):
            shard_count({"_shards": "many"})

    def test_fuzz_plan_partitions_the_index_range(self):
        plans = plan_shards("fuzz", {"seed": 1, "cases": 10, "_shards": 3}, 3)
        assert [(p["start"], p["cases"]) for p in plans] == [
            (0, 4), (4, 3), (7, 3),
        ]
        assert all("_shards" not in p for p in plans)

    def test_fuzz_plan_respects_parent_start(self):
        plans = plan_shards("fuzz", {"cases": 4, "start": 10}, 2)
        assert [(p["start"], p["cases"]) for p in plans] == [(10, 2), (12, 2)]

    def test_more_shards_than_cases_collapses(self):
        plans = plan_shards("fuzz", {"cases": 2}, 8)
        assert len(plans) == 2

    def test_faults_plan_partitions_the_grid(self):
        params = {"bugs": ["D1", "D2"], "faults_per_bug": 2}
        plans = plan_shards("faults", params, 2)
        grids = [p["case_list"] for p in plans]
        assert grids == [
            [["D1", 0], ["D1", 1]],
            [["D2", 0], ["D2", 1]],
        ]

    def test_repair_plan_windows_the_budget(self):
        params = {"bug": "D1", "budget": 5, "stop_after": 0}
        plans = plan_shards("repair", params, 2)
        assert [p["candidate_range"] for p in plans] == [[0, 3], [3, 5]]

    def test_sharded_repair_requires_exhaustive_search(self):
        with pytest.raises(JobError):
            plan_shards("repair", {"bug": "D1", "stop_after": 3}, 2)

    def test_unshardable_kind_rejected(self):
        with pytest.raises(JobError):
            plan_shards("check", {}, 2)


# ---------------------------------------------------------------------------
# Merge determinism: sharded == unsharded, byte for byte
# ---------------------------------------------------------------------------


class TestShardMergeDeterminism:
    def merged(self, kind, params, shards):
        plans = plan_shards(kind, dict(params, _shards=shards), shards)
        payloads = [execute_job(kind, plan) for plan in plans]
        return merge_shards(kind, dict(params, _shards=shards), payloads)

    @pytest.mark.parametrize("shards", [2, 3])
    def test_fuzz_merge_is_byte_identical(self, shards):
        params = {"seed": 11, "cases": 6, "cycles": 16}
        direct = execute_job("fuzz", dict(params))
        assert canonical_json(self.merged("fuzz", params, shards)) == \
            canonical_json(direct)

    @pytest.mark.parametrize("shards", [2, 3])
    def test_faults_merge_is_byte_identical(self, shards):
        params = {"seed": 5, "bugs": ["D1", "D2"], "faults_per_bug": 2}
        direct = execute_job("faults", dict(params))
        assert canonical_json(self.merged("faults", params, shards)) == \
            canonical_json(direct)

    def test_repair_merge_is_byte_identical(self):
        params = {"bug": "D1", "budget": 4, "stop_after": 0}
        direct = execute_job("repair", dict(params))
        assert canonical_json(self.merged("repair", params, 2)) == \
            canonical_json(direct)


# ---------------------------------------------------------------------------
# FabricPool against real (in-thread) TCP workers
# ---------------------------------------------------------------------------


TINY = """
module tiny(input wire clk, input wire rst, output reg [3:0] q);
    always @(posedge clk) begin
        if (rst) q <= 0;
        else q <= q + 1;
    end
endmodule
"""


def start_worker_thread(port, token="", name="w", **kwargs):
    """An in-process TCP worker on a daemon thread.

    Off the main thread, ``SIGALRM`` limits are unavailable, so only
    run job kinds without per-case limits here (``check``); campaign
    kinds need the subprocess workers :func:`spawn_worker_proc` starts.
    """
    kwargs.setdefault("max_reconnects", 2)
    kwargs.setdefault("reconnect_delay", 0.1)
    kwargs.setdefault("log", lambda message: None)
    thread = threading.Thread(
        target=main_tcp, args=("127.0.0.1", port),
        kwargs=dict(kwargs, token=token, worker_id=name), daemon=True,
    )
    thread.start()
    return thread


def spawn_worker_proc(port, token="", name="w", max_reconnects=20):
    """A real ``python -m repro worker`` process (jobs on main thread)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC
    return subprocess.Popen(
        [
            sys.executable, "-u", "-m", "repro", "worker",
            "--connect", "127.0.0.1:%d" % port,
            "--token", token,
            "--name", name,
            "--max-reconnects", str(max_reconnects),
            "--reconnect-delay", "0.2",
        ],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL, env=env,
    )


def await_workers(pool, count, timeout=15.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if pool.workers() >= count:
            return
        time.sleep(0.02)
    raise AssertionError("only %d workers joined" % pool.workers())


def make_check_job(job_id, marker=""):
    source = TINY.replace("tiny", "tiny%s" % marker) if marker else TINY
    return Job(id=job_id, kind="check",
               params={"source": source, "filename": "tiny.v"})


def make_fuzz_job(job_id, **params):
    params.setdefault("seed", 3)
    params.setdefault("cases", 2)
    params.setdefault("cycles", 16)
    return Job(id=job_id, kind="fuzz", params=params)


class TestFabricPool:
    def test_executes_jobs_across_tcp_workers(self):
        pool = FabricPool(port=0, token="s3cret", heartbeat_interval=0.2,
                          watchdog_seconds=30.0, retries=0)
        try:
            start_worker_thread(pool.port, token="s3cret", name="w1")
            start_worker_thread(pool.port, token="s3cret", name="w2")
            await_workers(pool, 2)
            jobs = [make_check_job("j%06d" % n, marker=str(n))
                    for n in (1, 2, 3)]
            for job in jobs:
                pool.submit(job)
            assert pool.drain(timeout=60.0)
            assert all(job.status == DONE for job in jobs)
            assert all(job.result["schema"] == "repro.diag/v1"
                       for job in jobs)
            assert all(job.lease_epoch == 1 for job in jobs)
            stats = pool.stats_snapshot()
            assert stats["executions"] == 3
            assert stats["workers_seen"] == 2
        finally:
            pool.close()

    def test_bad_token_rejected_at_handshake(self):
        pool = FabricPool(port=0, token="right")
        try:
            sock = socket.create_connection(("127.0.0.1", pool.port),
                                            timeout=5.0)
            reader = sock.makefile("rb")
            sock.sendall(encode_frame({
                "type": "hello", "proto": PROTO_VERSION,
                "token": "wrong", "worker": "evil",
            }))
            reject = read_frame_blocking(reader)
            assert reject["type"] == "reject"
            assert "token" in reject["error"]
            sock.close()
            assert pool.workers() == 0
            assert pool.stats_snapshot()["handshake_rejected"] == 1
        finally:
            pool.close()

    def test_protocol_version_mismatch_rejected(self):
        pool = FabricPool(port=0)
        try:
            sock = socket.create_connection(("127.0.0.1", pool.port),
                                            timeout=5.0)
            reader = sock.makefile("rb")
            sock.sendall(encode_frame({
                "type": "hello", "proto": PROTO_VERSION + 1, "worker": "new",
            }))
            reject = read_frame_blocking(reader)
            assert reject["type"] == "reject"
            assert "version" in reject["error"]
            sock.close()
        finally:
            pool.close()

    def test_worker_death_requeues_onto_survivor(self):
        pool = FabricPool(port=0, heartbeat_interval=0.2, retries=2,
                          backoff=0.02, jitter=0.0)
        try:
            # A scripted worker that accepts the job and drops dead.
            sock = socket.create_connection(("127.0.0.1", pool.port),
                                            timeout=5.0)
            reader = sock.makefile("rb")
            sock.sendall(encode_frame({
                "type": "hello", "proto": PROTO_VERSION, "worker": "doomed",
            }))
            assert read_frame_blocking(reader)["type"] == "welcome"
            job = make_check_job("j000001")
            pool.submit(job)
            dispatched = read_frame_blocking(reader)
            assert dispatched["type"] == "job"
            assert dispatched["epoch"] == 1
            # SIGKILL-equivalent: hard EOF with a job in flight. (Plain
            # close() would leave the fd alive behind the makefile.)
            sock.shutdown(socket.SHUT_RDWR)
            sock.close()
            start_worker_thread(pool.port, name="survivor")
            assert pool.drain(timeout=60.0)
            assert job.status == DONE
            assert job.attempts == 2
            # Disconnect fenced epoch 1 (revoke bumps to 2); the
            # survivor's fresh lease is 3.
            assert job.lease_epoch == 3
            stats = pool.stats_snapshot()
            assert stats["disconnect_requeues"] == 1
            assert stats["retries"] == 1
        finally:
            pool.close()


# ---------------------------------------------------------------------------
# Lease fencing end to end: the partitioned-worker scenario
# ---------------------------------------------------------------------------


class ScriptedWorker:
    """A raw fabric connection under full test control."""

    def __init__(self, port, token="", name="scripted"):
        self.sock = socket.create_connection(("127.0.0.1", port),
                                             timeout=10.0)
        self.sock.settimeout(10.0)
        self.reader = self.sock.makefile("rb")
        self.send({"type": "hello", "proto": PROTO_VERSION,
                   "token": token, "worker": name})
        welcome = self.recv()
        assert welcome["type"] == "welcome", welcome

    def send(self, obj):
        self.sock.sendall(encode_frame(obj))

    def recv(self):
        return read_frame_blocking(self.reader)

    def heartbeat(self):
        self.send({"type": "heartbeat"})

    def result_for(self, job_frame, payload=None, epoch=None):
        self.send({
            "type": "result",
            "id": job_frame["id"],
            "ok": True,
            "payload": payload if payload is not None else {"who": "me"},
            "epoch": epoch if epoch is not None else job_frame["epoch"],
        })

    def close(self):
        try:
            self.sock.close()
        except OSError:
            pass


def await_stat(pool, name, minimum, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if pool.stats_snapshot().get(name, 0) >= minimum:
            return
        time.sleep(0.02)
    raise AssertionError(
        "stat %s stuck at %d" % (name, pool.stats_snapshot().get(name, 0))
    )


class TestLeaseFencing:
    def test_partitioned_workers_stale_result_is_fenced(self):
        """The headline robustness scenario: a worker misses its
        heartbeats, its job is requeued elsewhere, and then the
        "dead" worker (it was only partitioned) delivers its result
        anyway. The stale epoch must be rejected — dropped and counted,
        never double-applied over the legitimate result."""
        obs.reset()
        with obs.observed():
            pool = FabricPool(port=0, heartbeat_interval=0.1,
                              heartbeat_misses=2, retries=3,
                              backoff=0.02, jitter=0.0)
            try:
                slow = ScriptedWorker(pool.port, name="partitioned")
                job = make_fuzz_job("j000001")
                pool.submit(job)
                dispatch = slow.recv()
                assert dispatch["type"] == "job"
                assert dispatch["epoch"] == 1
                # The partition: no heartbeats. The monitor declares the
                # worker suspect and requeues the job with a fenced lease.
                await_stat(pool, "heartbeat_misses", 1)
                healthy = ScriptedWorker(pool.port, name="healthy")
                redispatch = healthy.recv()
                assert redispatch["type"] == "job"
                assert redispatch["id"] == job.id
                assert redispatch["epoch"] == 3  # fenced (2), regranted (3)
                healthy.result_for(redispatch, payload={"winner": "healthy"})
                await_stat(pool, "executions", 2)
                deadline = time.monotonic() + 10.0
                while job.status != DONE and time.monotonic() < deadline:
                    time.sleep(0.02)
                assert job.status == DONE
                assert job.result == {"winner": "healthy"}
                # The partition heals: the old owner's echo arrives late.
                slow.heartbeat()
                slow.result_for(dispatch, payload={"winner": "stale"})
                await_stat(pool, "stale_rejected", 1)
                assert job.result == {"winner": "healthy"}  # not clobbered
                assert job.lease_epoch == 3
                assert obs.counter("serve.lease.stale_rejected").value >= 1
                slow.close()
                healthy.close()
            finally:
                pool.close()

    def test_duplicate_result_frame_applies_once(self):
        pool = FabricPool(port=0, heartbeat_interval=0.5, retries=0)
        try:
            worker = ScriptedWorker(pool.port, name="echoey")
            job = make_fuzz_job("j000001")
            pool.submit(job)
            dispatch = worker.recv()
            worker.result_for(dispatch, payload={"n": 1})
            worker.result_for(dispatch, payload={"n": 1})  # duplicated frame
            assert pool.drain(timeout=10.0)
            assert job.status == DONE
            await_stat(pool, "stale_rejected", 1)
            worker.close()
        finally:
            pool.close()

    def test_straggler_kick_fences_the_loser(self):
        pool = FabricPool(port=0, heartbeat_interval=0.5, retries=0)
        try:
            slow = ScriptedWorker(pool.port, name="slow")
            job = make_fuzz_job("j000001")
            pool.submit(job)
            dispatch = slow.recv()
            assert dispatch["epoch"] == 1
            fast = ScriptedWorker(pool.port, name="fast")
            pool.kick(job)  # what the shard coordinator does to stragglers
            cancel = slow.recv()
            assert cancel["type"] == "cancel"
            redispatch = fast.recv()
            assert redispatch["id"] == job.id
            assert redispatch["epoch"] == 3  # revoked (2) then regranted (3)
            fast.result_for(redispatch, payload={"winner": "fast"})
            assert pool.drain(timeout=10.0)
            # The loser finishes anyway; its lease was fenced at kick.
            slow.result_for(dispatch, payload={"winner": "slow"})
            await_stat(pool, "stale_rejected", 1)
            assert job.result == {"winner": "fast"}
            assert pool.stats_snapshot()["straggler_redispatches"] == 1
            assert job.attempts == 2
            slow.close()
            fast.close()
        finally:
            pool.close()


# ---------------------------------------------------------------------------
# Sharded campaigns through the full server (in-process)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="class")
def fabric_server(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("fabric")
    config = ServeConfig(
        port=0,
        workers=0,
        fabric_port=0,
        fabric_token="tok",
        heartbeat_interval=0.3,
        watchdog=30.0,
        retries=2,
        backoff=0.05,
        cache_dir=str(tmp / "cache"),
        journal_path=str(tmp / "journal.jsonl"),
        quota_rate=0.0,
    )
    server = ReproServer(config).start_background()
    procs = [
        spawn_worker_proc(server.pool.port, token="tok", name="w%d" % n)
        for n in (1, 2)
    ]
    await_workers(server.pool, 2)
    client = ServeClient("http://127.0.0.1:%d" % server.port,
                         client_id="fabric-tests")
    yield server, client
    server.shutdown()
    for proc in procs:
        if proc.poll() is None:
            proc.kill()
        proc.wait(timeout=10.0)


class TestShardedServer:
    def test_sharded_campaign_matches_direct_run(self, fabric_server):
        server, client = fabric_server
        params = {"seed": 21, "cases": 8, "cycles": 16}
        detail = client.run("fuzz", dict(params, _shards=2), timeout=120.0)
        assert detail["status"] == "done"
        direct = execute_job("fuzz", dict(params))
        assert canonical_json(detail["result"]) == canonical_json(direct)
        # Two children actually ran through the fabric.
        children = server.store.children_of(detail["id"])
        assert len(children) == 2
        assert all(child.status == DONE for child in children)

    def test_sharded_parent_shares_cache_with_unsharded(self, fabric_server):
        server, client = fabric_server
        params = {"seed": 22, "cases": 4, "cycles": 16}
        first = client.run("fuzz", dict(params, _shards=2), timeout=120.0)
        assert first["status"] == "done"
        again = client.run("fuzz", dict(params), timeout=120.0)
        assert again["cached"]
        assert again["result"] == first["result"]

    def test_final_report_hides_shard_children(self, fabric_server):
        server, client = fabric_server
        detail = client.run(
            "fuzz", {"seed": 23, "cases": 4, "_shards": 2}, timeout=120.0
        )
        assert detail["status"] == "done"
        report = server.store.final_report()
        ids = [entry["id"] for entry in report["jobs"]]
        assert detail["id"] in ids
        for child in server.store.children_of(detail["id"]):
            assert child.id not in ids

    def test_metrics_expose_fabric_state(self, fabric_server):
        server, client = fabric_server
        metrics = client.metrics()
        assert metrics["transport"] == "fabric"
        assert metrics["workers"] == 2
        assert metrics["fabric_port"] == server.pool.port
        assert "lease" in metrics


# ---------------------------------------------------------------------------
# Distributed chaos acceptance (real processes, real SIGKILL)
# ---------------------------------------------------------------------------


def boot_fabric_server(tmp, name, fabric=True, chaos=False):
    argv = [
        sys.executable, "-u", "-m", "repro", "serve",
        "--port", "0",
        "--watchdog", "30",
        "--retries", "8",
        "--backoff", "0.02",
        "--jitter", "0",
        "--quota-rate", "0",
        "--breaker-threshold", "0",
        "--cache-dir", os.path.join(tmp, name, "cache"),
        "--journal", os.path.join(tmp, name, "journal.jsonl"),
        "--report", os.path.join(tmp, name, "report.json"),
    ]
    if fabric:
        argv += [
            "--workers", "0",
            "--fabric-port", "0",
            "--fabric-token", "chaos",
            "--heartbeat-interval", "0.2",
            "--heartbeat-misses", "3",
        ]
    else:
        argv += ["--workers", "1"]
    if chaos:
        argv += [
            "--chaos-seed", "1337",
            "--chaos-drop-prob", "0.15",
            "--chaos-stall-prob", "0.1",
            "--chaos-stall-duration", "1.0",
            "--chaos-dup-prob", "0.2",
            "--chaos-delay-prob", "0.2",
        ]
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC
    proc = subprocess.Popen(argv, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True, env=env)
    http_port = fabric_port = None
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        if line.startswith("fabric listening on "):
            fabric_port = int(line.split(":")[1].split(" ")[0])
        if line.startswith("serving on http://"):
            http_port = int(line.split(":")[2].split(" ")[0])
            break
    assert http_port is not None, "server never announced its port"
    return proc, http_port, fabric_port


def boot_fabric_worker(fabric_port, name):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC
    return subprocess.Popen(
        [
            sys.executable, "-u", "-m", "repro", "worker",
            "--connect", "127.0.0.1:%d" % fabric_port,
            "--token", "chaos",
            "--name", name,
            "--max-reconnects", "20",
            "--reconnect-delay", "0.2",
        ],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL, env=env,
    )


def stop_server(proc, timeout=60.0):
    proc.send_signal(signal.SIGTERM)
    out = proc.stdout.read()
    proc.wait(timeout=timeout)
    return out


class TestDistributedChaosAcceptance:
    CAMPAIGN = {"seed": 2024, "cases": 50, "cycles": 24}

    def test_sharded_campaign_under_chaos_matches_clean_run(self, tmp_path):
        tmp = str(tmp_path)

        # -- Reference: unsharded, chaos-free, subprocess pool. ----------
        proc_ref, port_ref, _ = boot_fabric_server(tmp, "ref", fabric=False)
        try:
            client = ServeClient("http://127.0.0.1:%d" % port_ref,
                                 client_id="chaos", max_retries=3)
            detail = client.run("fuzz", dict(self.CAMPAIGN), timeout=300.0)
            assert detail["status"] == "done"
            out = stop_server(proc_ref)
            assert proc_ref.returncode == 0, out
        finally:
            if proc_ref.poll() is None:
                proc_ref.kill()
        report_ref = os.path.join(tmp, "ref", "report.json")

        # -- The gauntlet: 4-way sharded over 3 TCP workers, all four ----
        # chaos kinds armed, and one worker SIGKILLed mid-campaign.
        proc, port, fabric_port = boot_fabric_server(
            tmp, "chaos", fabric=True, chaos=True
        )
        workers = []
        try:
            workers = [boot_fabric_worker(fabric_port, "w%d" % n)
                       for n in range(3)]
            client = ServeClient("http://127.0.0.1:%d" % port,
                                 client_id="chaos", max_retries=3)
            client.wait_ready(timeout=10.0)
            summary = client.submit(
                "fuzz", dict(self.CAMPAIGN, _shards=4)
            )
            time.sleep(1.0)  # let shards land on workers first
            workers[0].kill()  # SIGKILL one worker mid-run
            detail = client.wait(summary["id"], timeout=300.0)
            assert detail["status"] == "done", detail["error"]
            out = stop_server(proc)
            assert proc.returncode == 0, out
            assert "drained cleanly" in out
        finally:
            if proc.poll() is None:
                proc.kill()
            for worker in workers:
                if worker.poll() is None:
                    worker.kill()
        report_chaos = os.path.join(tmp, "chaos", "report.json")

        # -- The payoff: byte-identical reports, exactly-once work. ------
        bytes_ref = open(report_ref, "rb").read()
        bytes_chaos = open(report_chaos, "rb").read()
        assert bytes_ref == bytes_chaos
        report = json.loads(bytes_chaos)
        assert report["counts"] == {"done": 1}
        assert report["jobs"][0]["result_sha256"] is not None
        # Every case ran exactly once into the merged result: the
        # journal's terminal child payloads cover the full index range
        # with no overlap.
        journal = os.path.join(tmp, "chaos", "journal.jsonl")
        spans = []
        for line in open(journal):
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if record.get("event") == "submit" and record.get("shard"):
                params = record["params"]
                spans.append(range(params["start"],
                                   params["start"] + params["cases"]))
        covered = sorted(index for span in spans for index in span)
        assert covered == list(range(50))
