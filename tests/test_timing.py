"""Tests for the timing model and the §6.4 frequency results."""

import pytest

from repro.hdl import elaborate, parse
from repro.resources import (
    HARP,
    KC705,
    achievable_frequency,
    estimate_timing,
    platform_for,
)
from repro.testbed import BUG_IDS, SPECS, load_design
from repro.testbed.debug_configs import instrument_for_debugging


def timing_of(text, platform=KC705, top=None):
    return estimate_timing(elaborate(parse(text), top=top), platform)


class TestDepthModel:
    def test_shallow_logic_is_fast(self):
        report = timing_of(
            "module m (input wire clk, input wire d, output reg q);"
            " always @(posedge clk) q <= d; endmodule"
        )
        assert report.logic_depth <= 2
        assert report.fmax_mhz > 300

    def test_wide_adder_deepens_path(self):
        narrow = timing_of(
            "module m (input wire clk, input wire [7:0] a, output reg [7:0] q);"
            " always @(posedge clk) q <= q + a; endmodule"
        )
        wide = timing_of(
            "module m (input wire clk, input wire [63:0] a, output reg [63:0] q);"
            " always @(posedge clk) q <= q + a; endmodule"
        )
        assert wide.logic_depth > narrow.logic_depth
        assert wide.fmax_mhz < narrow.fmax_mhz

    def test_comb_chain_accumulates(self):
        chained = timing_of(
            "module m (input wire clk, input wire [31:0] a, input wire [31:0] b,"
            " output reg [31:0] q);"
            " wire [31:0] s1; wire [31:0] s2;"
            " assign s1 = a + b; assign s2 = s1 + a;"
            " always @(posedge clk) q <= s2 + b; endmodule"
        )
        single = timing_of(
            "module m (input wire clk, input wire [31:0] a, input wire [31:0] b,"
            " output reg [31:0] q);"
            " always @(posedge clk) q <= a + b; endmodule"
        )
        assert chained.logic_depth > single.logic_depth

    def test_no_recorder_no_cap(self):
        report = timing_of(
            "module m (input wire clk, input wire d, output reg q);"
            " always @(posedge clk) q <= d; endmodule"
        )
        assert report.recorder_fmax_mhz == float("inf")

    def test_recorder_width_caps_fmax(self):
        narrow = timing_of(
            "module m (input wire clk, input wire e, input wire [31:0] d);"
            " signal_recorder #(.WIDTH(32), .DEPTH(64)) r ("
            " .clock(clk), .enable(e), .data(d)); endmodule",
            platform=HARP,
        )
        wide = timing_of(
            "module m (input wire clk, input wire e, input wire [127:0] d);"
            " signal_recorder #(.WIDTH(128), .DEPTH(64)) r ("
            " .clock(clk), .enable(e), .data(d)); endmodule",
            platform=HARP,
        )
        assert narrow.recorder_fmax_mhz == HARP.recorder_fmax_narrow
        assert wide.recorder_fmax_mhz == HARP.recorder_fmax_wide
        assert wide.fmax_mhz <= narrow.fmax_mhz


class TestAchievableFrequency:
    def test_meeting_target_keeps_it(self):
        report = timing_of(
            "module m (input wire clk, input wire d, output reg q);"
            " always @(posedge clk) q <= d; endmodule"
        )
        assert achievable_frequency(report, 200) == 200

    def test_missing_target_halves(self):
        report = timing_of(
            "module m (input wire clk, input wire e, input wire [127:0] d);"
            " signal_recorder #(.WIDTH(128), .DEPTH(64)) r ("
            " .clock(clk), .enable(e), .data(d)); endmodule",
            platform=HARP,
        )
        assert achievable_frequency(report, 400) == 200


class TestPaperFrequencyResults:
    """§6.4: 18 of 20 instrumented designs keep their target frequency;
    the two Optimus rows (D3, C2) fall from 400 to 200 MHz."""

    def test_every_base_design_meets_its_target(self):
        for bug_id in BUG_IDS:
            spec = SPECS[bug_id]
            report = estimate_timing(load_design(bug_id), platform_for(spec))
            assert report.meets(spec.target_mhz), (bug_id, report)

    def test_instrumented_frequency_outcomes(self):
        outcomes = {}
        for bug_id in BUG_IDS:
            spec = SPECS[bug_id]
            instr = instrument_for_debugging(bug_id, buffer_depth=8192)
            report = estimate_timing(instr.module, platform_for(spec))
            outcomes[bug_id] = achievable_frequency(report, spec.target_mhz)
        dropped = {
            b for b in BUG_IDS if outcomes[b] != SPECS[b].target_mhz
        }
        assert dropped == {"D3", "C2"}
        assert outcomes["D3"] == 200
        assert outcomes["C2"] == 200

    def test_sha512_keeps_400(self):
        for bug_id in ("D5", "D10"):
            spec = SPECS[bug_id]
            instr = instrument_for_debugging(bug_id, buffer_depth=8192)
            report = estimate_timing(instr.module, platform_for(spec))
            assert achievable_frequency(report, 400) == 400
