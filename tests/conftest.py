"""Shared fixtures: small designs used across the test suite."""

import pytest

from repro.hdl import elaborate, parse

COUNTER = """
module counter #(parameter W = 8) (
    input wire clk,
    input wire rst,
    input wire enable,
    output reg [W-1:0] count
);
    always @(posedge clk) begin
        if (rst) count <= 0;
        else if (enable) count <= count + 1;
    end
endmodule
"""

FSM_LISTING1 = """
module fsm (
    input wire clk,
    input wire request_valid,
    input wire work_done,
    output reg [1:0] state
);
    localparam IDLE = 0;
    localparam WORK = 1;
    localparam FINISH = 2;
    always @(posedge clk) begin
        case (state)
            IDLE: if (request_valid) state <= WORK;
            WORK: if (work_done) state <= FINISH;
            FINISH: state <= IDLE;
        endcase
    end
endmodule
"""

LOSSY = """
module lossy (
    input wire clk,
    input wire in_valid,
    input wire [7:0] in,
    input wire cond_a,
    input wire cond_b,
    input wire [7:0] a,
    output reg [7:0] out
);
    reg [7:0] b;
    always @(posedge clk) begin
        if (cond_a) out <= a;
        else if (cond_b) out <= b;
        if (in_valid) b <= in;
    end
endmodule
"""


@pytest.fixture
def counter_design():
    return elaborate(parse(COUNTER), top="counter")


@pytest.fixture
def fsm_design():
    return elaborate(parse(FSM_LISTING1), top="fsm")


@pytest.fixture
def lossy_design():
    return elaborate(parse(LOSSY), top="lossy")
