"""Checkpoint/restore round-trips: IP state, forces, and mid-run snapshots.

Complements the basic checkpointing tests in test_extensions.py with the
state the fault-injection layer depends on: blackbox IP internals
(scfifo, altsyncram, signal_recorder), stuck-at forces, and snapshots
taken from inside a cycle (via ``cycle_hooks``) rather than between
steps.
"""

import pytest

from repro.hdl import elaborate, parse
from repro.sim import Simulator

FIFO_TOP = """
module top (input wire clk, input wire [7:0] d,
            input wire push, input wire pop,
            output wire [7:0] q, output wire empty);
    scfifo #(.LPM_WIDTH(8), .LPM_NUMWORDS(4)) f (
        .clock(clk), .data(d), .wrreq(push), .rdreq(pop),
        .q(q), .empty(empty)
    );
endmodule
"""

RAM_TOP = """
module top (input wire clk, input wire [3:0] addr,
            input wire [7:0] d, input wire we,
            output wire [7:0] q);
    altsyncram #(.WIDTH_A(8), .NUMWORDS_A(16)) ram (
        .clock0(clk), .address_a(addr), .data_a(d), .wren_a(we), .q_a(q)
    );
endmodule
"""

REC_TOP = """
module top (input wire clk, input wire e, input wire [3:0] d);
    signal_recorder #(.WIDTH(4), .DEPTH(4)) rec (
        .clock(clk), .enable(e), .data(d)
    );
endmodule
"""

COMB_TOP = """
module top (input wire clk, input wire [7:0] a,
            output wire [7:0] double, output reg [7:0] acc);
    assign double = a + a;
    always @(posedge clk) acc <= acc + double;
endmodule
"""


class TestFifoCheckpoint:
    def test_fifo_contents_round_trip(self):
        sim = Simulator(elaborate(parse(FIFO_TOP)))
        sim["push"] = 1
        for value in (10, 20, 30):
            sim["d"] = value
            sim.step()
        sim["push"] = 0
        snapshot = sim.checkpoint()
        core = sim.ip_model("f").core
        assert list(core.entries) == [10, 20, 30]
        sim["pop"] = 1
        sim.step(3)
        assert list(core.entries) == []
        sim.restore(snapshot)
        assert list(sim.ip_model("f").core.entries) == [10, 20, 30]
        sim["pop"] = 1
        sim.step()
        sim.settle()
        assert sim["q"] == 10

    def test_restore_rewinds_dropped_write_count(self):
        sim = Simulator(elaborate(parse(FIFO_TOP)))
        snapshot = sim.checkpoint()
        sim["push"] = 1
        for value in range(6):  # depth 4: two writes dropped
            sim["d"] = value
            sim.step()
        assert sim.ip_model("f").core.dropped_writes == 2
        sim.restore(snapshot)
        assert sim.ip_model("f").core.dropped_writes == 0


class TestRamCheckpoint:
    def test_memory_round_trip(self):
        sim = Simulator(elaborate(parse(RAM_TOP)))
        sim["we"] = 1
        for addr, value in ((1, 0x11), (2, 0x22)):
            sim["addr"] = addr
            sim["d"] = value
            sim.step()
        sim["we"] = 0
        snapshot = sim.checkpoint()
        ram = sim.ip_model("ram")
        assert ram.mem[1] == 0x11 and ram.mem[2] == 0x22
        ram.inject_bitflip(1, 0)
        sim["we"] = 1
        sim["addr"] = 3
        sim["d"] = 0x33
        sim.step()
        assert ram.mem[1] == 0x10 and ram.mem[3] == 0x33
        sim.restore(snapshot)
        assert ram.mem[1] == 0x11
        assert ram.mem[2] == 0x22
        assert ram.mem[3] == 0

    def test_registered_read_output_round_trip(self):
        sim = Simulator(elaborate(parse(RAM_TOP)))
        sim["we"] = 1
        sim["addr"] = 5
        sim["d"] = 0x55
        sim.step()
        sim["we"] = 0
        sim["addr"] = 5
        sim.step()
        sim.settle()
        assert sim["q"] == 0x55
        snapshot = sim.checkpoint()
        sim["we"] = 1
        sim["d"] = 0xAA
        sim.step()
        sim.restore(snapshot)
        sim.settle()
        assert sim["q"] == 0x55


class TestRecorderCheckpoint:
    def test_samples_and_overwrite_state_round_trip(self):
        sim = Simulator(elaborate(parse(REC_TOP)))
        sim["e"] = 1
        for value in (1, 2, 3):
            sim["d"] = value
            sim.step()
        snapshot = sim.checkpoint()
        rec = sim.ip_model("rec")
        assert [data for _cycle, data in rec.samples] == [1, 2, 3]
        for value in (4, 5, 6):  # depth 4: wraps, sets overwrote
            sim["d"] = value
            sim.step()
        assert rec.overwrote is True
        assert rec.total_samples == 6
        sim.restore(snapshot)
        rec = sim.ip_model("rec")
        assert [data for _cycle, data in rec.samples] == [1, 2, 3]
        assert rec.overwrote is False
        assert rec.total_samples == 3


class TestForcedStateCheckpoint:
    def test_forces_round_trip(self, counter_design):
        sim = Simulator(counter_design)
        sim["enable"] = 1
        sim.step(3)
        sim.forced["count"] = 9
        snapshot = sim.checkpoint()
        sim.step()
        assert sim["count"] == 9
        del sim.forced["count"]
        sim.step(2)
        assert sim["count"] == 11
        sim.restore(snapshot)
        assert sim.forced == {"count": 9}
        sim.step()
        assert sim["count"] == 9

    def test_restore_clears_later_forces(self, counter_design):
        sim = Simulator(counter_design)
        snapshot = sim.checkpoint()
        sim.forced["count"] = 5
        sim.restore(snapshot)
        assert sim.forced == {}


class TestMidCycleCheckpoint:
    def test_snapshot_from_cycle_hook_replays_identically(self):
        """A checkpoint captured inside a cycle (before settle) replays."""
        sim = Simulator(elaborate(parse(COMB_TOP)))
        sim["a"] = 3
        captured = {}

        def hook(s):
            if s.cycle == 4 and "snap" not in captured:
                captured["snap"] = s.checkpoint()

        sim.cycle_hooks.append(hook)
        sim.step(8)
        final = sim["acc"]
        sim.restore(captured["snap"])
        assert sim.cycle == 4
        sim.cycle_hooks.remove(hook)
        # Re-run the same suffix: 8 steps fired the hook at cycle 4,
        # so 4 cycles remained after the snapshot.
        sim.step(4)
        assert sim["acc"] == final

    def test_restore_resettles_combinational_logic(self):
        sim = Simulator(elaborate(parse(COMB_TOP)))
        sim["a"] = 3
        sim.settle()
        assert sim["double"] == 6
        snapshot = sim.checkpoint()
        sim["a"] = 10
        sim.settle()
        assert sim["double"] == 20
        sim.restore(snapshot)
        assert sim["double"] == 6
        sim.settle()
        assert sim["double"] == 6
