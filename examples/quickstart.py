#!/usr/bin/env python
"""Quickstart: parse a Verilog design, simulate it, and get a unified
SignalCat log in both simulation and on-FPGA modes.

Run:  python examples/quickstart.py
"""

from repro.hdl import elaborate, parse
from repro.core import Mode, SignalCat

DESIGN = """
module pulse_counter (
    input wire clk,
    input wire rst,
    input wire pulse,
    output reg [15:0] total
);
    always @(posedge clk) begin
        if (rst) total <= 0;
        else if (pulse) begin
            total <= total + 1;
            $display("pulse number %d", total + 1);
        end
    end
endmodule
"""


def drive(sim):
    """Reset, then send five pulses with gaps."""
    sim["rst"] = 1
    sim.step()
    sim["rst"] = 0
    for _ in range(5):
        sim["pulse"] = 1
        sim.step()
        sim["pulse"] = 0
        sim.step(2)


def main():
    design = elaborate(parse(DESIGN), top="pulse_counter")

    print("-- simulation mode (native $display) --")
    signalcat = SignalCat(design, mode=Mode.SIMULATION)
    for entry in signalcat.run(drive):
        print(entry)

    print()
    print("-- on-FPGA mode (synthesized recording IP) --")
    signalcat = SignalCat(design, mode=Mode.ON_FPGA, buffer_depth=64)
    print("generated instrumentation (%d lines):" % signalcat.generated_line_count())
    print(signalcat.generated_verilog())
    for entry in signalcat.run(drive):
        print(entry)

    print()
    print("Both logs are identical -- that is SignalCat's contract (paper 4.1).")


if __name__ == "__main__":
    main()
