#!/usr/bin/env python
"""Checkpoint-assisted debugging (the paper's §7 future-work direction).

Long runs that fail near the end are painful to iterate on. With
simulator checkpoints the debugging loop becomes: run once to the
neighborhood of the failure, snapshot, then replay the last stretch
under different instrumentation or stimulus without re-running the
prefix — the StateMover/DESSERT workflow on top of this testbed.

The demo uses bug D10 (the SHA512 accumulator that is not re-seeded
between requests): the first request is the boring prefix; the second
request, where the bug manifests, is replayed twice from one snapshot.

Run:  python examples/checkpoint_debugging.py
"""

from repro.sim import Simulator
from repro.testbed import load_design
from repro.testbed.scenarios import _sha_blocks, _sha_reference, _sha512_drive


def main():
    sim = Simulator(load_design("D10"))
    sim["rst"] = 1
    sim.step(2)
    sim["rst"] = 0
    sim.step()

    print("== prefix: run the first (correct) hash request ==")
    _sha512_drive(sim, shell=None, base_line=0x100, num_blocks=3, reset=False)
    expected = _sha_reference(_sha_blocks(3))
    print("request 1 digest: %016x (expected %016x)" % (sim["digest"], expected))
    assert sim["digest"] == expected

    print()
    print("== snapshot here, just before the failing request ==")
    snapshot = sim.checkpoint()
    print("checkpoint taken at cycle %d" % sim.cycle)

    print()
    print("== replay 1: observe the failure ==")
    _sha512_drive(sim, shell=None, base_line=0x200, num_blocks=3, reset=False)
    print("request 2 digest: %016x (WRONG)" % sim["digest"])
    assert sim["digest"] != expected

    print()
    print("== replay 2: restore and inspect the accumulator pre-request ==")
    sim.restore(snapshot)
    print("restored to cycle %d" % sim.cycle)
    print(
        "acc before request 2: %016x  <- stale digest state, not the seed"
        % sim["acc"]
    )
    print(
        "the accumulator carries request 1's final state into request 2:\n"
        "the missing re-seed of bug D10, found without re-running request 1."
    )


if __name__ == "__main__":
    main()
