#!/usr/bin/env python
"""The paper's section 6.3 case study, end to end: debugging the
Grayscale accelerator's buffer overflow (testbed bug D2).

The workflow follows the case study exactly:

1. The software side reports a hang.
2. FSM Monitor shows the read FSM in RD_FINISH but the write FSM stuck
   in WR_DATA -> the hang is in write-side logic.
3. Statistics Monitor shows fewer pixels written than read -> data loss
   between the transform and the write channel.
4. LossCheck localizes the loss to the output FIFO's data input.
5. The fix (a larger FIFO) makes the same workload pass.

Run:  python examples/debug_grayscale.py
"""

from repro.core import FSMMonitor, LossCheck, StatisticsMonitor
from repro.sim import Simulator
from repro.testbed import SPECS, load_design
from repro.testbed.scenarios import GROUND_TRUTH, SCENARIOS, scenario_d2

RD_NAMES = {0: "RD_IDLE", 1: "RD_REQ", 2: "RD_FINISH"}
WR_NAMES = {0: "WR_IDLE", 1: "WR_DATA", 2: "WR_FINISH"}


def step1_observe_hang():
    print("== Step 1: the acceleration task hangs ==")
    observation = scenario_d2(Simulator(load_design("D2")))
    print("done asserted:", not observation.stuck)
    print(
        "pixels written: %d of %d"
        % (observation.details["writes"], observation.details["expected_writes"])
    )
    print()


def step2_fsm_monitor():
    print("== Step 2: FSM Monitor -- where is each FSM stuck? ==")
    monitor = FSMMonitor(
        load_design("D2"),
        state_names={"rd_state": RD_NAMES, "wr_state": WR_NAMES},
    )
    sim = monitor.simulator()
    SCENARIOS["D2"](sim)
    print(monitor.describe_trace(sim))
    finals = monitor.final_states(sim)
    print(
        "final states: read FSM = %s, write FSM = %s"
        % (RD_NAMES[finals["rd_state"]], WR_NAMES[finals["wr_state"]])
    )
    print("-> reading finished, writing never did: the bug is write-side.")
    print()


def step3_statistics_monitor():
    print("== Step 3: Statistics Monitor -- count pixels through the pipe ==")
    monitor = StatisticsMonitor(
        load_design("D2"),
        {"pixels_read": "rd_rsp_valid", "pixels_written": "wr_req"},
    )
    sim = monitor.simulator()
    SCENARIOS["D2"](sim)
    counts = monitor.counts(sim)
    print("counts:", counts)
    print(
        "-> %d pixels entered the transform but only %d reached the host:"
        % (counts["pixels_read"], counts["pixels_written"])
    )
    print("   data is being lost between the transform and the writer.")
    print()


def step4_losscheck():
    print("== Step 4: LossCheck -- localize the loss precisely ==")
    spec = SPECS["D2"].losscheck
    losscheck = LossCheck(
        load_design("D2"),
        source=spec.source,
        sink=spec.sink,
        source_valid=spec.source_valid,
    )
    losscheck.calibrate(GROUND_TRUTH["D2"])  # the shipped 4-pixel test
    result = losscheck.analyze(SCENARIOS["D2"])
    print("loss localized at:", ", ".join(result.localized))
    print("first warnings:")
    for warning in result.warnings[:3]:
        print("  %s" % warning)
    print("-> the FIFO drops pixels: the burst overruns its 8 entries.")
    print()


def step5_verify_fix():
    print("== Step 5: apply the fix (a 32-entry FIFO) and re-run ==")
    observation = scenario_d2(Simulator(load_design("D2", fixed=True)))
    print("done asserted:", not observation.stuck)
    print(
        "pixels written: %d of %d"
        % (observation.details["writes"], observation.details["expected_writes"])
    )
    assert not observation.failed
    print("-> fixed.")


def main():
    step1_observe_hang()
    step2_fsm_monitor()
    step3_statistics_monitor()
    step4_losscheck()
    step5_verify_fix()


if __name__ == "__main__":
    main()
