#!/usr/bin/env python
"""Regenerate the paper's bug-study artifacts from the library:

* Table 1 (68 bugs, 3 classes, 13 subclasses, symptom matrix);
* the testbed inventory (Table 2 metadata);
* the per-design distribution of studied bugs.

Run:  python examples/bug_study_report.py
"""

from collections import Counter

from repro.study import BUGS, designs_with, format_table1
from repro.testbed import BUG_IDS, SPECS
from repro.testbed.metadata import BugSubclass


def main():
    print(format_table1())
    print()

    print("Studied bugs per design:")
    per_design = Counter(bug.design for bug in BUGS)
    for design, count in per_design.most_common():
        print("  %-24s %2d" % (design, count))
    print()

    print(
        "Bit truncation appears in %d distinct designs (paper 3.2.2: 7)."
        % len(designs_with(BugSubclass.BIT_TRUNCATION))
    )
    print()

    print("Testbed (Table 2) inventory:")
    for bug_id in BUG_IDS:
        spec = SPECS[bug_id]
        print(
            "  %-4s %-28s %-22s %s"
            % (bug_id, spec.subclass.value, spec.application, spec.platform.value)
        )
        print("       root cause: %s" % spec.root_cause)
        print("       fix:        %s" % spec.fix)


if __name__ == "__main__":
    main()
