#!/usr/bin/env python
"""LossCheck walkthrough on the paper's running example (section 4.5).

Shows every stage of the tool: the propagation-relation table, the
generated shadow-variable Verilog (A/V/P/N per Equations 1 and 2),
runtime loss detection, and ground-truth false-positive filtering.

Run:  python examples/loss_localization.py
"""

from repro.core import LossCheck
from repro.hdl import elaborate, parse
from repro.hdl.codegen import generate_expression

DESIGN = """
module lossy (
    input wire clk,
    input wire in_valid,
    input wire [7:0] in,
    input wire cond_a,
    input wire cond_b,
    input wire [7:0] a,
    output reg [7:0] out
);
    reg [7:0] b;
    always @(posedge clk) begin
        // buggy code (b's value can be lost)
        if (cond_a) out <= a;
        else if (cond_b) out <= b;
        if (in_valid) b <= in;
    end
endmodule
"""


def overwrite_b(sim):
    """Failure scenario: two valid inputs while out prefers channel a."""
    sim["cond_a"] = 1
    sim["a"] = 0xEE
    sim["in_valid"] = 1
    for value in (0x11, 0x22):
        sim["in"] = value
        sim.step()
    sim["in_valid"] = 0
    sim.step(3)


def main():
    design = elaborate(parse(DESIGN), top="lossy")
    losscheck = LossCheck(design, source="in", sink="out", source_valid="in_valid")

    print("== Static analysis: propagation relations (paper 4.5.1) ==")
    for relation in losscheck.relation_table().relations:
        condition = (
            generate_expression(relation.condition)
            if relation.condition is not None
            else "1"
        )
        print("  %-4s ~~> %-4s  when %s" % (relation.src, relation.dst, condition))
    print("registers on the in -> out path:", sorted(losscheck.path))
    print("monitored:", losscheck.monitored)
    print()

    print("== Generated shadow logic (paper 4.5.2, Equations 1 and 2) ==")
    print(losscheck.generated_verilog())

    print("== Runtime analysis ==")
    result = losscheck.analyze(overwrite_b)
    for warning in result.warnings:
        print(" ", warning)
    print("localized root cause:", result.localized)
    assert result.localized == ["b"]
    print()
    print(
        "b held a valid value that was overwritten before it propagated\n"
        "to out -- exactly the paper's diagnosis for this snippet."
    )


if __name__ == "__main__":
    main()
