#!/usr/bin/env python
"""FSM Monitor on a protocol endpoint, in on-FPGA mode.

Instruments the AXI-Lite register slave (testbed bug S1's design) with
FSM Monitor, runs its failure scenario with the trace captured through
the synthesized recording IP, and reconstructs the state-transition
trace -- the "user-friendly abstraction" the paper contrasts with raw
waveforms (section 4.2).

Run:  python examples/fsm_tracing.py
"""

from repro.core import FSMMonitor, Mode
from repro.testbed import SPECS, load_design
from repro.testbed.scenarios import SCENARIOS


def main():
    spec = SPECS["S1"]
    design = load_design("S1")

    monitor = FSMMonitor(design, state_names=spec.state_names)
    print("detected FSM registers:")
    for monitored in monitor.fsms:
        info = monitored.info
        print(
            "  %s (%d-bit, %d states, %d transition arcs)"
            % (info.name, info.width, len(info.states), len(info.transitions))
        )
    print()

    # On-FPGA mode: the trace goes through the recording IP, not stdout.
    sim = monitor.simulator(mode=Mode.ON_FPGA, buffer_depth=256)
    observation = SCENARIOS["S1"](sim)

    print("state-transition trace (reconstructed from the trace buffer):")
    print(monitor.describe_trace(sim))
    print()
    print("final states:", monitor.final_states(sim))
    print()
    print("external protocol checker reported:")
    for message in observation.details["violations"]:
        print("  -", message)
    print()
    print(
        "The write FSM returned to WR_IDLE after a single response cycle\n"
        "even though the master had not taken the response (BREADY low):\n"
        "the AXI valid-until-ready violation of testbed bug S1."
    )


if __name__ == "__main__":
    main()
